#include "serve/manager.h"

#include <limits>
#include <utility>

#include "common/string_util.h"
#include "core/session.h"

namespace bayescrowd::serve {

namespace {

std::vector<obs::Label> TenantLabels(const std::string& tenant) {
  return {{"tenant", tenant}};
}

std::vector<obs::Label> SessionLabels(const std::string& tenant,
                                      const std::string& id) {
  return {{"tenant", tenant}, {"session", id}};
}

std::string EventDetail(const std::string& tenant, const std::string& id,
                        const std::string& extra) {
  std::string out = StrFormat("tenant=%s session=%s", tenant.c_str(),
                              id.c_str());
  if (!extra.empty()) {
    out += ' ';
    out += extra;
  }
  return out;
}

}  // namespace

SessionManager::SessionManager(Options options)
    : options_(std::move(options)),
      cache_(options_.cache),
      local_flight_(256) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics : &local_metrics_;
  flight_ = options_.flight != nullptr ? options_.flight : &local_flight_;
  if (options_.max_resident_sessions == 0) options_.max_resident_sessions = 1;
  if (options_.max_sessions_per_tenant == 0) {
    options_.max_sessions_per_tenant = 1;
  }
  if (!options_.state_dir.empty()) {
    manifest_ = std::make_unique<ServeManifest>(
        ServeManifest::Options{.path = ManifestPath(), .io = io()});
  }
}

FileIo* SessionManager::io() const {
  return options_.io != nullptr ? options_.io : RealFileIo();
}

std::string SessionManager::ManifestPath() const {
  return options_.state_dir + "/serve-manifest.bin";
}

std::uint64_t SessionManager::SpecFingerprint(const SessionSpec& spec) {
  std::uint64_t fp = HashBytes(spec.tenant);
  fp = HashBytes(spec.cache_key, fp);
  fp = HashBytes(spec.manifest_blob, fp);
  return fp;
}

ManifestEvent SessionManager::EventOf(const Session& session,
                                      ManifestEventKind kind,
                                      const std::string& detail) const {
  ManifestEvent event;
  event.kind = kind;
  event.session_id = session.spec.id;
  event.tenant = session.spec.tenant;
  event.rounds = session.runner != nullptr ? session.runner->rounds() : 0;
  event.qos_level = session.qos_level;
  event.spec_fingerprint = SpecFingerprint(session.spec);
  event.checkpoint_dir = session.spec.checkpoint_dir;
  event.checkpoint_keep = session.spec.checkpoint_keep;
  event.spec_blob = session.spec.manifest_blob;
  event.detail = detail;
  return event;
}

void SessionManager::Journal(const std::vector<ManifestEvent>& events) {
  if (manifest_ == nullptr || events.empty()) return;
  const Status appended = manifest_->Append(events);
  if (appended.ok()) return;
  // The manifest is a recovery aid: losing a record degrades recovery
  // fidelity for this session, it must not fail the verb that already
  // succeeded. Count it and leave a flight trace.
  metrics_->GetCounter("serve.manifest.append_failures")->Increment();
  flight_->Record(obs::FlightEventKind::kNote, 0, -1, 0.0, 0.0,
                  StrFormat("manifest append failed: %s",
                            appended.ToString().c_str()));
}

std::uint64_t SessionManager::CacheScope(const std::string& tenant,
                                         const std::string& cache_key) {
  // Chained, not XORed: hash(tenantA)^hash(keyB) must not equal
  // hash(tenantB)^hash(keyA).
  std::uint64_t scope = HashBytes(tenant);
  scope = HashBytes(cache_key, scope);
  return scope == 0 ? 1 : scope;  // 0 means "unscoped" to the evaluator.
}

const TenantQos* SessionManager::QosFor(const std::string& tenant) const {
  const auto it = options_.qos.find(tenant);
  return it == options_.qos.end() ? nullptr : &it->second;
}

SessionManager::Session* SessionManager::FindLocked(const std::string& id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Status SessionManager::Create(SessionSpec spec) {
  std::lock_guard<std::mutex> work(work_mu_);
  return CreateImpl(std::move(spec), /*journal=*/true);
}

Status SessionManager::CreateImpl(SessionSpec spec, bool journal) {
  if (spec.id.empty() || spec.tenant.empty()) {
    return Status::InvalidArgument("serve: session id and tenant required");
  }
  if (spec.resume && spec.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "serve: resume requires a checkpoint_dir");
  }

  // Admission control. Rejections are first-class telemetry: a labeled
  // counter plus a flight event, so capacity pressure is attributable
  // per tenant after the fact.
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    std::string reject;
    if (sessions_.count(spec.id) != 0) {
      return Status::AlreadyExists(
          StrFormat("serve: session '%s' already resident",
                    spec.id.c_str()));
    }
    if (sessions_.size() >= options_.max_resident_sessions) {
      reject = StrFormat("server at capacity (%zu resident)",
                         sessions_.size());
    } else {
      const TenantQos* qos = QosFor(spec.tenant);
      std::size_t tenant_cap = options_.max_sessions_per_tenant;
      if (qos != nullptr && qos->max_resident != 0) {
        tenant_cap = qos->max_resident;
      }
      const auto it = tenant_resident_.find(spec.tenant);
      const std::size_t tenant_now =
          it == tenant_resident_.end() ? 0 : it->second;
      if (tenant_now >= tenant_cap) {
        reject = StrFormat("tenant at capacity (%zu resident)", tenant_now);
      }
    }
    if (!reject.empty()) {
      metrics_->GetCounter("serve.admission.rejected",
                           TenantLabels(spec.tenant))
          ->Increment();
      flight_->Record(obs::FlightEventKind::kAdmission, 0, -1, 0.0,
                      /*value=*/0.0,
                      EventDetail(spec.tenant, spec.id, reject));
      return Status::ResourceExhausted(
          StrFormat("serve: admission rejected for '%s': %s",
                    spec.id.c_str(), reject.c_str()));
    }
  }

  auto session = std::make_unique<Session>();
  session->scope = CacheScope(spec.tenant, spec.cache_key);
  if (spec.use_marketplace) {
    auto market = std::make_unique<MarketplaceCrowdPlatform>(
        spec.ground_truth, spec.marketplace);
    market->BindMetrics(&session->metrics);
    market->SetFlightRecorder(flight_);
    session->platform = std::move(market);
  } else {
    session->platform = std::make_unique<SimulatedCrowdPlatform>(
        spec.ground_truth, spec.platform);
  }
  session->posteriors =
      spec.posteriors != nullptr
          ? spec.posteriors
          : std::make_shared<UniformPosteriorProvider>(
                spec.incomplete.schema());

  BayesCrowdOptions options = spec.options;
  options.pool = pool_;
  options.threads = 0;
  options.metrics = &session->metrics;
  options.session = spec.id;  // cost.* series carry the session id.
  options.probability.cache_scope = session->scope;
  if (!spec.checkpoint_dir.empty()) {
    CheckpointStore::Options store_options;
    store_options.dir = spec.checkpoint_dir;
    store_options.session_id = spec.id;
    store_options.keep = spec.checkpoint_keep;
    store_options.io = spec.io != nullptr ? spec.io : io();
    session->store = std::make_unique<CheckpointStore>(store_options);
    options.checkpoint_sink = session->store.get();
  }
  if (spec.resume) {
    Result<SessionState> latest = session->store->LoadLatest(
        std::numeric_limits<std::size_t>::max(),
        &session->resume_fallbacks);
    BAYESCROWD_RETURN_NOT_OK(latest.status());
    session->resume_state =
        std::make_unique<SessionState>(std::move(latest).value());
    options.resume = session->resume_state.get();
    session->resumed = true;
  }
  session->current_governor = options.probability.governor;

  session->runner = std::make_unique<QueryRunner>(options);
  session->spec = std::move(spec);
  Session& ref = *session;
  BAYESCROWD_RETURN_NOT_OK(ref.runner->Init(
      ref.spec.incomplete, *ref.posteriors, *ref.platform));

  if (ref.spec.warm_start) {
    std::string blob;
    const char* outcome = "miss";
    if (cache_.Get(ref.scope, &blob)) {
      Result<std::size_t> imported = ref.runner->ImportMemoState(blob);
      BAYESCROWD_RETURN_NOT_OK(imported.status());
      metrics_->GetCounter("serve.cache.imported_entries",
                           TenantLabels(ref.spec.tenant))
          ->Increment(static_cast<std::uint64_t>(imported.value()));
      outcome = "hit";
    }
    metrics_->GetCounter(
        StrFormat("serve.cache.warm_start.%s", outcome),
        TenantLabels(ref.spec.tenant))
        ->Increment();
  }

  // A resumed session may already be past a QoS threshold: re-apply the
  // step its round count calls for before it advances, so resume lands
  // on the same governor the uninterrupted session would be running.
  BAYESCROWD_RETURN_NOT_OK(MaybeDegrade(&ref));

  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    const std::string& tenant = ref.spec.tenant;
    const std::string& id = ref.spec.id;
    // Re-admitting a quarantined id is the operator's "the cause is
    // fixed" signal: the record gives way to the live session.
    quarantined_.erase(id);
    creation_order_.push_back(id);
    ++tenant_resident_[tenant];
    metrics_->GetCounter("serve.admission.admitted", TenantLabels(tenant))
        ->Increment();
    metrics_->GetCounter("serve.sessions.created", TenantLabels(tenant))
        ->Increment();
    flight_->Record(obs::FlightEventKind::kAdmission, ref.runner->rounds(),
                    -1, 0.0, /*value=*/1.0, EventDetail(tenant, id, ""));
    sessions_.emplace(id, std::move(session));
    metrics_->GetGauge("serve.sessions.resident")
        ->Set(static_cast<double>(sessions_.size()));
  }
  if (journal) {
    Journal({EventOf(ref, ManifestEventKind::kCreate,
                     ref.resumed ? "resumed" : "")});
  }
  return Status::OK();
}

Status SessionManager::MaybeDegrade(Session* session) {
  const TenantQos* qos = QosFor(session->spec.tenant);
  if (qos == nullptr || qos->degrade_after_rounds == 0 ||
      qos->ladder.empty()) {
    return Status::OK();
  }
  const std::size_t rounds = session->runner->rounds();
  if (rounds < qos->degrade_after_rounds) return Status::OK();
  std::size_t desired =
      1 + (qos->degrade_every_rounds > 0
               ? (rounds - qos->degrade_after_rounds) /
                     qos->degrade_every_rounds
               : 0);
  if (desired > qos->ladder.size()) desired = qos->ladder.size();
  if (desired <= session->qos_level) return Status::OK();
  const GovernorOptions& governor = qos->ladder[desired - 1];
  session->current_governor = governor;
  BAYESCROWD_RETURN_NOT_OK(ApplyGovernorNow(session));
  session->qos_level = desired;
  metrics_->GetCounter(
      "serve.qos.degrades",
      SessionLabels(session->spec.tenant, session->spec.id))
      ->Increment();
  flight_->Record(
      obs::FlightEventKind::kQosDegrade, rounds, -1, 0.0,
      static_cast<double>(desired),
      EventDetail(session->spec.tenant, session->spec.id,
                  StrFormat("level=%zu max_nodes=%llu", desired,
                            static_cast<unsigned long long>(
                                governor.max_nodes))));
  return Status::OK();
}

Status SessionManager::ApplyGovernorNow(Session* session) {
  GovernorOptions governor = session->current_governor;
  if (session->request_deadline_ms > 0 &&
      (governor.deadline_ms <= 0 ||
       session->request_deadline_ms < governor.deadline_ms)) {
    governor.deadline_ms = session->request_deadline_ms;
  }
  return session->runner->ApplyGovernor(governor);
}

class SessionManager::InflightGuard {
 public:
  explicit InflightGuard(std::atomic<std::size_t>* inflight)
      : inflight_(inflight) {}
  ~InflightGuard() {
    inflight_->fetch_sub(1, std::memory_order_relaxed);
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<std::size_t>* inflight_;
};

Status SessionManager::AdmitStep(const char* verb) {
  const auto shed = [&](const std::string& why) {
    metrics_->GetCounter("serve.shed.requests", {{"verb", verb}})
        ->Increment();
    flight_->Record(obs::FlightEventKind::kOverload, 0, -1, 0.0,
                    static_cast<double>(options_.retry_after_ms),
                    StrFormat("verb=%s %s", verb, why.c_str()));
    return Status::Unavailable(StrFormat(
        "serve: overloaded (%s): %s; retry_after_ms=%lld", verb,
        why.c_str(),
        static_cast<long long>(options_.retry_after_ms)));
  };
  if (options_.debug_shed_every > 0) {
    const std::uint64_t n =
        step_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.debug_shed_every == 0) {
      return shed(StrFormat("shedding every %zu requests (chaos)",
                            options_.debug_shed_every));
    }
  }
  const std::size_t inflight =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (inflight > 1 + options_.max_queued_requests) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return shed(StrFormat("%zu stepping requests in flight (queue cap %zu)",
                          inflight, options_.max_queued_requests));
  }
  return Status::OK();
}

void SessionManager::NoteStepFailure(Session* session, const Status& error) {
  ++session->consecutive_failures;
  metrics_->GetCounter(
      "serve.step.failures",
      SessionLabels(session->spec.tenant, session->spec.id))
      ->Increment();
  if (options_.quarantine_after_failures > 0 &&
      session->consecutive_failures >= options_.quarantine_after_failures) {
    QuarantineLocked(session, error.ToString());
  }
}

void SessionManager::QuarantineLocked(Session* session,
                                      const std::string& reason) {
  const std::string id = session->spec.id;
  const std::string tenant = session->spec.tenant;
  // Best-effort snapshot: if the disk recovered, the quarantined
  // session's progress survives for a later re-admission; if not, the
  // failure is already the reason we're here.
  std::string extra;
  if (!session->finished && session->store != nullptr &&
      session->runner->initialized()) {
    const Status snapshot = session->runner->WriteCheckpointNow();
    extra = snapshot.ok()
                ? StrFormat("checkpointed@%zu", session->runner->rounds())
                : "checkpoint failed";
  }
  QuarantineRecord record;
  record.tenant = tenant;
  record.rounds = session->runner->rounds();
  record.qos_level = session->qos_level;
  record.reason = reason;
  Journal({EventOf(*session, ManifestEventKind::kQuarantine, reason)});
  metrics_->GetCounter("serve.quarantine.sessions",
                       SessionLabels(tenant, id))
      ->Increment();
  flight_->Record(
      obs::FlightEventKind::kQuarantine, session->runner->rounds(), -1,
      0.0, static_cast<double>(session->consecutive_failures),
      EventDetail(tenant, id,
                  StrFormat("%s%s%s", reason.c_str(),
                            extra.empty() ? "" : " ", extra.c_str())));
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    quarantined_.emplace(id, std::move(record));
    sessions_.erase(id);
    for (auto it = creation_order_.begin(); it != creation_order_.end();
         ++it) {
      if (*it == id) {
        creation_order_.erase(it);
        break;
      }
    }
    auto tenant_it = tenant_resident_.find(tenant);
    if (tenant_it != tenant_resident_.end() && tenant_it->second > 0) {
      --tenant_it->second;
    }
    metrics_->GetGauge("serve.sessions.resident")
        ->Set(static_cast<double>(sessions_.size()));
    metrics_->GetGauge("serve.sessions.quarantined")
        ->Set(static_cast<double>(quarantined_.size()));
  }
}

Status SessionManager::AdvanceLockedImpl(Session* session,
                                         std::size_t max_rounds,
                                         std::int64_t deadline_ms,
                                         AdvanceOutcome* out,
                                         std::vector<ManifestEvent>* journal) {
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished",
                  session->spec.id.c_str()));
  }
  obs::Counter* rounds_counter = metrics_->GetCounter(
      "serve.rounds", SessionLabels(session->spec.tenant,
                                    session->spec.id));
  // A request deadline rides on whatever governor is current (and on
  // any ladder rung MaybeDegrade applies mid-loop); it is degrade-only
  // and fingerprint-excluded, so tightening and restoring it never
  // perturbs checkpoints or determinism.
  session->request_deadline_ms = deadline_ms;
  Status status = Status::OK();
  if (deadline_ms > 0) status = ApplyGovernorNow(session);
  for (std::size_t i = 0;
       status.ok() && i < max_rounds && !session->runner->Done(); ++i) {
    status = MaybeDegrade(session);
    if (status.ok()) status = session->runner->Step();
    if (!status.ok()) break;
    rounds_counter->Increment();
    ++out->rounds_run;
  }
  session->request_deadline_ms = 0;
  if (deadline_ms > 0) {
    const Status restored = ApplyGovernorNow(session);
    if (status.ok()) status = restored;
  }
  // Capture the journal record now: NoteStepFailure below may
  // quarantine the session, which frees it.
  if (journal != nullptr && out->rounds_run > 0) {
    journal->push_back(EventOf(*session, ManifestEventKind::kAdvance, ""));
  }
  if (status.ok()) {
    session->consecutive_failures = 0;
    out->qos_level = session->qos_level;
    out->done = session->runner->Done();
    return Status::OK();
  }
  NoteStepFailure(session, status);
  return status;
}

Result<AdvanceOutcome> SessionManager::Advance(const std::string& id,
                                               std::size_t max_rounds,
                                               std::int64_t deadline_ms) {
  BAYESCROWD_RETURN_NOT_OK(AdmitStep("advance"));
  InflightGuard admitted(&inflight_);
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    if (quarantined_.count(id) != 0) {
      return Status::FailedPrecondition(
          StrFormat("serve: session '%s' is quarantined", id.c_str()));
    }
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  AdvanceOutcome out;
  std::vector<ManifestEvent> journal;
  const Status advanced =
      AdvanceLockedImpl(session, max_rounds, deadline_ms, &out, &journal);
  Journal(journal);
  BAYESCROWD_RETURN_NOT_OK(advanced);
  return out;
}

Result<std::size_t> SessionManager::AdvanceAll(std::size_t quantum) {
  BAYESCROWD_RETURN_NOT_OK(AdmitStep("advance_all"));
  InflightGuard admitted(&inflight_);
  std::lock_guard<std::mutex> work(work_mu_);
  std::vector<Session*> order;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    for (const std::string& id : creation_order_) {
      Session* session = FindLocked(id);
      if (session != nullptr) order.push_back(session);
    }
  }
  std::size_t active = 0;
  std::vector<ManifestEvent> journal;
  for (Session* session : order) {
    if (session->finished || session->runner->Done()) continue;
    AdvanceOutcome out;
    // One session's failure is that session's problem: count it (the
    // quarantine threshold isolates a repeat offender) and keep the
    // sweep going for everyone else — the shared pool never latches.
    const Status advanced =
        AdvanceLockedImpl(session, quantum, /*deadline_ms=*/0, &out,
                          &journal);
    if (!advanced.ok()) continue;
    if (!out.done) ++active;
  }
  Journal(journal);
  return active;
}

Status SessionManager::Checkpoint(const std::string& id) {
  BAYESCROWD_RETURN_NOT_OK(AdmitStep("checkpoint"));
  InflightGuard admitted(&inflight_);
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    if (quarantined_.count(id) != 0) {
      return Status::FailedPrecondition(
          StrFormat("serve: session '%s' is quarantined", id.c_str()));
    }
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished", id.c_str()));
  }
  BAYESCROWD_RETURN_NOT_OK(session->runner->WriteCheckpointNow());
  Journal({EventOf(*session, ManifestEventKind::kCheckpoint, "")});
  return Status::OK();
}

Result<BayesCrowdResult> SessionManager::Finish(const std::string& id) {
  BAYESCROWD_RETURN_NOT_OK(AdmitStep("finish"));
  InflightGuard admitted(&inflight_);
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    if (quarantined_.count(id) != 0) {
      return Status::FailedPrecondition(
          StrFormat("serve: session '%s' is quarantined", id.c_str()));
    }
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished", id.c_str()));
  }
  BAYESCROWD_RETURN_NOT_OK(session->runner->Finish());
  // Donate the memo state so the next session of this scope can warm
  // start. Donation is outside the determinism contract on purpose —
  // it only ever feeds opt-in warm starts.
  Result<std::string> blob = session->runner->ExportMemoState();
  if (blob.ok()) {
    cache_.Put(session->scope, std::move(blob).value());
    metrics_->GetCounter("serve.cache.donations",
                         TenantLabels(session->spec.tenant))
        ->Increment();
  }
  session->finished = true;
  metrics_->GetCounter("serve.sessions.finished",
                       TenantLabels(session->spec.tenant))
      ->Increment();
  Journal({EventOf(*session, ManifestEventKind::kFinish, "")});
  return session->runner->TakeResult();
}

Status SessionManager::Evict(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    // Evicting a quarantine record just drops the record; the journal
    // already carries the quarantine event, and an evict on top tells
    // recovery not to resurrect even the record.
    const auto quarantine_it = quarantined_.find(id);
    if (quarantine_it != quarantined_.end()) {
      ManifestEvent event;
      event.kind = ManifestEventKind::kEvict;
      event.session_id = id;
      event.tenant = quarantine_it->second.tenant;
      event.rounds = quarantine_it->second.rounds;
      quarantined_.erase(quarantine_it);
      metrics_->GetGauge("serve.sessions.quarantined")
          ->Set(static_cast<double>(quarantined_.size()));
      Journal({event});
      return Status::OK();
    }
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  std::string extra;
  if (!session->finished && session->store != nullptr &&
      session->runner->initialized()) {
    const Status snapshot = session->runner->WriteCheckpointNow();
    extra = snapshot.ok()
                ? StrFormat("checkpointed@%zu", session->runner->rounds())
                : StrFormat("checkpoint failed: %s",
                            snapshot.ToString().c_str());
  }
  const std::string tenant = session->spec.tenant;
  flight_->Record(obs::FlightEventKind::kEviction,
                  session->runner->rounds(), -1, 0.0,
                  session->finished ? 1.0 : 0.0,
                  EventDetail(tenant, id, extra));
  Journal({EventOf(*session, ManifestEventKind::kEvict, extra)});
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    sessions_.erase(id);
    for (auto it = creation_order_.begin(); it != creation_order_.end();
         ++it) {
      if (*it == id) {
        creation_order_.erase(it);
        break;
      }
    }
    auto tenant_it = tenant_resident_.find(tenant);
    if (tenant_it != tenant_resident_.end() && tenant_it->second > 0) {
      --tenant_it->second;
    }
    metrics_->GetCounter("serve.sessions.evicted", TenantLabels(tenant))
        ->Increment();
    metrics_->GetGauge("serve.sessions.resident")
        ->Set(static_cast<double>(sessions_.size()));
  }
  return Status::OK();
}

Result<RecoveryReport> SessionManager::Recover(
    const SpecResolver& resolver) {
  if (options_.state_dir.empty()) {
    return Status::FailedPrecondition(
        "serve: recover requires a state_dir");
  }
  std::lock_guard<std::mutex> work(work_mu_);
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    if (!sessions_.empty() || !quarantined_.empty()) {
      return Status::FailedPrecondition(
          "serve: recover must run before any session is resident");
    }
  }
  BAYESCROWD_ASSIGN_OR_RETURN(const ManifestLoad load,
                              LoadManifest(io(), ManifestPath()));
  RecoveryReport report;
  report.events_replayed = load.events.size();
  report.torn_tail_records = load.torn_tail_records;
  report.unknown_event_records = load.unknown_kind_records;

  // Pass 1: fold the journal into the live set — newest event per id
  // wins; finish/evict retire an id; quarantine converts it to a
  // record recovery carries over but does not resume.
  std::map<std::string, ManifestEvent> live;
  std::vector<std::string> live_order;
  std::map<std::string, ManifestEvent> quarantine_events;
  const auto retire = [&](const std::string& id) {
    live.erase(id);
    for (auto it = live_order.begin(); it != live_order.end(); ++it) {
      if (*it == id) {
        live_order.erase(it);
        break;
      }
    }
  };
  for (const ManifestEvent& event : load.events) {
    switch (event.kind) {
      case ManifestEventKind::kCreate:
        if (live.count(event.session_id) != 0) {
          // A duplicate create for a live id (a crash between the
          // registry insert and the journal append replayed twice, or
          // a damaged writer). Newest wins; count it.
          ++report.duplicate_events;
        } else {
          live_order.push_back(event.session_id);
        }
        live[event.session_id] = event;
        quarantine_events.erase(event.session_id);
        break;
      case ManifestEventKind::kAdvance:
      case ManifestEventKind::kCheckpoint:
        if (live.count(event.session_id) != 0) {
          live[event.session_id] = event;
        }
        break;
      case ManifestEventKind::kFinish:
      case ManifestEventKind::kEvict:
        retire(event.session_id);
        quarantine_events.erase(event.session_id);
        break;
      case ManifestEventKind::kQuarantine:
        retire(event.session_id);
        quarantine_events[event.session_id] = event;
        break;
    }
  }

  // Pass 2: re-admit every live session, newest valid checkpoint first,
  // fresh from round 0 when none survived (the simulated crowd is
  // deterministic, so a fresh re-run converges to the same state).
  for (const std::string& id : live_order) {
    const ManifestEvent& event = live.at(id);
    Result<SessionSpec> resolved = resolver(event);
    if (!resolved.ok()) {
      ++report.sessions_failed;
      flight_->Record(obs::FlightEventKind::kRecovery, event.rounds, -1,
                      0.0, /*value=*/0.0,
                      EventDetail(event.tenant, id,
                                  StrFormat("resolver failed: %s",
                                            resolved.status().ToString()
                                                .c_str())));
      continue;
    }
    SessionSpec spec = std::move(resolved).value();
    // The journal, not the resolver, is authoritative for identity and
    // the checkpoint namespace.
    spec.id = id;
    spec.tenant = event.tenant;
    if (!event.checkpoint_dir.empty()) {
      spec.checkpoint_dir = event.checkpoint_dir;
      spec.checkpoint_keep =
          static_cast<std::size_t>(event.checkpoint_keep);
    }
    if (SpecFingerprint(spec) != event.spec_fingerprint) {
      ++report.fingerprint_mismatches;
      ++report.sessions_failed;
      flight_->Record(obs::FlightEventKind::kRecovery, event.rounds, -1,
                      0.0, /*value=*/0.0,
                      EventDetail(event.tenant, id,
                                  "spec fingerprint mismatch"));
      continue;
    }
    bool try_resume = false;
    if (!spec.checkpoint_dir.empty()) {
      CheckpointStore::Options probe_options;
      probe_options.dir = spec.checkpoint_dir;
      probe_options.session_id = id;
      probe_options.keep = spec.checkpoint_keep;
      probe_options.io = spec.io != nullptr ? spec.io : io();
      CheckpointStore probe(probe_options);
      try_resume = !probe.ListGenerations().empty();
    }
    SessionSpec fresh_copy;
    if (try_resume) fresh_copy = spec;  // Copy before the move below.
    spec.resume = try_resume;
    Status created = CreateImpl(std::move(spec), /*journal=*/false);
    bool resumed = try_resume;
    if (!created.ok() && try_resume) {
      // Every generation was damaged (LoadLatest fell all the way
      // through) or the snapshot refused to load. PR 4 semantics: fall
      // back to a fresh run rather than losing the session.
      fresh_copy.resume = false;
      created = CreateImpl(std::move(fresh_copy), /*journal=*/false);
      resumed = false;
    }
    if (!created.ok()) {
      ++report.sessions_failed;
      flight_->Record(obs::FlightEventKind::kRecovery, event.rounds, -1,
                      0.0, /*value=*/0.0,
                      EventDetail(event.tenant, id,
                                  StrFormat("re-admission failed: %s",
                                            created.ToString().c_str())));
      continue;
    }
    std::size_t fallbacks = 0;
    {
      std::lock_guard<std::mutex> registry(registry_mu_);
      Session* session = FindLocked(id);
      if (session != nullptr) fallbacks = session->resume_fallbacks;
    }
    report.checkpoint_fallbacks += fallbacks;
    if (resumed) {
      ++report.sessions_resumed;
    } else {
      ++report.sessions_fresh;
    }
    flight_->Record(obs::FlightEventKind::kRecovery, event.rounds, -1,
                    0.0, /*value=*/1.0,
                    EventDetail(event.tenant, id,
                                resumed ? "resumed" : "fresh"));
  }

  // Carry quarantine records over so list/info keep reporting them.
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    for (const auto& [id, event] : quarantine_events) {
      QuarantineRecord record;
      record.tenant = event.tenant;
      record.rounds = static_cast<std::size_t>(event.rounds);
      record.qos_level = static_cast<std::size_t>(event.qos_level);
      record.reason = event.detail;
      quarantined_.emplace(id, std::move(record));
      report.quarantined.push_back(id);
    }
    metrics_->GetGauge("serve.sessions.quarantined")
        ->Set(static_cast<double>(quarantined_.size()));
  }

  // Compact the journal: one create per live session (at its recovered
  // round count) plus the surviving quarantine records, atomically
  // rotated in. Torn tails and retired ids are gone for good.
  if (manifest_ != nullptr) {
    std::vector<ManifestEvent> compacted;
    {
      std::lock_guard<std::mutex> registry(registry_mu_);
      for (const std::string& id : creation_order_) {
        Session* session = FindLocked(id);
        if (session == nullptr) continue;
        compacted.push_back(EventOf(*session, ManifestEventKind::kCreate,
                                    "recovered"));
      }
      for (const auto& [id, event] : quarantine_events) {
        compacted.push_back(event);
      }
    }
    const Status rotated = manifest_->Rewrite(compacted);
    if (!rotated.ok()) {
      metrics_->GetCounter("serve.manifest.append_failures")->Increment();
      flight_->Record(obs::FlightEventKind::kNote, 0, -1, 0.0, 0.0,
                      StrFormat("manifest rotation failed: %s",
                                rotated.ToString().c_str()));
    }
  }

  metrics_->GetCounter("serve.recovery.events_replayed")
      ->Increment(static_cast<std::uint64_t>(report.events_replayed));
  metrics_->GetCounter("serve.recovery.sessions_resumed")
      ->Increment(static_cast<std::uint64_t>(report.sessions_resumed));
  metrics_->GetCounter("serve.recovery.sessions_fresh")
      ->Increment(static_cast<std::uint64_t>(report.sessions_fresh));
  metrics_->GetCounter("serve.recovery.sessions_failed")
      ->Increment(static_cast<std::uint64_t>(report.sessions_failed));
  metrics_->GetCounter("serve.recovery.checkpoint_fallbacks")
      ->Increment(static_cast<std::uint64_t>(report.checkpoint_fallbacks));
  metrics_->GetCounter("serve.recovery.torn_tail_records")
      ->Increment(static_cast<std::uint64_t>(report.torn_tail_records));
  metrics_->GetCounter("serve.recovery.unknown_event_records")
      ->Increment(static_cast<std::uint64_t>(report.unknown_event_records));
  return report;
}

SessionInfo SessionManager::InfoOf(const Session& session) const {
  SessionInfo info;
  info.id = session.spec.id;
  info.tenant = session.spec.tenant;
  info.rounds = session.runner->rounds();
  info.budget_left = session.runner->budget_left();
  info.qos_level = session.qos_level;
  info.done = session.finished || session.runner->Done();
  info.finished = session.finished;
  info.resumed = session.resumed;
  return info;
}

SessionInfo SessionManager::InfoOfQuarantined(
    const std::string& id, const QuarantineRecord& record) {
  SessionInfo info;
  info.id = id;
  info.tenant = record.tenant;
  info.rounds = record.rounds;
  info.qos_level = record.qos_level;
  info.done = true;  // Quarantined sessions cannot advance.
  info.quarantined = true;
  return info;
}

Result<SessionInfo> SessionManager::Info(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  std::lock_guard<std::mutex> registry(registry_mu_);
  const auto quarantine_it = quarantined_.find(id);
  if (quarantine_it != quarantined_.end()) {
    return InfoOfQuarantined(id, quarantine_it->second);
  }
  const Session* session = FindLocked(id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  return InfoOf(*session);
}

std::vector<SessionInfo> SessionManager::List() {
  std::lock_guard<std::mutex> work(work_mu_);
  std::lock_guard<std::mutex> registry(registry_mu_);
  std::vector<SessionInfo> out;
  out.reserve(creation_order_.size() + quarantined_.size());
  for (const std::string& id : creation_order_) {
    const Session* session = FindLocked(id);
    if (session != nullptr) out.push_back(InfoOf(*session));
  }
  // Quarantined records trail the live set, in id order (deterministic
  // regardless of quarantine timing).
  for (const auto& [id, record] : quarantined_) {
    out.push_back(InfoOfQuarantined(id, record));
  }
  return out;
}

std::size_t SessionManager::resident() const {
  std::lock_guard<std::mutex> registry(registry_mu_);
  return sessions_.size();
}

obs::MetricsSnapshot SessionManager::MetricsSnapshot() const {
  return metrics_->Snapshot();
}

}  // namespace bayescrowd::serve
