#include "serve/manager.h"

#include <limits>
#include <utility>

#include "common/string_util.h"
#include "core/session.h"

namespace bayescrowd::serve {

namespace {

std::vector<obs::Label> TenantLabels(const std::string& tenant) {
  return {{"tenant", tenant}};
}

std::vector<obs::Label> SessionLabels(const std::string& tenant,
                                      const std::string& id) {
  return {{"tenant", tenant}, {"session", id}};
}

std::string EventDetail(const std::string& tenant, const std::string& id,
                        const std::string& extra) {
  std::string out = StrFormat("tenant=%s session=%s", tenant.c_str(),
                              id.c_str());
  if (!extra.empty()) {
    out += ' ';
    out += extra;
  }
  return out;
}

}  // namespace

SessionManager::SessionManager(Options options)
    : options_(std::move(options)),
      cache_(options_.cache),
      local_flight_(256) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics : &local_metrics_;
  flight_ = options_.flight != nullptr ? options_.flight : &local_flight_;
  if (options_.max_resident_sessions == 0) options_.max_resident_sessions = 1;
  if (options_.max_sessions_per_tenant == 0) {
    options_.max_sessions_per_tenant = 1;
  }
}

std::uint64_t SessionManager::CacheScope(const std::string& tenant,
                                         const std::string& cache_key) {
  // Chained, not XORed: hash(tenantA)^hash(keyB) must not equal
  // hash(tenantB)^hash(keyA).
  std::uint64_t scope = HashBytes(tenant);
  scope = HashBytes(cache_key, scope);
  return scope == 0 ? 1 : scope;  // 0 means "unscoped" to the evaluator.
}

const TenantQos* SessionManager::QosFor(const std::string& tenant) const {
  const auto it = options_.qos.find(tenant);
  return it == options_.qos.end() ? nullptr : &it->second;
}

SessionManager::Session* SessionManager::FindLocked(const std::string& id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Status SessionManager::Create(SessionSpec spec) {
  std::lock_guard<std::mutex> work(work_mu_);
  if (spec.id.empty() || spec.tenant.empty()) {
    return Status::InvalidArgument("serve: session id and tenant required");
  }
  if (spec.resume && spec.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "serve: resume requires a checkpoint_dir");
  }

  // Admission control. Rejections are first-class telemetry: a labeled
  // counter plus a flight event, so capacity pressure is attributable
  // per tenant after the fact.
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    std::string reject;
    if (sessions_.count(spec.id) != 0) {
      return Status::AlreadyExists(
          StrFormat("serve: session '%s' already resident",
                    spec.id.c_str()));
    }
    if (sessions_.size() >= options_.max_resident_sessions) {
      reject = StrFormat("server at capacity (%zu resident)",
                         sessions_.size());
    } else {
      const TenantQos* qos = QosFor(spec.tenant);
      std::size_t tenant_cap = options_.max_sessions_per_tenant;
      if (qos != nullptr && qos->max_resident != 0) {
        tenant_cap = qos->max_resident;
      }
      const auto it = tenant_resident_.find(spec.tenant);
      const std::size_t tenant_now =
          it == tenant_resident_.end() ? 0 : it->second;
      if (tenant_now >= tenant_cap) {
        reject = StrFormat("tenant at capacity (%zu resident)", tenant_now);
      }
    }
    if (!reject.empty()) {
      metrics_->GetCounter("serve.admission.rejected",
                           TenantLabels(spec.tenant))
          ->Increment();
      flight_->Record(obs::FlightEventKind::kAdmission, 0, -1, 0.0,
                      /*value=*/0.0,
                      EventDetail(spec.tenant, spec.id, reject));
      return Status::ResourceExhausted(
          StrFormat("serve: admission rejected for '%s': %s",
                    spec.id.c_str(), reject.c_str()));
    }
  }

  auto session = std::make_unique<Session>();
  session->scope = CacheScope(spec.tenant, spec.cache_key);
  session->platform = std::make_unique<SimulatedCrowdPlatform>(
      spec.ground_truth, spec.platform);
  session->posteriors =
      spec.posteriors != nullptr
          ? spec.posteriors
          : std::make_shared<UniformPosteriorProvider>(
                spec.incomplete.schema());

  BayesCrowdOptions options = spec.options;
  options.pool = pool_;
  options.threads = 0;
  options.metrics = &session->metrics;
  options.session = spec.id;  // cost.* series carry the session id.
  options.probability.cache_scope = session->scope;
  if (!spec.checkpoint_dir.empty()) {
    session->store = std::make_unique<CheckpointStore>(CheckpointStore::
        Options{.dir = spec.checkpoint_dir,
                .session_id = spec.id,
                .keep = spec.checkpoint_keep});
    options.checkpoint_sink = session->store.get();
  }
  if (spec.resume) {
    std::size_t fallbacks = 0;
    Result<SessionState> latest = session->store->LoadLatest(
        std::numeric_limits<std::size_t>::max(), &fallbacks);
    BAYESCROWD_RETURN_NOT_OK(latest.status());
    session->resume_state =
        std::make_unique<SessionState>(std::move(latest).value());
    options.resume = session->resume_state.get();
    session->resumed = true;
  }

  session->runner = std::make_unique<QueryRunner>(options);
  session->spec = std::move(spec);
  Session& ref = *session;
  BAYESCROWD_RETURN_NOT_OK(ref.runner->Init(
      ref.spec.incomplete, *ref.posteriors, *ref.platform));

  if (ref.spec.warm_start) {
    std::string blob;
    const char* outcome = "miss";
    if (cache_.Get(ref.scope, &blob)) {
      Result<std::size_t> imported = ref.runner->ImportMemoState(blob);
      BAYESCROWD_RETURN_NOT_OK(imported.status());
      metrics_->GetCounter("serve.cache.imported_entries",
                           TenantLabels(ref.spec.tenant))
          ->Increment(static_cast<std::uint64_t>(imported.value()));
      outcome = "hit";
    }
    metrics_->GetCounter(
        StrFormat("serve.cache.warm_start.%s", outcome),
        TenantLabels(ref.spec.tenant))
        ->Increment();
  }

  // A resumed session may already be past a QoS threshold: re-apply the
  // step its round count calls for before it advances, so resume lands
  // on the same governor the uninterrupted session would be running.
  BAYESCROWD_RETURN_NOT_OK(MaybeDegrade(&ref));

  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    const std::string& tenant = ref.spec.tenant;
    const std::string& id = ref.spec.id;
    creation_order_.push_back(id);
    ++tenant_resident_[tenant];
    metrics_->GetCounter("serve.admission.admitted", TenantLabels(tenant))
        ->Increment();
    metrics_->GetCounter("serve.sessions.created", TenantLabels(tenant))
        ->Increment();
    flight_->Record(obs::FlightEventKind::kAdmission, ref.runner->rounds(),
                    -1, 0.0, /*value=*/1.0, EventDetail(tenant, id, ""));
    sessions_.emplace(id, std::move(session));
    metrics_->GetGauge("serve.sessions.resident")
        ->Set(static_cast<double>(sessions_.size()));
  }
  return Status::OK();
}

Status SessionManager::MaybeDegrade(Session* session) {
  const TenantQos* qos = QosFor(session->spec.tenant);
  if (qos == nullptr || qos->degrade_after_rounds == 0 ||
      qos->ladder.empty()) {
    return Status::OK();
  }
  const std::size_t rounds = session->runner->rounds();
  if (rounds < qos->degrade_after_rounds) return Status::OK();
  std::size_t desired =
      1 + (qos->degrade_every_rounds > 0
               ? (rounds - qos->degrade_after_rounds) /
                     qos->degrade_every_rounds
               : 0);
  if (desired > qos->ladder.size()) desired = qos->ladder.size();
  if (desired <= session->qos_level) return Status::OK();
  const GovernorOptions& governor = qos->ladder[desired - 1];
  BAYESCROWD_RETURN_NOT_OK(session->runner->ApplyGovernor(governor));
  session->qos_level = desired;
  metrics_->GetCounter(
      "serve.qos.degrades",
      SessionLabels(session->spec.tenant, session->spec.id))
      ->Increment();
  flight_->Record(
      obs::FlightEventKind::kQosDegrade, rounds, -1, 0.0,
      static_cast<double>(desired),
      EventDetail(session->spec.tenant, session->spec.id,
                  StrFormat("level=%zu max_nodes=%llu", desired,
                            static_cast<unsigned long long>(
                                governor.max_nodes))));
  return Status::OK();
}

Status SessionManager::AdvanceLockedImpl(Session* session,
                                         std::size_t max_rounds,
                                         AdvanceOutcome* out) {
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished",
                  session->spec.id.c_str()));
  }
  obs::Counter* rounds_counter = metrics_->GetCounter(
      "serve.rounds", SessionLabels(session->spec.tenant,
                                    session->spec.id));
  for (std::size_t i = 0; i < max_rounds && !session->runner->Done(); ++i) {
    BAYESCROWD_RETURN_NOT_OK(MaybeDegrade(session));
    BAYESCROWD_RETURN_NOT_OK(session->runner->Step());
    rounds_counter->Increment();
    ++out->rounds_run;
  }
  out->qos_level = session->qos_level;
  out->done = session->runner->Done();
  return Status::OK();
}

Result<AdvanceOutcome> SessionManager::Advance(const std::string& id,
                                               std::size_t max_rounds) {
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  AdvanceOutcome out;
  BAYESCROWD_RETURN_NOT_OK(AdvanceLockedImpl(session, max_rounds, &out));
  return out;
}

Result<std::size_t> SessionManager::AdvanceAll(std::size_t quantum) {
  std::lock_guard<std::mutex> work(work_mu_);
  std::vector<Session*> order;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    for (const std::string& id : creation_order_) {
      Session* session = FindLocked(id);
      if (session != nullptr) order.push_back(session);
    }
  }
  std::size_t active = 0;
  for (Session* session : order) {
    if (session->finished || session->runner->Done()) continue;
    AdvanceOutcome out;
    BAYESCROWD_RETURN_NOT_OK(AdvanceLockedImpl(session, quantum, &out));
    if (!out.done) ++active;
  }
  return active;
}

Status SessionManager::Checkpoint(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished", id.c_str()));
  }
  return session->runner->WriteCheckpointNow();
}

Result<BayesCrowdResult> SessionManager::Finish(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  if (session->finished) {
    return Status::FailedPrecondition(
        StrFormat("serve: session '%s' already finished", id.c_str()));
  }
  BAYESCROWD_RETURN_NOT_OK(session->runner->Finish());
  // Donate the memo state so the next session of this scope can warm
  // start. Donation is outside the determinism contract on purpose —
  // it only ever feeds opt-in warm starts.
  Result<std::string> blob = session->runner->ExportMemoState();
  if (blob.ok()) {
    cache_.Put(session->scope, std::move(blob).value());
    metrics_->GetCounter("serve.cache.donations",
                         TenantLabels(session->spec.tenant))
        ->Increment();
  }
  session->finished = true;
  metrics_->GetCounter("serve.sessions.finished",
                       TenantLabels(session->spec.tenant))
      ->Increment();
  return session->runner->TakeResult();
}

Status SessionManager::Evict(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  Session* session;
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    session = FindLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  std::string extra;
  if (!session->finished && session->store != nullptr &&
      session->runner->initialized()) {
    const Status snapshot = session->runner->WriteCheckpointNow();
    extra = snapshot.ok()
                ? StrFormat("checkpointed@%zu", session->runner->rounds())
                : StrFormat("checkpoint failed: %s",
                            snapshot.ToString().c_str());
  }
  const std::string tenant = session->spec.tenant;
  flight_->Record(obs::FlightEventKind::kEviction,
                  session->runner->rounds(), -1, 0.0,
                  session->finished ? 1.0 : 0.0,
                  EventDetail(tenant, id, extra));
  {
    std::lock_guard<std::mutex> registry(registry_mu_);
    sessions_.erase(id);
    for (auto it = creation_order_.begin(); it != creation_order_.end();
         ++it) {
      if (*it == id) {
        creation_order_.erase(it);
        break;
      }
    }
    auto tenant_it = tenant_resident_.find(tenant);
    if (tenant_it != tenant_resident_.end() && tenant_it->second > 0) {
      --tenant_it->second;
    }
    metrics_->GetCounter("serve.sessions.evicted", TenantLabels(tenant))
        ->Increment();
    metrics_->GetGauge("serve.sessions.resident")
        ->Set(static_cast<double>(sessions_.size()));
  }
  return Status::OK();
}

SessionInfo SessionManager::InfoOf(const Session& session) const {
  SessionInfo info;
  info.id = session.spec.id;
  info.tenant = session.spec.tenant;
  info.rounds = session.runner->rounds();
  info.budget_left = session.runner->budget_left();
  info.qos_level = session.qos_level;
  info.done = session.finished || session.runner->Done();
  info.finished = session.finished;
  info.resumed = session.resumed;
  return info;
}

Result<SessionInfo> SessionManager::Info(const std::string& id) {
  std::lock_guard<std::mutex> work(work_mu_);
  std::lock_guard<std::mutex> registry(registry_mu_);
  const Session* session = FindLocked(id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("serve: no session '%s'", id.c_str()));
  }
  return InfoOf(*session);
}

std::vector<SessionInfo> SessionManager::List() {
  std::lock_guard<std::mutex> work(work_mu_);
  std::lock_guard<std::mutex> registry(registry_mu_);
  std::vector<SessionInfo> out;
  out.reserve(creation_order_.size());
  for (const std::string& id : creation_order_) {
    const Session* session = FindLocked(id);
    if (session != nullptr) out.push_back(InfoOf(*session));
  }
  return out;
}

std::size_t SessionManager::resident() const {
  std::lock_guard<std::mutex> registry(registry_mu_);
  return sessions_.size();
}

obs::MetricsSnapshot SessionManager::MetricsSnapshot() const {
  return metrics_->Snapshot();
}

}  // namespace bayescrowd::serve
