// SessionManager: BayesCrowd as a resident service.
//
// One process, one shared worker pool, many live query sessions. The
// one-shot pipeline (BayesCrowd::Run) answers a single query and
// exits; a serving process instead keeps N sessions resident —
// possibly for N different tenants — and interleaves their crowd
// rounds. The manager is the multiplexing layer over core/runner.h:
//
//   Create    admission control (global + per-tenant residency caps),
//             then QueryRunner::Init on the shared pool — modeling
//             phase, optional checkpoint resume, optional warm start
//             from the shared cross-session cache
//   Advance   up to K crowd rounds of one session; per-tenant QoS is
//             applied at round boundaries (a heavy tenant's governor
//             budgets tighten down the existing degradation ladder)
//   Checkpoint  explicit snapshot via the session's namespaced store
//   Finish    answer inference; the session's memo state is donated to
//             the shared cache for future warm starts of its scope
//   Evict     drop a resident session (checkpointing first when a
//             store is configured and the session is unfinished)
//
// Determinism contract: each session's observable behavior (results,
// metrics, round logs) is a pure function of its spec — never of the
// interleaving. Everything cross-session is either partitioned
// (per-session metrics registries, per-session platform RNGs,
// namespaced checkpoint generations, scope-stamped cache entries) or
// order-insensitive by construction (QoS decisions read only the
// session's own round counter; the shared pool runs one session's
// ParallelFor at a time behind the work mutex, and lane-order effects
// are already excluded by the evaluator's deterministic folds). The
// serve_test harness pins this: N interleaved sessions byte-match N
// sequential runs of the same specs.
//
// Thread safety: every verb may be called from any client thread.
// Stepping work serializes on a single work mutex — sessions share one
// pool, so true intra-round parallelism comes from the pool's lanes,
// and round-granularity interleaving across sessions is the fairness
// quantum (this also keeps the pool's error latch session-pure).

#ifndef BAYESCROWD_SERVE_MANAGER_H_
#define BAYESCROWD_SERVE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/runner.h"
#include "crowd/platform.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "serve/cache.h"

namespace bayescrowd::serve {

/// Per-tenant quality-of-service policy. Degradation is session-local
/// and round-based on purpose: a decision driven by the session's own
/// deterministic round counter cannot depend on how sessions happen to
/// interleave, which is what keeps serving deterministic.
struct TenantQos {
  /// Resident-session cap for this tenant (0 = the manager default).
  std::size_t max_resident = 0;

  /// After this many rounds of a single session, the session's solver
  /// governor steps down `ladder`. 0 = never degrade.
  std::size_t degrade_after_rounds = 0;

  /// Rounds between subsequent steps (0 = a single step only).
  std::size_t degrade_every_rounds = 0;

  /// Governor configurations applied at step 1, 2, ... (clamped to the
  /// last entry). Typically successively tighter max_nodes budgets:
  /// the per-evaluation SolverGovernor then walks its own degradation
  /// ladder, so heavy tenants get graded intervals instead of stalls.
  std::vector<GovernorOptions> ladder;
};

/// Everything needed to admit one session. Tables are held by value:
/// the manager owns the session's whole world so the client connection
/// can go away between verbs.
struct SessionSpec {
  std::string id;      // Unique among resident sessions.
  std::string tenant;  // Non-empty; selects the QoS policy + caps.

  Table incomplete;    // The queried table (with missing cells).
  Table ground_truth;  // Simulated crowd's answer source.
  SimulatedPlatformOptions platform;

  /// Per-session query options. `pool`, `metrics` and `session` are
  /// overwritten by the manager (shared pool, per-session registry,
  /// id-labeled cost series); `checkpoint_sink` is overwritten when
  /// `checkpoint_dir` is set; everything else is the caller's.
  BayesCrowdOptions options;

  /// Posterior source; null = UniformPosteriorProvider over the
  /// incomplete table's schema (the zero-knowledge baseline).
  std::shared_ptr<PosteriorProvider> posteriors;

  /// Shared-cache identity of the session's dataset. The cache scope is
  /// hash(tenant) chained with hash(cache_key), so tenants never share
  /// entries, and one tenant's datasets are kept apart as long as their
  /// keys differ. Leave "" only when the tenant always queries one
  /// dataset.
  std::string cache_key;

  /// Import the shared cache's blob for this scope after Init (off by
  /// default: a warm start changes the hit/miss sequence, so it is
  /// opt-in and excluded from the interleaving bit-identity contract).
  bool warm_start = false;

  /// Enables the checkpoint verb: generations are written to this
  /// directory namespaced by session id (two resident sessions can
  /// share a directory without pruning each other). "" = no store.
  std::string checkpoint_dir;
  std::size_t checkpoint_keep = 3;

  /// Resume from the newest usable generation in `checkpoint_dir`
  /// (which must be set) instead of starting fresh.
  bool resume = false;
};

/// A resident session's externally visible state.
struct SessionInfo {
  std::string id;
  std::string tenant;
  std::size_t rounds = 0;
  double budget_left = 0.0;
  std::size_t qos_level = 0;
  bool done = false;      // No further rounds possible.
  bool finished = false;  // Finish() ran; result was taken.
  bool resumed = false;
};

struct AdvanceOutcome {
  std::size_t rounds_run = 0;
  std::size_t qos_level = 0;
  bool done = false;
};

class SessionManager {
 public:
  struct Options {
    /// Lanes of the owned worker pool (0 = hardware concurrency);
    /// ignored when `pool` is injected.
    std::size_t threads = 0;
    ThreadPool* pool = nullptr;  // Non-owning override.

    /// Global residency cap; Create past it is ResourceExhausted.
    std::size_t max_resident_sessions = 8;

    /// Default per-tenant residency cap (TenantQos::max_resident
    /// overrides per tenant).
    std::size_t max_sessions_per_tenant = 4;

    std::map<std::string, TenantQos> qos;  // Keyed by tenant.

    SharedQueryCache::Options cache;

    /// Serve-level instruments (admissions, evictions, QoS steps,
    /// cache traffic), labeled tenant=/session=. Null = owned registry.
    /// Distinct from the per-session registries the manager creates.
    obs::MetricsRegistry* metrics = nullptr;

    /// Serve-level incident ring (admission/eviction/qos_degrade
    /// events). Null = owned recorder.
    obs::FlightRecorder* flight = nullptr;
  };

  explicit SessionManager(Options options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admission + QueryRunner::Init (+ resume / warm start). On
  /// rejection the spec is not consumed destructively and nothing
  /// stays resident: AlreadyExists (duplicate id), InvalidArgument
  /// (empty id/tenant, resume without a checkpoint dir),
  /// ResourceExhausted (a residency cap).
  Status Create(SessionSpec spec);

  /// Runs up to `max_rounds` crowd rounds, applying the tenant's QoS
  /// policy at each round boundary. NotFound for unknown ids;
  /// FailedPrecondition after Finish.
  Result<AdvanceOutcome> Advance(const std::string& id,
                                 std::size_t max_rounds);

  /// One fair round-robin sweep: every unfinished resident session
  /// advances up to `quantum` rounds, in creation order. Returns the
  /// number of sessions that can still make progress.
  Result<std::size_t> AdvanceAll(std::size_t quantum);

  /// Explicit snapshot (QueryRunner::WriteCheckpointNow).
  Status Checkpoint(const std::string& id);

  /// Answer inference; donates the session's memo state to the shared
  /// cache and returns the sealed result. The session stays resident
  /// (info/evict still work) but cannot advance again.
  Result<BayesCrowdResult> Finish(const std::string& id);

  /// Drops a resident session. An unfinished session with a checkpoint
  /// store is snapshotted first so its progress survives eviction.
  Status Evict(const std::string& id);

  Result<SessionInfo> Info(const std::string& id);
  std::vector<SessionInfo> List();
  std::size_t resident() const;

  obs::MetricsSnapshot MetricsSnapshot() const;
  SharedQueryCache::Stats cache_stats() const { return cache_.stats(); }
  obs::FlightRecorder* flight() { return flight_; }

  /// The scope key Create derives for (tenant, cache_key) — exposed so
  /// tests can pin the isolation property.
  static std::uint64_t CacheScope(const std::string& tenant,
                                  const std::string& cache_key);

 private:
  struct Session {
    SessionSpec spec;
    std::uint64_t scope = 0;
    std::size_t qos_level = 0;
    bool finished = false;
    bool resumed = false;

    obs::MetricsRegistry metrics;  // Per-session; partitions telemetry.
    std::shared_ptr<PosteriorProvider> posteriors;
    std::unique_ptr<SimulatedCrowdPlatform> platform;
    std::unique_ptr<CheckpointStore> store;
    // Alive for the runner's lifetime: BayesCrowdOptions::resume holds
    // a pointer into it.
    std::unique_ptr<SessionState> resume_state;
    std::unique_ptr<QueryRunner> runner;
  };

  Session* FindLocked(const std::string& id);
  SessionInfo InfoOf(const Session& session) const;
  const TenantQos* QosFor(const std::string& tenant) const;
  /// Applies the tenant ladder step the session's round count calls
  /// for; records the qos_degrade event + counter on a step.
  Status MaybeDegrade(Session* session);
  Status AdvanceLockedImpl(Session* session, std::size_t max_rounds,
                           AdvanceOutcome* out);

  Options options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  SharedQueryCache cache_;
  obs::MetricsRegistry local_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder local_flight_;
  obs::FlightRecorder* flight_ = nullptr;

  /// Serializes all stepping work (Init/Step/Finish/checkpoint I/O):
  /// sessions share one pool, and one session's rounds must not observe
  /// another's pool error latch. Always acquired before registry_mu_.
  std::mutex work_mu_;
  /// Guards the session map + creation order.
  mutable std::mutex registry_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::vector<std::string> creation_order_;
  std::map<std::string, std::size_t> tenant_resident_;
};

}  // namespace bayescrowd::serve

#endif  // BAYESCROWD_SERVE_MANAGER_H_
