// SessionManager: BayesCrowd as a resident service.
//
// One process, one shared worker pool, many live query sessions. The
// one-shot pipeline (BayesCrowd::Run) answers a single query and
// exits; a serving process instead keeps N sessions resident —
// possibly for N different tenants — and interleaves their crowd
// rounds. The manager is the multiplexing layer over core/runner.h:
//
//   Create    admission control (global + per-tenant residency caps),
//             then QueryRunner::Init on the shared pool — modeling
//             phase, optional checkpoint resume, optional warm start
//             from the shared cross-session cache
//   Advance   up to K crowd rounds of one session; per-tenant QoS is
//             applied at round boundaries (a heavy tenant's governor
//             budgets tighten down the existing degradation ladder)
//   Checkpoint  explicit snapshot via the session's namespaced store
//   Finish    answer inference; the session's memo state is donated to
//             the shared cache for future warm starts of its scope
//   Evict     drop a resident session (checkpointing first when a
//             store is configured and the session is unfinished)
//
// Determinism contract: each session's observable behavior (results,
// metrics, round logs) is a pure function of its spec — never of the
// interleaving. Everything cross-session is either partitioned
// (per-session metrics registries, per-session platform RNGs,
// namespaced checkpoint generations, scope-stamped cache entries) or
// order-insensitive by construction (QoS decisions read only the
// session's own round counter; the shared pool runs one session's
// ParallelFor at a time behind the work mutex, and lane-order effects
// are already excluded by the evaluator's deterministic folds). The
// serve_test harness pins this: N interleaved sessions byte-match N
// sequential runs of the same specs.
//
// Thread safety: every verb may be called from any client thread.
// Stepping work serializes on a single work mutex — sessions share one
// pool, so true intra-round parallelism comes from the pool's lanes,
// and round-granularity interleaving across sessions is the fairness
// quantum. The queue on the work mutex is bounded: past
// 1 + max_queued_requests in-flight stepping requests, new ones shed
// with Unavailable + a retry hint instead of queueing without bound.
//
// Crash-only serving (DESIGN.md §14): with a state_dir configured,
// every lifecycle verb journals a CRC-framed record to the serve
// manifest, and Recover() mass-resumes the resident set after a process
// death. Sessions that fail repeatedly are quarantined out of the pool
// instead of wedging it.

#ifndef BAYESCROWD_SERVE_MANAGER_H_
#define BAYESCROWD_SERVE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/fileio.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/runner.h"
#include "crowd/marketplace.h"
#include "crowd/platform.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/manifest.h"

namespace bayescrowd::serve {

/// Per-tenant quality-of-service policy. Degradation is session-local
/// and round-based on purpose: a decision driven by the session's own
/// deterministic round counter cannot depend on how sessions happen to
/// interleave, which is what keeps serving deterministic.
struct TenantQos {
  /// Resident-session cap for this tenant (0 = the manager default).
  std::size_t max_resident = 0;

  /// After this many rounds of a single session, the session's solver
  /// governor steps down `ladder`. 0 = never degrade.
  std::size_t degrade_after_rounds = 0;

  /// Rounds between subsequent steps (0 = a single step only).
  std::size_t degrade_every_rounds = 0;

  /// Governor configurations applied at step 1, 2, ... (clamped to the
  /// last entry). Typically successively tighter max_nodes budgets:
  /// the per-evaluation SolverGovernor then walks its own degradation
  /// ladder, so heavy tenants get graded intervals instead of stalls.
  std::vector<GovernorOptions> ladder;
};

/// Everything needed to admit one session. Tables are held by value:
/// the manager owns the session's whole world so the client connection
/// can go away between verbs.
struct SessionSpec {
  std::string id;      // Unique among resident sessions.
  std::string tenant;  // Non-empty; selects the QoS policy + caps.

  Table incomplete;    // The queried table (with missing cells).
  Table ground_truth;  // Simulated crowd's answer source.
  SimulatedPlatformOptions platform;

  /// When true the session's crowd is the adversarial marketplace
  /// (crowd/marketplace.h) — individual workers with churn, spam
  /// defense, adaptive votes — instead of the flat simulated mixture;
  /// `platform` above is then ignored. The marketplace's learned
  /// reputations ride the session checkpoint, so recover/resume keeps
  /// quarantines.
  bool use_marketplace = false;
  MarketplaceOptions marketplace;

  /// Per-session query options. `pool`, `metrics` and `session` are
  /// overwritten by the manager (shared pool, per-session registry,
  /// id-labeled cost series); `checkpoint_sink` is overwritten when
  /// `checkpoint_dir` is set; everything else is the caller's.
  BayesCrowdOptions options;

  /// Posterior source; null = UniformPosteriorProvider over the
  /// incomplete table's schema (the zero-knowledge baseline).
  std::shared_ptr<PosteriorProvider> posteriors;

  /// Shared-cache identity of the session's dataset. The cache scope is
  /// hash(tenant) chained with hash(cache_key), so tenants never share
  /// entries, and one tenant's datasets are kept apart as long as their
  /// keys differ. Leave "" only when the tenant always queries one
  /// dataset.
  std::string cache_key;

  /// Import the shared cache's blob for this scope after Init (off by
  /// default: a warm start changes the hit/miss sequence, so it is
  /// opt-in and excluded from the interleaving bit-identity contract).
  bool warm_start = false;

  /// Enables the checkpoint verb: generations are written to this
  /// directory namespaced by session id (two resident sessions can
  /// share a directory without pruning each other). "" = no store.
  std::string checkpoint_dir;
  std::size_t checkpoint_keep = 3;

  /// Resume from the newest usable generation in `checkpoint_dir`
  /// (which must be set) instead of starting fresh.
  bool resume = false;

  /// Opaque spec payload journaled with the session's manifest events.
  /// The serve tool stores the original create-request JSON line here
  /// so Recover's resolver can rebuild the full spec after a crash.
  /// Part of the spec fingerprint.
  std::string manifest_blob;

  /// Per-session IO override for the checkpoint store (null = the
  /// manager's IO). Chaos tests poison one session's disk this way
  /// while co-resident tenants stay healthy.
  FileIo* io = nullptr;
};

/// A resident session's externally visible state.
struct SessionInfo {
  std::string id;
  std::string tenant;
  std::size_t rounds = 0;
  double budget_left = 0.0;
  std::size_t qos_level = 0;
  bool done = false;      // No further rounds possible.
  bool finished = false;  // Finish() ran; result was taken.
  bool resumed = false;
  bool quarantined = false;  // Isolated after repeated step failures.
};

struct AdvanceOutcome {
  std::size_t rounds_run = 0;
  std::size_t qos_level = 0;
  bool done = false;
};

/// What Recover() rebuilt from the manifest, for telemetry and the
/// `--recover` wire response.
struct RecoveryReport {
  std::size_t events_replayed = 0;
  std::size_t sessions_resumed = 0;   // Restored from a checkpoint.
  std::size_t sessions_fresh = 0;     // Re-admitted from round 0 (no
                                      // usable checkpoint; deterministic
                                      // re-run converges to the same
                                      // state).
  std::size_t sessions_failed = 0;    // Resolver/Init failure; skipped.
  std::size_t checkpoint_fallbacks = 0;  // Damaged generations skipped.
  std::size_t fingerprint_mismatches = 0;  // Resolver spec != manifest.
  std::size_t duplicate_events = 0;   // Create for an already-live id.
  std::size_t torn_tail_records = 0;
  std::size_t unknown_event_records = 0;
  std::vector<std::string> quarantined;  // Ids carried over as records.
};

class SessionManager {
 public:
  struct Options {
    /// Lanes of the owned worker pool (0 = hardware concurrency);
    /// ignored when `pool` is injected.
    std::size_t threads = 0;
    ThreadPool* pool = nullptr;  // Non-owning override.

    /// Global residency cap; Create past it is ResourceExhausted.
    std::size_t max_resident_sessions = 8;

    /// Default per-tenant residency cap (TenantQos::max_resident
    /// overrides per tenant).
    std::size_t max_sessions_per_tenant = 4;

    std::map<std::string, TenantQos> qos;  // Keyed by tenant.

    SharedQueryCache::Options cache;

    /// Serve-level instruments (admissions, evictions, QoS steps,
    /// cache traffic), labeled tenant=/session=. Null = owned registry.
    /// Distinct from the per-session registries the manager creates.
    obs::MetricsRegistry* metrics = nullptr;

    /// Serve-level incident ring (admission/eviction/qos_degrade
    /// events). Null = owned recorder.
    obs::FlightRecorder* flight = nullptr;

    /// Durable server state directory. Non-empty enables the serve
    /// manifest (<state_dir>/serve-manifest.bin): every lifecycle verb
    /// journals a CRC-framed record, and Recover() can mass-resume the
    /// whole resident set after a crash. "" = no manifest (PR 8
    /// behavior).
    std::string state_dir;

    /// IO seam for the manifest and session checkpoint stores (null =
    /// the real filesystem). The chaos harness injects faults here.
    FileIo* io = nullptr;

    /// Bounded admission queue for stepping verbs (Advance/AdvanceAll/
    /// Checkpoint/Finish): with more than 1 + max_queued_requests such
    /// requests in flight, new ones are shed with Unavailable +
    /// retry_after_ms instead of queueing without bound on the work
    /// mutex. Create is bounded by the residency caps instead.
    std::size_t max_queued_requests = 8;

    /// Retry hint carried in shed responses.
    std::int64_t retry_after_ms = 50;

    /// A session whose Step fails this many times consecutively is
    /// quarantined: checkpointed if possible, removed from the resident
    /// pool, reported as `quarantined` by list/info. 0 disables.
    std::size_t quarantine_after_failures = 3;

    /// Test/chaos hook: shed every Nth stepping request through the
    /// real shed path regardless of load, so single-threaded drivers
    /// can pin the shed wire format deterministically. 0 = off.
    std::size_t debug_shed_every = 0;
  };

  /// Rebuilds a SessionSpec from a manifest event during Recover().
  /// Gets the journaled event (spec_blob carries what Create was given
  /// in SessionSpec::manifest_blob); returns the spec to re-admit.
  using SpecResolver =
      std::function<Result<SessionSpec>(const ManifestEvent&)>;

  explicit SessionManager(Options options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admission + QueryRunner::Init (+ resume / warm start). On
  /// rejection the spec is not consumed destructively and nothing
  /// stays resident: AlreadyExists (duplicate id), InvalidArgument
  /// (empty id/tenant, resume without a checkpoint dir),
  /// ResourceExhausted (a residency cap).
  Status Create(SessionSpec spec);

  /// Replays the serve manifest in `state_dir` and mass-resumes every
  /// session that was live at the crash: each is re-admitted via
  /// `resolver` and restored from its newest valid namespaced
  /// checkpoint (PR 4 fallback semantics), or re-run fresh when no
  /// usable generation survived — the deterministic simulated crowd
  /// re-buys the lost rounds bit-identically. Quarantined sessions are
  /// carried over as quarantine records, not resumed. Afterwards the
  /// manifest is compacted (atomic rotation) to one record per live
  /// session. Call before serving traffic: FailedPrecondition once any
  /// session is resident, or without a state_dir. A missing manifest
  /// recovers an empty server.
  Result<RecoveryReport> Recover(const SpecResolver& resolver);

  /// Runs up to `max_rounds` crowd rounds, applying the tenant's QoS
  /// policy at each round boundary. NotFound for unknown ids;
  /// FailedPrecondition after Finish or quarantine. `deadline_ms` > 0
  /// tightens the session's solver-governor deadline for this request
  /// only (degrade-only: results stay correct, sub-evaluations may
  /// grade; the base governor is restored afterwards).
  Result<AdvanceOutcome> Advance(const std::string& id,
                                 std::size_t max_rounds,
                                 std::int64_t deadline_ms = 0);

  /// One fair round-robin sweep: every unfinished resident session
  /// advances up to `quantum` rounds, in creation order. Returns the
  /// number of sessions that can still make progress. One session's
  /// step failure never aborts the sweep or latches the pool: the
  /// failure is counted against that session (quarantining it at the
  /// threshold) and the sweep continues with the others.
  Result<std::size_t> AdvanceAll(std::size_t quantum);

  /// Explicit snapshot (QueryRunner::WriteCheckpointNow).
  Status Checkpoint(const std::string& id);

  /// Answer inference; donates the session's memo state to the shared
  /// cache and returns the sealed result. The session stays resident
  /// (info/evict still work) but cannot advance again.
  Result<BayesCrowdResult> Finish(const std::string& id);

  /// Drops a resident session. An unfinished session with a checkpoint
  /// store is snapshotted first so its progress survives eviction.
  Status Evict(const std::string& id);

  Result<SessionInfo> Info(const std::string& id);
  std::vector<SessionInfo> List();
  std::size_t resident() const;

  obs::MetricsSnapshot MetricsSnapshot() const;
  SharedQueryCache::Stats cache_stats() const { return cache_.stats(); }
  obs::FlightRecorder* flight() { return flight_; }

  /// The scope key Create derives for (tenant, cache_key) — exposed so
  /// tests can pin the isolation property.
  static std::uint64_t CacheScope(const std::string& tenant,
                                  const std::string& cache_key);

  /// The spec fingerprint journaled with every manifest event: chained
  /// hash of tenant, cache_key and manifest_blob. Recover refuses to
  /// re-admit a resolved spec whose fingerprint mismatches the journal.
  static std::uint64_t SpecFingerprint(const SessionSpec& spec);

 private:
  struct Session {
    SessionSpec spec;
    std::uint64_t scope = 0;
    std::size_t qos_level = 0;
    bool finished = false;
    bool resumed = false;
    std::size_t resume_fallbacks = 0;  // Generations skipped on resume.
    std::size_t consecutive_failures = 0;  // Step failures in a row.

    /// The governor currently in force absent any request deadline:
    /// the spec's base, replaced by ladder rungs as QoS steps down.
    GovernorOptions current_governor;
    std::int64_t request_deadline_ms = 0;  // This request only.

    obs::MetricsRegistry metrics;  // Per-session; partitions telemetry.
    std::shared_ptr<PosteriorProvider> posteriors;
    std::unique_ptr<CrowdPlatform> platform;
    std::unique_ptr<CheckpointStore> store;
    // Alive for the runner's lifetime: BayesCrowdOptions::resume holds
    // a pointer into it.
    std::unique_ptr<SessionState> resume_state;
    std::unique_ptr<QueryRunner> runner;
  };

  /// What list/info report for a quarantined ex-resident session.
  struct QuarantineRecord {
    std::string tenant;
    std::size_t rounds = 0;
    std::size_t qos_level = 0;
    std::string reason;
  };

  /// Decrements inflight_ when an admitted stepping request finishes.
  class InflightGuard;

  Session* FindLocked(const std::string& id);
  SessionInfo InfoOf(const Session& session) const;
  static SessionInfo InfoOfQuarantined(const std::string& id,
                                       const QuarantineRecord& record);
  const TenantQos* QosFor(const std::string& tenant) const;
  /// Applies the tenant ladder step the session's round count calls
  /// for; records the qos_degrade event + counter on a step.
  Status MaybeDegrade(Session* session);
  /// Re-applies current_governor, tightened by the in-flight request
  /// deadline when one is set.
  Status ApplyGovernorNow(Session* session);
  /// `journal` (may be null) collects the kAdvance record when rounds
  /// ran — captured here because a step failure may quarantine (and
  /// free) the session before the caller could build it.
  Status AdvanceLockedImpl(Session* session, std::size_t max_rounds,
                           std::int64_t deadline_ms, AdvanceOutcome* out,
                           std::vector<ManifestEvent>* journal);
  /// Create minus the work-mutex acquisition and journaling policy;
  /// shared by Create and Recover.
  Status CreateImpl(SessionSpec spec, bool journal);
  /// Bounded-queue admission for stepping verbs; Unavailable when shed.
  /// On OK the caller owns one inflight_ decrement (InflightGuard).
  Status AdmitStep(const char* verb);
  /// Records one step failure; quarantines at the threshold. Call with
  /// work_mu_ held.
  void NoteStepFailure(Session* session, const Status& error);
  /// Moves the session out of the pool into quarantined_ (best-effort
  /// checkpoint first). Call with work_mu_ held, registry_mu_ not held.
  void QuarantineLocked(Session* session, const std::string& reason);
  /// Builds the manifest event for a session's current state.
  ManifestEvent EventOf(const Session& session, ManifestEventKind kind,
                        const std::string& detail) const;
  /// Journals events when the manifest is enabled. Append failures
  /// degrade (counter + flight note), never fail the verb — the journal
  /// is a recovery aid, not a commit log.
  void Journal(const std::vector<ManifestEvent>& events);
  std::string ManifestPath() const;
  FileIo* io() const;

  Options options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  SharedQueryCache cache_;
  obs::MetricsRegistry local_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder local_flight_;
  obs::FlightRecorder* flight_ = nullptr;
  std::unique_ptr<ServeManifest> manifest_;  // Null without state_dir.

  /// Stepping requests currently admitted (holding or queued on
  /// work_mu_). Bounded by 1 + max_queued_requests; beyond that new
  /// stepping requests shed instead of queueing.
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> step_requests_{0};  // For debug_shed_every.

  /// Serializes all stepping work (Init/Step/Finish/checkpoint I/O):
  /// sessions share one pool, and round-granularity interleaving is
  /// the fairness quantum. Always acquired before registry_mu_.
  std::mutex work_mu_;
  /// Guards the session map + creation order + quarantine records.
  mutable std::mutex registry_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::vector<std::string> creation_order_;
  std::map<std::string, std::size_t> tenant_resident_;
  std::map<std::string, QuarantineRecord> quarantined_;
};

}  // namespace bayescrowd::serve

#endif  // BAYESCROWD_SERVE_MANAGER_H_
