#include "serve/manifest.h"

#include <filesystem>
#include <utility>

#include "common/binio.h"
#include "common/crc32.h"

namespace bayescrowd::serve {
namespace {

constexpr char kMagic[4] = {'B', 'S', 'M', 'N'};
constexpr std::uint32_t kVersion = 1;

// Framing overhead around each payload: u32 length + u32 CRC.
constexpr std::size_t kFrameBytes = 8;

std::string EncodePayload(const ManifestEvent& event) {
  std::string payload;
  BinWriter writer(&payload);
  writer.WriteU8(static_cast<std::uint8_t>(event.kind));
  writer.WriteString(event.session_id);
  writer.WriteString(event.tenant);
  writer.WriteU64(event.rounds);
  writer.WriteU64(event.qos_level);
  writer.WriteU64(event.spec_fingerprint);
  writer.WriteString(event.checkpoint_dir);
  writer.WriteU64(event.checkpoint_keep);
  writer.WriteString(event.spec_blob);
  writer.WriteString(event.detail);
  return payload;
}

Status DecodePayload(std::string_view payload, ManifestEvent* event,
                     std::uint8_t* raw_kind) {
  BinReader reader(payload);
  BAYESCROWD_RETURN_NOT_OK(reader.ReadU8(raw_kind));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadString(&event->session_id));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadString(&event->tenant));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadU64(&event->rounds));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadU64(&event->qos_level));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadU64(&event->spec_fingerprint));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadString(&event->checkpoint_dir));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadU64(&event->checkpoint_keep));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadString(&event->spec_blob));
  BAYESCROWD_RETURN_NOT_OK(reader.ReadString(&event->detail));
  return Status::OK();
}

}  // namespace

const char* ManifestEventKindToString(ManifestEventKind kind) {
  switch (kind) {
    case ManifestEventKind::kCreate: return "create";
    case ManifestEventKind::kAdvance: return "advance";
    case ManifestEventKind::kCheckpoint: return "checkpoint";
    case ManifestEventKind::kFinish: return "finish";
    case ManifestEventKind::kEvict: return "evict";
    case ManifestEventKind::kQuarantine: return "quarantine";
  }
  return "unknown";
}

std::string EncodeManifestRecord(const ManifestEvent& event) {
  const std::string payload = EncodePayload(event);
  std::string record;
  BinWriter writer(&record);
  writer.WriteU32(static_cast<std::uint32_t>(payload.size()));
  record.append(payload);
  writer.WriteU32(Crc32(payload));
  return record;
}

std::string ManifestHeader() {
  std::string header(kMagic, sizeof(kMagic));
  BinWriter writer(&header);
  writer.WriteU32(kVersion);
  return header;
}

ManifestLoad ParseManifest(std::string_view bytes) {
  ManifestLoad load;
  const std::string header = ManifestHeader();
  if (bytes.size() < header.size() ||
      bytes.substr(0, header.size()) != header) {
    if (!bytes.empty()) load.torn_tail_records = 1;
    return load;
  }
  std::size_t pos = header.size();
  while (pos < bytes.size()) {
    BinReader framing(bytes.substr(pos));
    std::uint32_t len = 0;
    if (!framing.ReadU32(&len).ok() ||
        framing.remaining() < static_cast<std::size_t>(len) + 4) {
      // Truncated frame: a crash mid-append. Trust everything before it.
      ++load.torn_tail_records;
      return load;
    }
    const std::string_view payload = bytes.substr(pos + 4, len);
    BinReader crc_reader(bytes.substr(pos + 4 + len, 4));
    std::uint32_t stored_crc = 0;
    (void)crc_reader.ReadU32(&stored_crc);
    if (Crc32(payload) != stored_crc) {
      ++load.torn_tail_records;
      return load;
    }
    ManifestEvent event;
    std::uint8_t raw_kind = 0;
    if (!DecodePayload(payload, &event, &raw_kind).ok()) {
      // Framing and CRC were intact, so this is a mis-encoded payload
      // rather than a torn tail; stop scanning all the same.
      ++load.torn_tail_records;
      return load;
    }
    pos += kFrameBytes + len;
    if (raw_kind > static_cast<std::uint8_t>(ManifestEventKind::kQuarantine)) {
      // A newer writer's event kind: skip it, keep scanning.
      ++load.unknown_kind_records;
      continue;
    }
    event.kind = static_cast<ManifestEventKind>(raw_kind);
    load.events.push_back(std::move(event));
  }
  return load;
}

Result<ManifestLoad> LoadManifest(FileIo* io, const std::string& path) {
  if (io == nullptr) io = RealFileIo();
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return ManifestLoad{};
  BAYESCROWD_ASSIGN_OR_RETURN(std::string bytes, io->ReadFile(path));
  return ParseManifest(bytes);
}

ServeManifest::ServeManifest(Options options) : options_(std::move(options)) {
  if (options_.io == nullptr) options_.io = RealFileIo();
}

Status ServeManifest::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  const std::filesystem::path dir =
      std::filesystem::path(options_.path).parent_path();
  if (!dir.empty()) {
    BAYESCROWD_RETURN_NOT_OK(options_.io->CreateDirs(dir.string()));
  }
  BAYESCROWD_ASSIGN_OR_RETURN(file_,
                              options_.io->OpenAppend(options_.path, false));
  BAYESCROWD_ASSIGN_OR_RETURN(const std::uint64_t size, file_->Size());
  if (size == 0) {
    BAYESCROWD_RETURN_NOT_OK(file_->Append(ManifestHeader()));
  }
  return Status::OK();
}

Status ServeManifest::Append(const ManifestEvent& event) {
  return Append(std::vector<ManifestEvent>{event});
}

Status ServeManifest::Append(const std::vector<ManifestEvent>& events) {
  if (events.empty()) return Status::OK();
  BAYESCROWD_RETURN_NOT_OK(EnsureOpen());
  std::string batch;
  for (const ManifestEvent& event : events) {
    batch.append(EncodeManifestRecord(event));
  }
  BAYESCROWD_RETURN_NOT_OK(file_->Append(batch));
  return file_->Sync();
}

Status ServeManifest::Rewrite(const std::vector<ManifestEvent>& events) {
  file_.reset();  // The handle would hold the replaced inode open.
  const std::filesystem::path path(options_.path);
  const std::filesystem::path dir = path.parent_path();
  if (!dir.empty()) {
    BAYESCROWD_RETURN_NOT_OK(options_.io->CreateDirs(dir.string()));
  }
  std::string bytes = ManifestHeader();
  for (const ManifestEvent& event : events) {
    bytes.append(EncodeManifestRecord(event));
  }
  const std::string tmp = options_.path + ".tmp";
  BAYESCROWD_RETURN_NOT_OK(options_.io->WriteFileDurable(tmp, bytes));
  BAYESCROWD_RETURN_NOT_OK(options_.io->Rename(tmp, options_.path));
  if (!dir.empty()) {
    BAYESCROWD_RETURN_NOT_OK(options_.io->SyncDir(dir.string()));
  }
  return Status::OK();
}

}  // namespace bayescrowd::serve
