// Durable serve manifest: the append-only journal that makes the
// *server* crash-only, the way `core/checkpoint` makes one session
// crash-only.
//
// The manager appends one record per session lifecycle event (create /
// advance / checkpoint / finish / evict / quarantine). On restart,
// replaying the journal reconstructs exactly which sessions were live,
// under which tenant, with which spec fingerprint and checkpoint
// namespace — enough to mass-resume every one of them from its newest
// valid checkpoint without any per-session bookkeeping surviving the
// crash.
//
// File layout (little-endian, mirroring the BCKP envelope idioms):
//
//   "BSMN" | u32 version
//   repeated records:  u32 payload_len | payload | u32 crc32(payload)
//
// Each payload is a fixed field tuple (kind, id, tenant, rounds,
// qos_level, spec fingerprint, checkpoint namespace, spec blob, detail)
// regardless of kind — uniform framing keeps the tolerant reader
// trivial. The reader is torn-tail-tolerant: a truncated or
// CRC-mismatching record ends the scan (everything before it is
// trusted), and a record with an unknown kind byte is skipped with a
// counter so newer writers don't brick older readers.
//
// All IO flows through the injectable FileIo seam; rotation (compaction
// after recovery) is atomic tmp + fsync + rename + dir-fsync.

#ifndef BAYESCROWD_SERVE_MANIFEST_H_
#define BAYESCROWD_SERVE_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/result.h"
#include "common/status.h"

namespace bayescrowd::serve {

enum class ManifestEventKind : std::uint8_t {
  kCreate = 0,
  kAdvance = 1,
  kCheckpoint = 2,
  kFinish = 3,
  kEvict = 4,
  kQuarantine = 5,
};

const char* ManifestEventKindToString(ManifestEventKind kind);

/// One session lifecycle record. Every kind carries the full tuple so a
/// single surviving record is enough to rebuild the session's identity.
struct ManifestEvent {
  ManifestEventKind kind = ManifestEventKind::kCreate;
  std::string session_id;
  std::string tenant;
  std::uint64_t rounds = 0;       // Rounds completed at event time.
  std::uint64_t qos_level = 0;    // Governor rung at event time.
  std::uint64_t spec_fingerprint = 0;
  std::string checkpoint_dir;     // Namespaced checkpoint directory.
  std::uint64_t checkpoint_keep = 0;
  std::string spec_blob;          // Opaque spec payload (serve stores the
                                  // original create-request JSON line).
  std::string detail;             // Free-form context (reason strings).
};

/// Outcome of a tolerant manifest load.
struct ManifestLoad {
  std::vector<ManifestEvent> events;
  std::uint64_t torn_tail_records = 0;    // Truncated/CRC-failed tail.
  std::uint64_t unknown_kind_records = 0; // Skipped, framing intact.
};

/// Encodes one record (len | payload | crc) ready to append. Exposed for
/// the fuzz tests, which splice hand-built records into journals.
std::string EncodeManifestRecord(const ManifestEvent& event);

/// The 8-byte file header ("BSMN" + version).
std::string ManifestHeader();

/// Tolerantly parses manifest bytes. Never fails on damaged input — a
/// bad header yields zero events with one torn record counted.
ManifestLoad ParseManifest(std::string_view bytes);

/// Reads and tolerantly parses `path`; a missing file loads empty.
Result<ManifestLoad> LoadManifest(FileIo* io, const std::string& path);

/// Append-side handle. Lazily opens the journal (writing the header when
/// the file is empty) and makes each batch durable with one sync.
class ServeManifest {
 public:
  struct Options {
    std::string path;
    FileIo* io = nullptr;  // null = RealFileIo().
  };

  explicit ServeManifest(Options options);

  /// Appends one record durably (framed write + sync).
  Status Append(const ManifestEvent& event);

  /// Appends a batch as one buffered write + one sync — AdvanceAll
  /// journals a whole sweep this way.
  Status Append(const std::vector<ManifestEvent>& events);

  /// Atomically replaces the journal with exactly `events` (compaction
  /// after recovery): tmp + durable write + rename + dir sync. The
  /// append handle reopens on the next Append.
  Status Rewrite(const std::vector<ManifestEvent>& events);

  const std::string& path() const { return options_.path; }

 private:
  Status EnsureOpen();

  Options options_;
  std::unique_ptr<AppendFile> file_;
};

}  // namespace bayescrowd::serve

#endif  // BAYESCROWD_SERVE_MANIFEST_H_
