#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"

namespace bayescrowd {
namespace {

Status RequireComplete(const Table& table) {
  if (!table.IsComplete()) {
    return Status::FailedPrecondition(
        "skyline over complete data requires a complete table");
  }
  return Status::OK();
}

// Dominance restricted to an attribute subset.
bool DominatesOn(const Table& table, std::size_t a, std::size_t b,
                 const std::vector<std::size_t>& attrs) {
  bool strictly_better = false;
  for (std::size_t j : attrs) {
    const Level av = table.At(a, j);
    const Level bv = table.At(b, j);
    if (av < bv) return false;
    if (av > bv) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace

Result<std::vector<std::size_t>> SkylineBnl(const Table& table) {
  BAYESCROWD_RETURN_NOT_OK(RequireComplete(table));
  std::vector<std::size_t> window;
  for (std::size_t i = 0; i < table.num_objects(); ++i) {
    bool dominated = false;
    std::size_t kept = 0;
    for (std::size_t w = 0; w < window.size(); ++w) {
      if (Dominates(table, window[w], i)) {
        dominated = true;
        // Keep the remaining window as is.
        for (; w < window.size(); ++w) window[kept++] = window[w];
        break;
      }
      if (!Dominates(table, i, window[w])) window[kept++] = window[w];
    }
    window.resize(kept);
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

Result<std::vector<std::size_t>> SkylineSfs(const Table& table) {
  BAYESCROWD_RETURN_NOT_OK(RequireComplete(table));
  const std::size_t n = table.num_objects();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<long long> sums(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < table.num_attributes(); ++j) {
      sums[i] += table.At(i, j);
    }
  }
  std::sort(order.begin(), order.end(),
            [&sums](std::size_t a, std::size_t b) {
              return sums[a] != sums[b] ? sums[a] > sums[b] : a < b;
            });

  // After sorting by descending sum, an object can only be dominated by
  // an *earlier* object, so one window pass is enough.
  std::vector<std::size_t> skyline;
  for (std::size_t idx : order) {
    bool dominated = false;
    for (std::size_t s : skyline) {
      if (Dominates(table, s, idx)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

namespace {

// Recursive worker for SkylineDivideConquer over the object-id slice
// `ids`. Returns the slice's skyline ids.
std::vector<std::size_t> DivideConquer(const Table& table,
                                       std::vector<std::size_t> ids) {
  if (ids.size() <= 16) {
    // Base case: window scan.
    std::vector<std::size_t> skyline;
    for (std::size_t candidate : ids) {
      bool dominated = false;
      for (std::size_t other : ids) {
        if (other != candidate && Dominates(table, other, candidate)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) skyline.push_back(candidate);
    }
    return skyline;
  }

  // Split at the median of attribute 0 (ties resolved by id to keep the
  // halves balanced even on tie-heavy data).
  std::vector<std::size_t> order = ids;
  std::sort(order.begin(), order.end(),
            [&table](std::size_t a, std::size_t b) {
              const Level av = table.At(a, 0);
              const Level bv = table.At(b, 0);
              return av != bv ? av > bv : a < b;
            });
  const std::size_t half = order.size() / 2;
  std::vector<std::size_t> high(order.begin(),
                                order.begin() +
                                    static_cast<std::ptrdiff_t>(half));
  std::vector<std::size_t> low(order.begin() +
                                   static_cast<std::ptrdiff_t>(half),
                               order.end());

  std::vector<std::size_t> high_skyline =
      DivideConquer(table, std::move(high));
  const std::vector<std::size_t> low_skyline =
      DivideConquer(table, std::move(low));

  // Merge: each half's survivors must also escape the other half's
  // survivors. (Attribute-0 ties can straddle the split, so the check
  // runs in both directions; transitivity makes checking against
  // survivors sufficient.)
  std::vector<std::size_t> merged;
  const auto survives = [&table](std::size_t candidate,
                                 const std::vector<std::size_t>& rivals) {
    for (std::size_t rival : rivals) {
      if (Dominates(table, rival, candidate)) return false;
    }
    return true;
  };
  for (std::size_t h : high_skyline) {
    if (survives(h, low_skyline)) merged.push_back(h);
  }
  for (std::size_t l : low_skyline) {
    if (survives(l, high_skyline)) merged.push_back(l);
  }
  return merged;
}

}  // namespace

Result<std::vector<std::size_t>> SkylineDivideConquer(const Table& table) {
  BAYESCROWD_RETURN_NOT_OK(RequireComplete(table));
  std::vector<std::size_t> ids(table.num_objects());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  std::vector<std::size_t> skyline = DivideConquer(table, std::move(ids));
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

Result<std::vector<std::vector<std::size_t>>> SkylineLayers(
    const Table& table, const std::vector<std::size_t>& attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("attribute subset is empty");
  }
  for (std::size_t j : attributes) {
    if (j >= table.num_attributes()) {
      return Status::OutOfRange("attribute index outside schema");
    }
    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      if (table.IsMissing(i, j)) {
        return Status::FailedPrecondition(
            "layer computation needs complete values on chosen attributes");
      }
    }
  }

  std::vector<std::vector<std::size_t>> layers;
  std::vector<bool> assigned(table.num_objects(), false);
  std::size_t remaining = table.num_objects();
  while (remaining > 0) {
    std::vector<std::size_t> layer;
    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      if (assigned[i]) continue;
      bool dominated = false;
      for (std::size_t p = 0; p < table.num_objects(); ++p) {
        if (p == i || assigned[p]) continue;
        if (DominatesOn(table, p, i, attributes)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) layer.push_back(i);
    }
    for (std::size_t i : layer) assigned[i] = true;
    remaining -= layer.size();
    layers.push_back(std::move(layer));
  }
  return layers;
}

}  // namespace bayescrowd
