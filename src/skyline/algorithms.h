// Complete-data skyline algorithms. Used to compute the ground truth
// the paper evaluates F1 against ("the query result derived based on the
// corresponding complete data is regarded as the ground truth"), and as
// reusable skyline building blocks.

#ifndef BAYESCROWD_SKYLINE_ALGORITHMS_H_
#define BAYESCROWD_SKYLINE_ALGORITHMS_H_

#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

/// Block-nested-loops skyline (Borzsonyi et al.). The table must be
/// complete. Returns ascending object ids.
Result<std::vector<std::size_t>> SkylineBnl(const Table& table);

/// Sort-filter skyline: objects are pre-sorted by descending attribute
/// sum so that no later object can dominate an earlier one; a single
/// window pass suffices. Same output as SkylineBnl, usually faster.
Result<std::vector<std::size_t>> SkylineSfs(const Table& table);

/// Divide-and-conquer skyline (Borzsonyi et al.): split on the median of
/// the first attribute, recurse, then eliminate members of the low half
/// dominated by the high half. Same output as SkylineBnl.
Result<std::vector<std::size_t>> SkylineDivideConquer(const Table& table);

/// Skyline layers ("onion peeling"): layer k is the skyline of the data
/// with layers < k removed. Used by the CrowdSky baseline.
/// The table must be complete on the designated attributes only; pass
/// the attribute subset to restrict comparison.
Result<std::vector<std::vector<std::size_t>>> SkylineLayers(
    const Table& table, const std::vector<std::size_t>& attributes);

}  // namespace bayescrowd

#endif  // BAYESCROWD_SKYLINE_ALGORITHMS_H_
