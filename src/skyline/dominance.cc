#include "skyline/dominance.h"

#include <cassert>

namespace bayescrowd {

bool Dominates(const Table& table, std::size_t a, std::size_t b) {
  bool strictly_better = false;
  for (std::size_t j = 0; j < table.num_attributes(); ++j) {
    const Level av = table.At(a, j);
    const Level bv = table.At(b, j);
    assert(!IsMissingLevel(av) && !IsMissingLevel(bv));
    if (av < bv) return false;
    if (av > bv) strictly_better = true;
  }
  return strictly_better;
}

bool Dominates(const std::vector<Level>& a, const std::vector<Level>& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (a[j] < b[j]) return false;
    if (a[j] > b[j]) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace bayescrowd
