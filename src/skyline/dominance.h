// Dominance relationship on complete data (Definition 1): o1 ≺ o2 iff
// o1 is >= o2 on every attribute and > on at least one (larger is
// better).

#ifndef BAYESCROWD_SKYLINE_DOMINANCE_H_
#define BAYESCROWD_SKYLINE_DOMINANCE_H_

#include <vector>

#include "data/table.h"

namespace bayescrowd {

/// True when row `a` of `table` dominates row `b`. Both rows must be
/// complete.
bool Dominates(const Table& table, std::size_t a, std::size_t b);

/// Dominance over raw value vectors (same semantics).
bool Dominates(const std::vector<Level>& a, const std::vector<Level>& b);

}  // namespace bayescrowd

#endif  // BAYESCROWD_SKYLINE_DOMINANCE_H_
