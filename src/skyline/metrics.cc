#include "skyline/metrics.h"

#include <algorithm>
#include <set>

namespace bayescrowd {

SetMetrics EvaluateResultSet(const std::vector<std::size_t>& returned,
                             const std::vector<std::size_t>& ground_truth) {
  const std::set<std::size_t> ret(returned.begin(), returned.end());
  const std::set<std::size_t> truth(ground_truth.begin(),
                                    ground_truth.end());
  SetMetrics m;
  for (std::size_t id : ret) {
    if (truth.count(id) > 0) {
      ++m.true_positives;
    } else {
      ++m.false_positives;
    }
  }
  m.false_negatives = truth.size() - m.true_positives;

  if (ret.empty() && truth.empty()) {
    m.precision = m.recall = m.f1 = 1.0;
    return m;
  }
  m.precision = ret.empty() ? 0.0
                            : static_cast<double>(m.true_positives) /
                                  static_cast<double>(ret.size());
  m.recall = truth.empty() ? 0.0
                           : static_cast<double>(m.true_positives) /
                                 static_cast<double>(truth.size());
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace bayescrowd
