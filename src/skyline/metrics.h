// Result-set quality metrics: precision, recall, F1 against the
// complete-data ground truth (Section 7's accuracy measure).

#ifndef BAYESCROWD_SKYLINE_METRICS_H_
#define BAYESCROWD_SKYLINE_METRICS_H_

#include <vector>

#include "data/table.h"

namespace bayescrowd {

struct SetMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

/// Compares a returned object-id set to the ground-truth set (both need
/// not be sorted; duplicates are ignored). A perfect match of two empty
/// sets scores 1.0 across the board.
SetMetrics EvaluateResultSet(const std::vector<std::size_t>& returned,
                             const std::vector<std::size_t>& ground_truth);

}  // namespace bayescrowd

#endif  // BAYESCROWD_SKYLINE_METRICS_H_
