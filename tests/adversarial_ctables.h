// Adversarial c-table conditions for the solver-governor tests:
// instances built so ADPLL's shortcuts (star fast path, component
// decomposition, per-conjunct independence) all fail and budgets bite
// at test-sized inputs, while the exact probability stays known in
// closed form so soundness can be asserted without trusting a solver.
//
// Shared by governor_test.cc and differential_test.cc; header-only so
// the test binaries stay one-translation-unit each.

#ifndef BAYESCROWD_TESTS_ADVERSARIAL_CTABLES_H_
#define BAYESCROWD_TESTS_ADVERSARIAL_CTABLES_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ctable/condition.h"
#include "ctable/expression.h"
#include "probability/distributions.h"

namespace bayescrowd {

/// One hostile condition plus the distributions of every variable it
/// mentions, and the closed-form exact probability for assertions.
struct AdversarialInstance {
  Condition condition;
  DistributionMap dists;
  double exact_probability = 0.0;
};

/// Strictly-increasing chain v_0 < v_1 < ... < v_depth over iid uniform
/// variables: conjunct i is the single expression (v_i < v_{i+1}), so
/// adjacent conjuncts share a variable. The variable-sharing graph is
/// one path — component decomposition finds a single component — and
/// every interior variable occurs twice, so the star fast path's hub
/// spans levels^(depth-1) joint values. Branching substitutes one hub
/// variable per level, so the hub must stay oversized even after a
/// substitution: pick sizes with levels^(depth-2) >
/// AdpllOptions::max_hub_space (4096 by default, e.g. depth 7 with
/// levels 6) and ADPLL has to branch variable by variable, call by
/// call — exactly what a node budget meters.
///
/// Exact: P(U_0 < ... < U_depth) = C(levels, depth+1) / levels^(depth+1)
/// (choose the depth+1 distinct values; exactly one ordering works).
inline AdversarialInstance MakeDeepChainInstance(std::size_t depth,
                                                 Level levels) {
  assert(depth >= 1);
  assert(levels >= 2);
  AdversarialInstance out;
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    const CellRef lhs{i, 0};
    const CellRef rhs{i + 1, 0};
    conjuncts.push_back({Expression::VarVar(lhs, CmpOp::kLess, rhs)});
  }
  out.condition = Condition::Cnf(std::move(conjuncts));
  const std::vector<double> uniform(
      static_cast<std::size_t>(levels),
      1.0 / static_cast<double>(levels));
  for (std::size_t i = 0; i <= depth; ++i) {
    BAYESCROWD_CHECK_OK(out.dists.Set(CellRef{i, 0}, uniform));
  }
  // C(levels, depth+1) / levels^(depth+1), accumulated factor by factor
  // to stay in floating range.
  double p = 1.0;
  for (std::size_t k = 0; k <= depth; ++k) {
    p *= static_cast<double>(levels - k) /
         (static_cast<double>(levels) * static_cast<double>(k + 1));
  }
  out.exact_probability = p;
  return out;
}

/// One *wide correlated conjunct*: a single disjunction chaining
/// span+1 variables, (x_0 > x_1 | x_1 > x_2 | ... | x_{span-1} > x_span).
/// Its expressions share variables pairwise, so ADPLL cannot integrate
/// them independently ("direct eval" requires a variable-disjoint
/// conjunct) and falls back to enumerating the conjunct's joint
/// assignment space of levels^(span+1) values — the per-conjunct
/// enumeration a node budget clamps via max_conjunct_assignments. The
/// star hub (interior variables) spans levels^(span-1) values, so the
/// same sizing rule as the chain defeats the fast path.
///
/// Exact: the complement is one weakly-increasing chain,
/// P = 1 − C(levels+span, span+1) / levels^(span+1) (multisets of
/// size span+1 over `levels` values, one nondecreasing order each).
inline AdversarialInstance MakeWideChainConjunctInstance(std::size_t span,
                                                         Level levels) {
  assert(span >= 1);
  assert(levels >= 2);
  AdversarialInstance out;
  Conjunct disjunction;
  disjunction.reserve(span);
  const std::vector<double> uniform(
      static_cast<std::size_t>(levels),
      1.0 / static_cast<double>(levels));
  for (std::size_t i = 0; i <= span; ++i) {
    BAYESCROWD_CHECK_OK(out.dists.Set(CellRef{i, 0}, uniform));
  }
  for (std::size_t i = 0; i < span; ++i) {
    disjunction.push_back(Expression::VarVar(
        CellRef{i, 0}, CmpOp::kGreater, CellRef{i + 1, 0}));
  }
  out.condition = Condition::Cnf({std::move(disjunction)});
  // C(levels+span, span+1) / levels^(span+1), factor by factor.
  double complement = 1.0;
  for (std::size_t k = 0; k <= span; ++k) {
    complement *= (static_cast<double>(levels) + static_cast<double>(span) -
                   static_cast<double>(k)) /
                  (static_cast<double>(levels) *
                   static_cast<double>(span + 1 - k));
  }
  out.exact_probability = 1.0 - complement;
  return out;
}

/// Random hostile instance for differential sweeps: alternates between
/// the two families with size parameters drawn from `rng`.
inline AdversarialInstance MakeRandomAdversarialInstance(Rng& rng) {
  // Sizes chosen so the star hub always exceeds the default 4096-value
  // cap (budgets bite) while full Naive enumeration stays feasible for
  // the differential reference (levels^(vars) <= 6^8).
  if (rng.NextBool(0.5)) {
    return MakeDeepChainInstance(/*depth=*/7, /*levels=*/6);
  }
  const std::size_t span = static_cast<std::size_t>(rng.NextInt(6, 7));
  return MakeWideChainConjunctInstance(span, /*levels=*/6);
}

}  // namespace bayescrowd

#endif  // BAYESCROWD_TESTS_ADVERSARIAL_CTABLES_H_
