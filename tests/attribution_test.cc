// Tests for cost attribution and live export: labeled-series interning
// (determinism, cardinality cap), Prometheus text exposition, the
// flight recorder's ring/JSONL semantics, the telemetry attribution
// section, run inspection and telemetry diffing — and the contract the
// whole layer hangs on: deterministic cost units are identical at any
// thread count, with labels and the flight recorder enabled.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "core/inspect.h"
#include "core/telemetry.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace bayescrowd {
namespace {

using obs::JsonValue;
using obs::Label;

// ------------------------------------------------------------------ //
// Labeled series: canonical names and interning
// ------------------------------------------------------------------ //

TEST(LabelTest, CanonicalSeriesNameSortsLabelsAndRoundTrips) {
  const std::string key = obs::LabeledSeriesName(
      "cost.adpll_nodes", {{"session", "s0"}, {"phase", "select"}});
  EXPECT_EQ(key, "cost.adpll_nodes{phase=\"select\",session=\"s0\"}");
  // Label order at the call site must not matter.
  EXPECT_EQ(obs::LabeledSeriesName(
                "cost.adpll_nodes",
                {{"phase", "select"}, {"session", "s0"}}),
            key);

  std::string base;
  std::vector<Label> labels;
  obs::ParseSeriesName(key, &base, &labels);
  EXPECT_EQ(base, "cost.adpll_nodes");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].key, "phase");
  EXPECT_EQ(labels[0].value, "select");
  EXPECT_EQ(labels[1].key, "session");
  EXPECT_EQ(labels[1].value, "s0");

  // Unlabeled keys parse to themselves with no labels.
  obs::ParseSeriesName("evaluator.cache.hits", &base, &labels);
  EXPECT_EQ(base, "evaluator.cache.hits");
  EXPECT_TRUE(labels.empty());
  // A name with no labels keeps its bare form.
  EXPECT_EQ(obs::LabeledSeriesName("plain", {}), "plain");
}

TEST(LabelTest, LabeledHandlesAreStableAndOrderInsensitive) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter(
      "cost.replay_ops", {{"session", "s0"}, {"phase", "select"}});
  obs::Counter* b = registry.GetCounter(
      "cost.replay_ops", {{"phase", "select"}, {"session", "s0"}});
  EXPECT_EQ(a, b);  // Same canonical series, same instrument.
  a->Increment(5);
  b->Increment(2);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(
      snap.counters.at("cost.replay_ops{phase=\"select\",session=\"s0\"}"),
      7u);
  // Distinct label values are distinct series.
  obs::Counter* c = registry.GetCounter(
      "cost.replay_ops", {{"session", "s0"}, {"phase", "update"}});
  EXPECT_NE(a, c);
  // Gauges and histograms share the interner and canonical key space.
  obs::Gauge* g = registry.GetGauge("pool.depth", {{"session", "s0"}});
  g->Set(3.0);
  EXPECT_DOUBLE_EQ(
      registry.Snapshot().gauges.at("pool.depth{session=\"s0\"}"), 3.0);
}

TEST(LabelTest, InterningIsDeterministicGivenCallOrder) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  for (const char* value : {"modeling", "select", "update", "answer"}) {
    EXPECT_EQ(a.InternLabelValue("phase", value),
              b.InternLabelValue("phase", value));
  }
  // Re-interning returns the original dense id.
  EXPECT_EQ(a.InternLabelValue("phase", "select"),
            b.InternLabelValue("phase", "select"));
}

TEST(LabelTest, CardinalityCapCollapsesOverflowToOther) {
  obs::MetricsRegistry registry;
  const std::size_t cap = obs::MetricsRegistry::kMaxLabelValuesPerKey;
  for (std::size_t i = 0; i < cap; ++i) {
    const std::string value = "v" + std::to_string(i);
    EXPECT_EQ(registry.InternedLabelValue("phase", value), value);
  }
  EXPECT_EQ(registry.label_overflow_keys(), 0u);

  // The cap+1'th distinct value collapses; existing values survive.
  EXPECT_EQ(registry.InternedLabelValue("phase", "v999"),
            obs::MetricsRegistry::kLabelOverflowValue);
  EXPECT_EQ(registry.InternedLabelValue("phase", "v0"), "v0");
  EXPECT_EQ(registry.label_overflow_keys(), 1u);

  // Every overflowed value shares one "_other" series.
  obs::Counter* x =
      registry.GetCounter("cost.crowd_tasks", {{"phase", "vA"}});
  obs::Counter* y =
      registry.GetCounter("cost.crowd_tasks", {{"phase", "vB"}});
  EXPECT_EQ(x, y);
  x->Increment();
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("cost.crowd_tasks{phase=\"_other\"}"), 1u);
  // The overflow is surfaced as a self-metric, not a crash.
  EXPECT_EQ(snap.counters.at("obs.label_overflow"), 1u);
  // Other keys keep their own (un-overflowed) value space.
  EXPECT_EQ(registry.InternedLabelValue("session", "s0"), "s0");
}

// ------------------------------------------------------------------ //
// Prometheus exposition
// ------------------------------------------------------------------ //

bool IsPromNameChar(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

// Checks one exposition line: name{labels} value, with a legal metric
// name and balanced, quoted label values.
void CheckPromLine(const std::string& line) {
  ASSERT_FALSE(line.empty());
  std::size_t i = 0;
  ASSERT_TRUE(IsPromNameChar(line[0], true)) << line;
  while (i < line.size() && IsPromNameChar(line[i], false)) ++i;
  ASSERT_LT(i, line.size()) << line;
  if (line[i] == '{') {
    const std::size_t close = line.find('}', i);
    ASSERT_NE(close, std::string::npos) << line;
    // k="v" pairs, comma separated; values stay quoted.
    std::size_t pos = i + 1;
    while (pos < close) {
      const std::size_t eq = line.find('=', pos);
      ASSERT_NE(eq, std::string::npos) << line;
      ASSERT_EQ(line[eq + 1], '"') << line;
      const std::size_t endq = line.find('"', eq + 2);
      ASSERT_NE(endq, std::string::npos) << line;
      pos = endq + 1;
      if (line[pos] == ',') ++pos;
    }
    i = close + 1;
  }
  ASSERT_EQ(line[i], ' ') << line;
  // The remainder must parse as a number.
  EXPECT_NO_THROW({ (void)std::stod(line.substr(i + 1)); }) << line;
}

TEST(PrometheusTest, ExpositionRendersValidLines) {
  obs::MetricsRegistry registry;
  registry.GetCounter("cost.adpll_nodes",
                      {{"session", "s0"}, {"phase", "select"}})
      ->Increment(17);
  registry.GetCounter("evaluator.cache.hits")->Increment(4);
  registry.GetGauge("pool.size")->Set(8.0);
  registry
      .GetHistogram("round.seconds", {{"session", "s0"}},
                    {0.001, 0.01, 0.1})
      ->Observe(0.005);

  const std::string text = obs::ToPrometheusText(registry.Snapshot());
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');  // Exposition must end with a newline.

  bool saw_labeled_counter = false;
  bool saw_bucket = false;
  bool saw_sum = false;
  bool saw_count = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    CheckPromLine(line);
    // Dotted names must have been sanitized.
    EXPECT_EQ(line.substr(0, line.find_first_of("{ ")).find('.'),
              std::string::npos)
        << line;
    saw_labeled_counter =
        saw_labeled_counter ||
        line.rfind("cost_adpll_nodes{", 0) == 0;
    saw_bucket = saw_bucket ||
                 (line.rfind("round_seconds_bucket{", 0) == 0 &&
                  line.find("le=\"") != std::string::npos);
    saw_sum = saw_sum || line.rfind("round_seconds_sum", 0) == 0;
    saw_count = saw_count || line.rfind("round_seconds_count", 0) == 0;
  }
  EXPECT_TRUE(saw_labeled_counter);
  EXPECT_TRUE(saw_bucket);
  EXPECT_TRUE(saw_sum);
  EXPECT_TRUE(saw_count);
}

// ------------------------------------------------------------------ //
// Flight recorder
// ------------------------------------------------------------------ //

TEST(FlightTest, RingKeepsNewestEventsAndCountsDrops) {
  obs::FlightRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(obs::FlightEventKind::kNote,
                    static_cast<std::uint64_t>(i), /*object=*/-1,
                    /*sim_seconds=*/0.5 * i, /*value=*/i,
                    "event " + std::to_string(i));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);

  const std::vector<obs::FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first window over the newest four, monotone sequence.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].round, 6u + i);
    if (i > 0) EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  recorder.Clear();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(FlightTest, JsonlRoundTripsAndToleratesCorruptTail) {
  const std::string path = "/tmp/attr_flight_test.jsonl";
  obs::FlightRecorder recorder(/*capacity=*/8);
  recorder.Record(obs::FlightEventKind::kBreakerTrip, 3, 17, 1.5, 2.0,
                  "breaker opened");
  recorder.Record(obs::FlightEventKind::kRetry, 4, -1, 2.0, 0.25,
                  "transient failure");
  BAYESCROWD_CHECK_OK(recorder.WriteJsonl(path));

  {
    const auto load = obs::LoadFlightJsonl(path);
    ASSERT_TRUE(load.ok()) << load.status().ToString();
    EXPECT_EQ(load->corrupt_lines, 0u);
    EXPECT_EQ(load->total_recorded, 2u);
    ASSERT_EQ(load->events.size(), 2u);
    EXPECT_EQ(load->events[0].kind, obs::FlightEventKind::kBreakerTrip);
    EXPECT_EQ(load->events[0].round, 3u);
    EXPECT_EQ(load->events[0].object, 17);
    EXPECT_DOUBLE_EQ(load->events[0].sim_seconds, 1.5);
    EXPECT_EQ(load->events[0].detail, "breaker opened");
    EXPECT_EQ(load->events[1].kind, obs::FlightEventKind::kRetry);
  }

  // A torn tail (crash mid-write) must be skipped, not fatal.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"seq\": 99, \"kind\": \"retr", f);
    std::fclose(f);
  }
  const auto load = obs::LoadFlightJsonl(path);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->events.size(), 2u);
  EXPECT_GE(load->corrupt_lines, 1u);

  EXPECT_FALSE(obs::LoadFlightJsonl("/tmp/no_such_flight.jsonl").ok());
  std::remove(path.c_str());
}

TEST(FlightTest, EventKindNamesRoundTrip) {
  for (int k = 0; k <= 8; ++k) {
    const auto kind = static_cast<obs::FlightEventKind>(k);
    obs::FlightEventKind parsed;
    ASSERT_TRUE(obs::ParseFlightEventKind(
        obs::FlightEventKindToString(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  obs::FlightEventKind parsed;
  EXPECT_FALSE(obs::ParseFlightEventKind("not_a_kind", &parsed));
}

// ------------------------------------------------------------------ //
// End-to-end: labeled pipeline runs
// ------------------------------------------------------------------ //

Table AttributionDataset() {
  Rng rng(0xAB5E55);
  return InjectMissingUniform(MakeNbaLike(120, /*seed=*/9), 0.15, rng);
}

BayesCrowdResult RunLabeledPipeline(std::size_t threads,
                                    obs::MetricsRegistry* metrics,
                                    obs::FlightRecorder* flight) {
  const Table incomplete = AttributionDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.budget = 24;
  options.latency = 4;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 5;
  options.threads = threads;
  options.metrics = metrics;
  options.session = "attr";
  options.flight = flight;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/9);
  SimulatedCrowdPlatform platform(truth, {});
  auto result = framework.Run(incomplete, posteriors, platform);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

std::map<std::string, std::uint64_t> CostSeries(
    const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [series, value] : snapshot.counters) {
    std::string base;
    std::vector<Label> labels;
    obs::ParseSeriesName(series, &base, &labels);
    if (base.rfind("cost.", 0) == 0) out.emplace(series, value);
  }
  return out;
}

TEST(AttributionTest, CostUnitsAreIdenticalAt1And8Threads) {
  obs::MetricsRegistry reg1;
  obs::FlightRecorder flight1;
  const BayesCrowdResult r1 = RunLabeledPipeline(1, &reg1, &flight1);

  obs::MetricsRegistry reg8;
  obs::FlightRecorder flight8;
  const BayesCrowdResult r8 = RunLabeledPipeline(8, &reg8, &flight8);

  // Results are bit-identical (the obs-on/off contract, with labels and
  // the flight recorder enabled this time)...
  EXPECT_EQ(r1.result_objects, r8.result_objects);
  ASSERT_EQ(r1.probabilities.size(), r8.probabilities.size());
  for (std::size_t i = 0; i < r1.probabilities.size(); ++i) {
    EXPECT_EQ(r1.probabilities[i], r8.probabilities[i]) << "object " << i;
  }

  // ...and so is every deterministic cost series, series by series.
  const auto cost1 = CostSeries(reg1.Snapshot());
  const auto cost8 = CostSeries(reg8.Snapshot());
  ASSERT_FALSE(cost1.empty());
  EXPECT_EQ(cost1, cost8);

  // The flight recorders saw the same deterministic event stream.
  const auto events1 = flight1.Events();
  const auto events8 = flight8.Events();
  ASSERT_EQ(events1.size(), events8.size());
  for (std::size_t i = 0; i < events1.size(); ++i) {
    EXPECT_EQ(events1[i].kind, events8[i].kind) << "event " << i;
    EXPECT_EQ(events1[i].round, events8[i].round) << "event " << i;
    EXPECT_EQ(events1[i].detail, events8[i].detail) << "event " << i;
  }
}

TEST(AttributionTest, EveryCostUnitCarriesTheFullLabelTriple) {
  obs::MetricsRegistry registry;
  const BayesCrowdResult result =
      RunLabeledPipeline(2, &registry, nullptr);
  const auto cost = CostSeries(registry.Snapshot());
  ASSERT_FALSE(cost.empty());
  for (const auto& [series, value] : cost) {
    std::string base;
    std::vector<Label> labels;
    obs::ParseSeriesName(series, &base, &labels);
    std::map<std::string, std::string> by_key;
    for (const Label& label : labels) by_key[label.key] = label.value;
    EXPECT_EQ(by_key.count("session"), 1u) << series;
    EXPECT_EQ(by_key["session"], "attr") << series;
    EXPECT_EQ(by_key.count("phase"), 1u) << series;
    EXPECT_EQ(by_key.count("solver_tier"), 1u) << series;
    EXPECT_EQ(by_key.count("compile_state"), 1u) << series;
  }
  (void)result;
}

// ------------------------------------------------------------------ //
// Inspection and diffing
// ------------------------------------------------------------------ //

JsonValue LabeledRunTelemetry(obs::FlightRecorder* flight) {
  obs::MetricsRegistry registry;
  const BayesCrowdResult result =
      RunLabeledPipeline(2, &registry, flight);
  BayesCrowdOptions options;
  options.budget = 24;
  options.latency = 4;
  options.session = "attr";
  return RunTelemetryJson("attr-test", options, result);
}

TEST(InspectTest, ReportAttributesUnitsAndWallClock) {
  obs::FlightRecorder recorder;
  const JsonValue telemetry = LabeledRunTelemetry(&recorder);

  // The attribution section accounts for every unit.
  const JsonValue* attribution =
      telemetry.Find("payload")->Find("attribution");
  ASSERT_NE(attribution, nullptr);
  const std::uint64_t total = static_cast<std::uint64_t>(
      attribution->Find("total_units")->AsInt());
  EXPECT_GT(total, 0u);
  std::uint64_t summed = 0;
  const JsonValue* rows = attribution->Find("rows");
  ASSERT_NE(rows, nullptr);
  for (std::size_t i = 0; i < rows->size(); ++i) {
    summed += static_cast<std::uint64_t>(
        rows->at(i).Find("units")->AsInt());
  }
  EXPECT_EQ(summed, total);

  obs::FlightLoad load;
  load.events = recorder.Events();
  load.total_recorded = recorder.total_recorded();
  const auto report = RenderRunInspection(telemetry, &load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_units, total);
  EXPECT_EQ(report->unit_coverage, 1.0);
  EXPECT_GT(report->wall_coverage, 0.5);
  EXPECT_LE(report->wall_coverage, 1.0);
  // The rendered report names its sections.
  EXPECT_NE(report->text.find("wall-clock"), std::string::npos);
  EXPECT_NE(report->text.find("cost units"), std::string::npos);
  EXPECT_NE(report->text.find("attr-test"), std::string::npos);

  // A non-run envelope is a clean error, not a crash.
  JsonValue bogus = JsonValue::Object();
  bogus["kind"] = "bench";
  EXPECT_FALSE(RenderRunInspection(bogus, nullptr).ok());
}

TEST(InspectTest, DiffFlagsDriftAndSkipsWallClockKeys) {
  const JsonValue telemetry = LabeledRunTelemetry(nullptr);
  const std::string dumped = telemetry.Dump();

  // A run diffed against itself is clean.
  const auto self_diff = DiffRunTelemetry(telemetry, telemetry, 0.02);
  ASSERT_TRUE(self_diff.ok()) << self_diff.status().ToString();
  EXPECT_TRUE(self_diff->regressions.empty());
  EXPECT_NE(self_diff->text.find("no regressions"), std::string::npos);

  // Perturbing a count beyond the threshold is flagged...
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  JsonValue candidate = std::move(parsed).value();
  const std::int64_t tasks = candidate["payload"]["result"]
                                 .Find("tasks_posted")
                                 ->AsInt();
  candidate["payload"]["result"]["tasks_posted"] = 2 * tasks + 10;
  const auto diff = DiffRunTelemetry(telemetry, candidate, 0.02);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  ASSERT_FALSE(diff->regressions.empty());
  bool found = false;
  for (const TelemetryRegression& r : diff->regressions) {
    found = found ||
            r.path.find("tasks_posted") != std::string::npos;
  }
  EXPECT_TRUE(found);

  // ...while wall-clock drift is scheduling noise, never a regression.
  auto reparsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  JsonValue wall = std::move(reparsed).value();
  wall["payload"]["result"]["select_seconds"] =
      wall["payload"]["result"].Find("select_seconds")->AsDouble() *
          100.0 +
      5.0;
  const auto wall_diff = DiffRunTelemetry(telemetry, wall, 0.02);
  ASSERT_TRUE(wall_diff.ok()) << wall_diff.status().ToString();
  EXPECT_TRUE(wall_diff->regressions.empty());
}

}  // namespace
}  // namespace bayescrowd
