// Tests for the Bayesian-network substrate: DAG invariants, CPTs,
// factors, exact/approximate inference, structure learning and the
// posterior providers.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "bayesnet/cpt.h"
#include "bayesnet/dag.h"
#include "bayesnet/factor.h"
#include "bayesnet/imputation.h"
#include "bayesnet/inference.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

// ------------------------------------------------------------------ //
// Dag
// ------------------------------------------------------------------ //

TEST(DagTest, AddRemoveEdges) {
  Dag dag(3);
  EXPECT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_TRUE(dag.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(dag.HasEdge(0, 1));
  EXPECT_TRUE(dag.RemoveEdge(0, 1).IsNotFound());
}

TEST(DagTest, RejectsCyclesAndSelfLoops) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_FALSE(dag.AddEdge(2, 0).ok());  // Would close a cycle.
  EXPECT_FALSE(dag.AddEdge(1, 1).ok());  // Self-loop.
  EXPECT_FALSE(dag.CanAddEdge(2, 0));
  EXPECT_TRUE(dag.CanAddEdge(0, 2));
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag(4);
  ASSERT_TRUE(dag.AddEdge(2, 0).ok());
  ASSERT_TRUE(dag.AddEdge(0, 3).ok());
  ASSERT_TRUE(dag.AddEdge(2, 1).ok());
  const auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& [from, to] : dag.Edges()) EXPECT_LT(pos[from], pos[to]);
}

// ------------------------------------------------------------------ //
// Cpt
// ------------------------------------------------------------------ //

TEST(CptTest, ConfigIndexMixedRadix) {
  const Cpt cpt(2, 3, {0, 1}, {2, 4});
  EXPECT_EQ(cpt.num_parent_configs(), 8u);
  EXPECT_EQ(cpt.ConfigIndex({0, 0}), 0u);
  EXPECT_EQ(cpt.ConfigIndex({0, 3}), 3u);
  EXPECT_EQ(cpt.ConfigIndex({1, 0}), 4u);
  EXPECT_EQ(cpt.ConfigIndex({1, 3}), 7u);
}

TEST(CptTest, FitNormalizesWithPrior) {
  Cpt cpt(0, 2, {}, {});
  cpt.ClearCounts();
  cpt.AddCount(0, 0, 3.0);
  cpt.AddCount(1, 0, 1.0);
  cpt.NormalizeWithPrior(1.0);
  EXPECT_NEAR(cpt.Prob(0, 0), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(cpt.Prob(1, 0), 2.0 / 6.0, 1e-12);
}

TEST(CptTest, SampleFollowsDistribution) {
  Cpt cpt(0, 2, {}, {});
  cpt.ClearCounts();
  cpt.AddCount(0, 0, 9.0);
  cpt.AddCount(1, 0, 1.0);
  cpt.NormalizeWithPrior(1e-9);
  Rng rng(5);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += cpt.Sample(0, rng) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.1, 0.02);
}

// ------------------------------------------------------------------ //
// Factor
// ------------------------------------------------------------------ //

TEST(FactorTest, IndexRoundTrip) {
  Factor f({1, 3}, {2, 3});
  for (std::size_t flat = 0; flat < f.size(); ++flat) {
    EXPECT_EQ(f.IndexOf(f.AssignmentOf(flat)), flat);
  }
}

TEST(FactorTest, ProductMatchesManualComputation) {
  Factor a({0}, {2});
  a.At(0) = 0.3;
  a.At(1) = 0.7;
  Factor b({0, 1}, {2, 2});
  b.At(b.IndexOf({0, 0})) = 0.5;
  b.At(b.IndexOf({0, 1})) = 0.5;
  b.At(b.IndexOf({1, 0})) = 0.2;
  b.At(b.IndexOf({1, 1})) = 0.8;
  const Factor p = Factor::Product(a, b);
  EXPECT_NEAR(p.At(p.IndexOf({0, 0})), 0.15, 1e-12);
  EXPECT_NEAR(p.At(p.IndexOf({1, 1})), 0.56, 1e-12);
}

TEST(FactorTest, MarginalizeSumsOut) {
  Factor f({0, 1}, {2, 2});
  f.At(f.IndexOf({0, 0})) = 0.1;
  f.At(f.IndexOf({0, 1})) = 0.2;
  f.At(f.IndexOf({1, 0})) = 0.3;
  f.At(f.IndexOf({1, 1})) = 0.4;
  const Factor m = f.Marginalize(1);
  ASSERT_EQ(m.variables(), (std::vector<std::size_t>{0}));
  EXPECT_NEAR(m.At(0), 0.3, 1e-12);
  EXPECT_NEAR(m.At(1), 0.7, 1e-12);
}

TEST(FactorTest, ReduceFixesEvidence) {
  Factor f({0, 1}, {2, 3});
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.At(i) = static_cast<double>(i);
  }
  const Factor r = f.Reduce(1, 2);
  ASSERT_EQ(r.variables(), (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(r.At(0), f.At(f.IndexOf({0, 2})));
  EXPECT_DOUBLE_EQ(r.At(1), f.At(f.IndexOf({1, 2})));
}

// ------------------------------------------------------------------ //
// Network + inference on a hand-built chain A -> B -> C.
// ------------------------------------------------------------------ //

BayesianNetwork ChainNetwork() {
  Schema schema;
  schema.AddAttribute("A", 2);
  schema.AddAttribute("B", 2);
  schema.AddAttribute("C", 2);
  Dag dag(3);
  BAYESCROWD_CHECK_OK(dag.AddEdge(0, 1));
  BAYESCROWD_CHECK_OK(dag.AddEdge(1, 2));
  auto net = BayesianNetwork::Create(schema, dag);
  BAYESCROWD_CHECK_OK(net.status());

  // Fit from a big exact-proportion sample via counts:
  // P(A=1)=0.3, P(B=1|A=0)=0.2, P(B=1|A=1)=0.9,
  // P(C=1|B=0)=0.4, P(C=1|B=1)=0.6.
  Rng rng(31);
  Table data(schema);
  for (int i = 0; i < 60000; ++i) {
    const Level a = rng.NextBool(0.3) ? 1 : 0;
    const Level b = rng.NextBool(a == 1 ? 0.9 : 0.2) ? 1 : 0;
    const Level c = rng.NextBool(b == 1 ? 0.6 : 0.4) ? 1 : 0;
    BAYESCROWD_CHECK_OK(data.AppendRow("r", {a, b, c}));
  }
  BAYESCROWD_CHECK_OK(net->FitParameters(data, 0.1));
  return std::move(net).value();
}

// Exhaustive P(query | evidence) from the joint, for cross-checking VE.
std::vector<double> BruteForcePosterior(const BayesianNetwork& net,
                                        const Evidence& evidence,
                                        std::size_t query) {
  const std::size_t d = net.num_nodes();
  std::vector<double> posterior(
      static_cast<std::size_t>(net.schema().domain_size(query)), 0.0);
  std::vector<Level> row(d, 0);
  const std::function<void(std::size_t)> enumerate =
      [&](std::size_t node) {
        if (node == d) {
          for (const auto& [ev, val] : evidence) {
            if (row[ev] != val) return;
          }
          posterior[static_cast<std::size_t>(row[query])] +=
              std::exp(net.LogJointProbability(row));
          return;
        }
        for (Level v = 0; v < net.schema().domain_size(node); ++v) {
          row[node] = v;
          enumerate(node + 1);
        }
      };
  enumerate(0);
  double total = 0.0;
  for (double p : posterior) total += p;
  for (double& p : posterior) p /= total;
  return posterior;
}

TEST(NetworkTest, FittedParametersCloseToGenerator) {
  const BayesianNetwork net = ChainNetwork();
  EXPECT_NEAR(net.cpt(0).Prob(1, 0), 0.3, 0.02);
  // P(B=1 | A=1): parent config index 1.
  EXPECT_NEAR(net.cpt(1).Prob(1, 1), 0.9, 0.02);
  EXPECT_NEAR(net.cpt(2).Prob(1, 0), 0.4, 0.02);
}

TEST(NetworkTest, SampleTableMatchesMarginals) {
  const BayesianNetwork net = ChainNetwork();
  Rng rng(77);
  const Table sample = net.SampleTable(20000, rng);
  double a1 = 0;
  for (std::size_t i = 0; i < sample.num_objects(); ++i) {
    a1 += sample.At(i, 0);
  }
  EXPECT_NEAR(a1 / 20000.0, 0.3, 0.02);
}

TEST(InferenceTest, VariableEliminationMatchesBruteForce) {
  const BayesianNetwork net = ChainNetwork();
  for (std::size_t query = 0; query < 3; ++query) {
    for (int ev_case = 0; ev_case < 3; ++ev_case) {
      Evidence evidence;
      if (ev_case == 1) evidence[(query + 1) % 3] = 1;
      if (ev_case == 2) {
        evidence[(query + 1) % 3] = 0;
        evidence[(query + 2) % 3] = 1;
      }
      const auto ve = VariableElimination(net, evidence, query);
      ASSERT_TRUE(ve.ok());
      const auto brute = BruteForcePosterior(net, evidence, query);
      for (std::size_t v = 0; v < brute.size(); ++v) {
        EXPECT_NEAR(ve.value()[v], brute[v], 1e-9)
            << "query=" << query << " case=" << ev_case;
      }
    }
  }
}

TEST(InferenceTest, EvidencePropagatesThroughChain) {
  const BayesianNetwork net = ChainNetwork();
  // P(C=1 | A=1) > P(C=1 | A=0): A raises B which raises C.
  const auto given_a1 = VariableElimination(net, {{0, 1}}, 2);
  const auto given_a0 = VariableElimination(net, {{0, 0}}, 2);
  ASSERT_TRUE(given_a1.ok());
  ASSERT_TRUE(given_a0.ok());
  EXPECT_GT(given_a1.value()[1], given_a0.value()[1]);
}

TEST(InferenceTest, RejectsBadQueries) {
  const BayesianNetwork net = ChainNetwork();
  EXPECT_FALSE(VariableElimination(net, {}, 99).ok());
  EXPECT_FALSE(VariableElimination(net, {{0, 1}}, 0).ok());
  EXPECT_FALSE(VariableElimination(net, {{0, 7}}, 1).ok());
}

TEST(InferenceTest, LikelihoodWeightingApproximatesVe) {
  const BayesianNetwork net = ChainNetwork();
  Rng rng(99);
  const auto exact = VariableElimination(net, {{2, 1}}, 0);
  const auto approx = LikelihoodWeighting(net, {{2, 1}}, 0, 50000, rng);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(exact.value()[1], approx.value()[1], 0.02);
}

// ------------------------------------------------------------------ //
// Structure learning
// ------------------------------------------------------------------ //

TEST(StructureLearningTest, HillClimbRecoversChainSkeleton) {
  // Data from a strong chain A -> B -> C; the learned structure must
  // connect A-B and B-C (direction may legally flip) and must not link
  // A-C directly given limited dependence.
  Rng rng(13);
  Schema schema;
  schema.AddAttribute("A", 2);
  schema.AddAttribute("B", 2);
  schema.AddAttribute("C", 2);
  Table data(schema);
  for (int i = 0; i < 5000; ++i) {
    const Level a = rng.NextBool(0.5) ? 1 : 0;
    const Level b = rng.NextBool(a == 1 ? 0.95 : 0.05) ? 1 : 0;
    const Level c = rng.NextBool(b == 1 ? 0.9 : 0.1) ? 1 : 0;
    BAYESCROWD_CHECK_OK(data.AppendRow("r", {a, b, c}));
  }
  const auto dag = HillClimbStructure(data);
  ASSERT_TRUE(dag.ok());
  const auto linked = [&dag](std::size_t x, std::size_t y) {
    return dag->HasEdge(x, y) || dag->HasEdge(y, x);
  };
  EXPECT_TRUE(linked(0, 1));
  EXPECT_TRUE(linked(1, 2));
}

TEST(StructureLearningTest, BicImprovesOverEmptyForDependentData) {
  const Table data = MakeAdultLike(2000, 3);
  const auto dag = HillClimbStructure(data);
  ASSERT_TRUE(dag.ok());
  EXPECT_GT(dag->num_edges(), 0u);
  const auto learned_score = BicScore(data, *dag);
  const auto empty_score = BicScore(data, Dag(data.num_attributes()));
  ASSERT_TRUE(learned_score.ok());
  ASSERT_TRUE(empty_score.ok());
  EXPECT_GT(learned_score.value(), empty_score.value());
}

TEST(StructureLearningTest, ChowLiuBuildsSpanningTree) {
  const Table data = MakeAdultLike(2000, 4);
  const auto dag = ChowLiuStructure(data);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_edges(), data.num_attributes() - 1);
  EXPECT_EQ(dag->TopologicalOrder().size(), data.num_attributes());
}

TEST(StructureLearningTest, WorksOnIncompleteData) {
  Rng rng(14);
  const Table complete = MakeAdultLike(2000, 5);
  const Table data = InjectMissingUniform(complete, 0.15, rng);
  const auto dag = HillClimbStructure(data);
  ASSERT_TRUE(dag.ok());
  auto net = BayesianNetwork::Create(data.schema(), *dag);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(net->FitParameters(data).ok());
}


TEST(StructureLearningTest, K2RecoversChainUnderTrueOrdering) {
  Rng rng(15);
  Schema schema;
  schema.AddAttribute("A", 2);
  schema.AddAttribute("B", 2);
  schema.AddAttribute("C", 2);
  Table data(schema);
  for (int i = 0; i < 5000; ++i) {
    const Level a = rng.NextBool(0.5) ? 1 : 0;
    const Level b = rng.NextBool(a == 1 ? 0.95 : 0.05) ? 1 : 0;
    const Level c = rng.NextBool(b == 1 ? 0.9 : 0.1) ? 1 : 0;
    BAYESCROWD_CHECK_OK(data.AppendRow("r", {a, b, c}));
  }
  const auto dag = K2Structure(data, {0, 1, 2});
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->HasEdge(0, 1));
  EXPECT_TRUE(dag->HasEdge(1, 2));
}

TEST(StructureLearningTest, K2RespectsMaxParentsAndOrdering) {
  const Table data = MakeAdultLike(1500, 16);
  std::vector<std::size_t> ordering(data.num_attributes());
  for (std::size_t i = 0; i < ordering.size(); ++i) ordering[i] = i;
  const auto dag = K2Structure(data, ordering, 2);
  ASSERT_TRUE(dag.ok());
  std::vector<std::size_t> position(ordering.size());
  for (std::size_t i = 0; i < ordering.size(); ++i) {
    position[ordering[i]] = i;
  }
  for (std::size_t v = 0; v < data.num_attributes(); ++v) {
    EXPECT_LE(dag->parents(v).size(), 2u);
    for (std::size_t p : dag->parents(v)) {
      EXPECT_LT(position[p], position[v]);  // Parents precede children.
    }
  }
}

TEST(StructureLearningTest, K2ValidatesOrdering) {
  const Table data = MakeAdultLike(100, 17);
  EXPECT_FALSE(K2Structure(data, {0, 1}).ok());           // Too short.
  EXPECT_FALSE(K2Structure(data, {0, 0, 1, 2, 3, 4, 5, 6, 7}).ok());
  EXPECT_FALSE(K2Structure(data, {0, 1, 2, 3, 4, 5, 6, 7, 99}).ok());
}


TEST(StructureLearningTest, AllLearnersBeatTheEmptyGraph) {
  // Greedy searches carry no dominance guarantees among each other
  // (K2 with the generator's own causal ordering can legitimately beat
  // hill-climbing), but on dependency-rich data every learner must
  // improve on independence.
  const Table data = MakeAdultLike(3000, 18);
  const auto hc = HillClimbStructure(data);
  const auto cl = ChowLiuStructure(data);
  std::vector<std::size_t> ordering(data.num_attributes());
  for (std::size_t i = 0; i < ordering.size(); ++i) ordering[i] = i;
  const auto k2 = K2Structure(data, ordering);
  ASSERT_TRUE(hc.ok());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(k2.ok());
  const double s_empty =
      BicScore(data, Dag(data.num_attributes())).value();
  EXPECT_GT(BicScore(data, *hc).value(), s_empty);
  EXPECT_GT(BicScore(data, *cl).value(), s_empty);
  EXPECT_GT(BicScore(data, *k2).value(), s_empty);
}

// ------------------------------------------------------------------ //
// Posterior providers
// ------------------------------------------------------------------ //

TEST(ImputationTest, BnProviderConditionsOnRowEvidence) {
  const BayesianNetwork net = ChainNetwork();
  Table incomplete(net.schema());
  ASSERT_TRUE(incomplete.AppendRow("r1", {1, kMissingLevel, 1}).ok());
  ASSERT_TRUE(incomplete.AppendRow("r2", {0, kMissingLevel, 1}).ok());
  BnPosteriorProvider provider(net, incomplete);
  const auto p1 = provider.Posterior({0, 1});
  const auto p2 = provider.Posterior({1, 1});
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  // B is much likelier 1 when A=1 than when A=0.
  EXPECT_GT(p1.value()[1], p2.value()[1]);
  // Cross-check against brute force.
  const auto brute = BruteForcePosterior(net, {{0, 1}, {2, 1}}, 1);
  EXPECT_NEAR(p1.value()[1], brute[1], 1e-9);
}

TEST(ImputationTest, BnProviderRejectsObservedCell) {
  const BayesianNetwork net = ChainNetwork();
  Table incomplete(net.schema());
  ASSERT_TRUE(incomplete.AppendRow("r1", {1, kMissingLevel, 1}).ok());
  BnPosteriorProvider provider(net, incomplete);
  EXPECT_FALSE(provider.Posterior({0, 0}).ok());
  EXPECT_FALSE(provider.Posterior({5, 0}).ok());
}

TEST(ImputationTest, FixedAndUniformProviders) {
  FixedMarginalsProvider fixed(SampleMovieDistributions());
  const auto p = fixed.Posterior({4, 3});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value()[4], 0.3, 1e-12);

  UniformPosteriorProvider uniform(MakeSampleMovieDataset().schema());
  const auto u = uniform.Posterior({4, 2});
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u.value().size(), 8u);
  EXPECT_NEAR(u.value()[0], 0.125, 1e-12);
}

}  // namespace
}  // namespace bayescrowd
