// Checkpoint format and store tests: envelope integrity, payload
// round-trips, generation management, corruption fallback, and the
// committed v1 golden fixture (forward-compat contract).

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/fileio.h"
#include "core/session.h"
#include "crowd/record_replay.h"
#include "obs/metrics.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A deterministic, richly-populated state: every field class exercised
/// (decided + CNF conditions, round logs with recovery data, metrics of
/// all three kinds, binary blobs, session-layer stamps). Also the
/// generator of the committed golden fixture — see GoldenV1Fixture.
SessionState MakeGoldenState() {
  SessionState state;
  state.budget_left = 12.5;
  state.consecutive_barren = 1;
  state.rounds = 3;
  state.tasks_posted = 9;
  state.cost_spent = 11.5;
  state.cost_refunded = 2.0;
  state.tasks_unanswered = 2;
  state.retries = 4;
  state.transient_failures = 3;
  state.rounds_abandoned = 1;
  state.order_conflicts = 1;
  state.backoff_seconds = 1.75;
  state.simulated_seconds = 21.25;
  state.initial_true = 2;
  state.initial_false = 5;
  state.initial_undecided = 3;

  RoundLog log;
  log.round = 3;
  log.tasks = 4;
  log.seconds = 0.0;  // Wall clock is not part of determinism.
  log.attempts = 2;
  log.answered = 3;
  log.unanswered = 1;
  log.cost_refunded = 1.0;
  log.backoff_seconds = 0.5;
  log.simulated_seconds = 7.5;
  log.abandoned = false;
  log.cache_hits = 17;
  log.cache_misses = 5;
  state.round_logs = {log};

  state.conditions.push_back(Condition::True());
  state.conditions.push_back(Condition::False());
  state.conditions.push_back(Condition::Cnf(
      {{Expression::VarConst(V(2, 1), CmpOp::kGreater, 3)},
       {Expression::VarVar(V(2, 0), CmpOp::kLess, V(0, 0)),
        Expression::VarConst(V(2, 1), CmpOp::kLess, 7)}}));

  state.knowledge_blob = std::string("kb\x00\x01\x7f", 5);
  state.evaluator_blob = std::string("memo\xff", 5);

  obs::MetricsRegistry registry;
  registry.GetCounter("framework.tasks_posted")->Increment(9);
  registry.GetGauge("framework.budget_left")->Set(12.5);
  registry.GetHistogram("round.entropy", {0.5, 1.0, 2.0})->Observe(0.75);
  state.metrics = registry.Snapshot();

  state.platform_state = std::string("\x01\x02\x03", 3);
  state.platform_tasks = 9;
  state.platform_rounds = 3;
  state.answer_log_offset = 7;
  state.network_blob = "bayesnet v1\n";
  state.config_fingerprint = 0x1234abcd5678ef90ULL;

  // v2 fields: one open and one counting breaker, ascending object id.
  SolverBreakerRecord open_breaker;
  open_breaker.object = 2;
  open_breaker.fingerprint = {0xfeedbeefULL, 0x12345678ULL};
  open_breaker.consecutive = 3;
  open_breaker.open = true;
  open_breaker.last = ProbInterval{0.25, 0.75, ProbQuality::kPartialBound};
  SolverBreakerRecord counting_breaker;
  counting_breaker.object = 5;
  counting_breaker.fingerprint = {0x1ULL, 0x2ULL};
  counting_breaker.consecutive = 1;
  counting_breaker.open = false;
  counting_breaker.last = ProbInterval::Exact(0.5);
  state.solver_breakers = {open_breaker, counting_breaker};
  return state;
}

std::string SerializeState(const SessionState& state) {
  std::string payload;
  SerializeSessionState(state, &payload);
  return payload;
}

TEST(CheckpointEnvelopeTest, RoundTrips) {
  const std::string payload = "some payload bytes";
  const std::string wrapped = WrapCheckpoint(payload);
  const auto unwrapped = UnwrapCheckpoint(wrapped);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status().ToString();
  EXPECT_EQ(unwrapped.value(), payload);
}

TEST(CheckpointEnvelopeTest, DetectsPayloadCorruption) {
  std::string wrapped = WrapCheckpoint("the payload under test");
  // Flip one payload byte; the CRC must catch it.
  wrapped[20] = static_cast<char>(wrapped[20] ^ 0x40);
  const auto unwrapped = UnwrapCheckpoint(wrapped);
  ASSERT_FALSE(unwrapped.ok());
  EXPECT_TRUE(unwrapped.status().IsIOError())
      << unwrapped.status().ToString();
}

TEST(CheckpointEnvelopeTest, DetectsCrcCorruption) {
  std::string wrapped = WrapCheckpoint("another payload");
  wrapped.back() = static_cast<char>(wrapped.back() ^ 0x01);
  EXPECT_TRUE(UnwrapCheckpoint(wrapped).status().IsIOError());
}

TEST(CheckpointEnvelopeTest, DetectsTruncationAtEveryLength) {
  const std::string wrapped = WrapCheckpoint("payload that gets cut");
  for (std::size_t len = 0; len < wrapped.size(); ++len) {
    const auto unwrapped = UnwrapCheckpoint(wrapped.substr(0, len));
    ASSERT_FALSE(unwrapped.ok()) << "length " << len;
    EXPECT_TRUE(unwrapped.status().IsIOError()) << "length " << len;
  }
}

TEST(CheckpointEnvelopeTest, RejectsBadMagic) {
  std::string wrapped = WrapCheckpoint("payload");
  wrapped[0] = 'X';
  EXPECT_TRUE(UnwrapCheckpoint(wrapped).status().IsIOError());
}

TEST(CheckpointEnvelopeTest, RejectsFutureVersionWithClearError) {
  std::string wrapped = WrapCheckpoint("payload");
  // Version is the little-endian u32 after the 4-byte magic.
  wrapped[4] = static_cast<char>(kCheckpointVersion + 1);
  const auto unwrapped = UnwrapCheckpoint(wrapped);
  ASSERT_FALSE(unwrapped.ok());
  EXPECT_TRUE(unwrapped.status().IsInvalidArgument())
      << unwrapped.status().ToString();
  EXPECT_NE(unwrapped.status().message().find("newer"), std::string::npos)
      << unwrapped.status().message();
}

TEST(SessionStateTest, RoundTripsByteExact) {
  const SessionState original = MakeGoldenState();
  const std::string payload = SerializeState(original);

  BinReader reader(payload);
  SessionState restored;
  ASSERT_TRUE(DeserializeSessionState(&reader, &restored).ok());

  // Byte-exact re-serialization covers every field, including the
  // metrics snapshot, without a field-by-field comparison.
  EXPECT_EQ(SerializeState(restored), payload);
  EXPECT_EQ(restored.rounds, original.rounds);
  EXPECT_EQ(restored.budget_left, original.budget_left);
  ASSERT_EQ(restored.conditions.size(), 3u);
  EXPECT_TRUE(restored.conditions[0].IsTrue());
  EXPECT_TRUE(restored.conditions[1].IsFalse());
  EXPECT_FALSE(restored.conditions[2].IsDecided());
  EXPECT_EQ(restored.knowledge_blob, original.knowledge_blob);
  EXPECT_EQ(restored.config_fingerprint, original.config_fingerprint);
}

TEST(SessionStateTest, RejectsTrailingBytes) {
  std::string payload = SerializeState(MakeGoldenState());
  payload += "extra";
  BinReader reader(payload);
  SessionState restored;
  EXPECT_FALSE(DeserializeSessionState(&reader, &restored).ok());
}

TEST(SessionStateTest, RejectsTruncatedPayload) {
  const std::string payload = SerializeState(MakeGoldenState());
  // Sample a few truncation points; every one must fail cleanly.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{9}, payload.size() / 3,
        payload.size() / 2, payload.size() - 1}) {
    const std::string cut = payload.substr(0, len);
    BinReader reader(cut);
    SessionState restored;
    EXPECT_FALSE(DeserializeSessionState(&reader, &restored).ok())
        << "length " << len;
  }
}

TEST(CheckpointStoreTest, WritesPrunesAndLoadsNewest) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_store");
  options.keep = 2;
  CheckpointStore store(options);

  SessionState state = MakeGoldenState();
  for (std::size_t round = 1; round <= 4; ++round) {
    state.rounds = round;
    state.answer_log_offset = round;
    ASSERT_TRUE(store.Write(state).ok()) << "round " << round;
  }
  const auto generations = store.ListGenerations();
  ASSERT_EQ(generations.size(), 2u);  // Pruned to keep.
  EXPECT_EQ(generations.front(), "ckpt-00000003.bin");
  EXPECT_EQ(generations.back(), "ckpt-00000004.bin");

  std::size_t fallbacks = 99;
  const auto loaded = store.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rounds, 4u);
  EXPECT_EQ(fallbacks, 0u);
}

TEST(CheckpointStoreTest, FallsBackPastCorruptNewestGeneration) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_fallback");
  CheckpointStore store(options);

  SessionState state = MakeGoldenState();
  state.answer_log_offset = 0;
  for (std::size_t round = 1; round <= 3; ++round) {
    state.rounds = round;
    ASSERT_TRUE(store.Write(state).ok());
  }
  // Corrupt the newest generation in the middle of the payload.
  const std::string newest = options.dir + "/ckpt-00000003.bin";
  std::string bytes = ReadFileBytes(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFileBytes(newest, bytes);

  std::size_t fallbacks = 0;
  const auto loaded = store.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rounds, 2u);
  EXPECT_EQ(fallbacks, 1u);
}

TEST(CheckpointStoreTest, SkipsSnapshotAheadOfAnswerLog) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_ahead");
  CheckpointStore store(options);

  SessionState state = MakeGoldenState();
  state.rounds = 1;
  state.answer_log_offset = 2;
  ASSERT_TRUE(store.Write(state).ok());
  state.rounds = 2;
  state.answer_log_offset = 10;  // More than the log will hold.
  ASSERT_TRUE(store.Write(state).ok());

  std::size_t fallbacks = 0;
  const auto loaded = store.LoadLatest(/*max_valid_log_entries=*/5,
                                       &fallbacks);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rounds, 1u);
  EXPECT_EQ(fallbacks, 1u);
}

TEST(CheckpointStoreTest, NoUsableGenerationIsNotFound) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_empty");
  const CheckpointStore store(options);
  std::size_t fallbacks = 0;
  EXPECT_TRUE(store.LoadLatest(0, &fallbacks).status().IsNotFound());
}

TEST(CheckpointStoreTest, InjectedWriteFailureIsCleanIOErrorWithPath) {
  FaultPlan plan;
  plan.write_fail_rate = 1.0;  // Every durable write fails (ENOSPC-ish).
  FaultInjectingFileIo io(plan);

  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_enospc");
  options.io = &io;
  CheckpointStore store(options);

  SessionState state = MakeGoldenState();
  state.rounds = 1;
  const Status wrote = store.Write(state);
  EXPECT_TRUE(wrote.IsIOError()) << wrote.ToString();
  // The error carries the path so an operator can find the full disk,
  // and the aborted tmp file is cleaned up — no half-written
  // generations for a later scan to trip over.
  EXPECT_NE(wrote.message().find(options.dir), std::string::npos)
      << wrote.ToString();
  EXPECT_TRUE(store.ListGenerations().empty());
  for (const auto& entry :
       std::filesystem::directory_iterator(options.dir)) {
    ADD_FAILURE() << "leftover file " << entry.path();
  }
  EXPECT_GE(io.stats().writes_failed, 1u);
}

TEST(CheckpointStoreTest, InjectedSyncFailureFailsTheWrite) {
  FaultPlan plan;
  plan.sync_fail_rate = 1.0;
  FaultInjectingFileIo io(plan);

  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_esync");
  options.io = &io;
  CheckpointStore store(options);

  SessionState state = MakeGoldenState();
  state.rounds = 1;
  const Status wrote = store.Write(state);
  EXPECT_TRUE(wrote.IsIOError()) << wrote.ToString();
  EXPECT_GE(io.stats().syncs_failed, 1u);

  // The same store succeeds once the disk heals (deterministic plan,
  // new injector): faults never latch the store.
  FaultInjectingFileIo healthy({});
  CheckpointStore::Options healed_options;
  healed_options.dir = options.dir;
  healed_options.io = &healthy;
  CheckpointStore healed(healed_options);
  EXPECT_TRUE(healed.Write(state).ok());
  EXPECT_EQ(healed.ListGenerations().size(), 1u);
}

TEST(CheckpointStoreTest, InjectedReadCorruptionFallsBackToOlder) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_readcorrupt");
  CheckpointStore store(options);
  SessionState state = MakeGoldenState();
  state.answer_log_offset = 0;
  for (std::size_t round = 1; round <= 3; ++round) {
    state.rounds = round;
    ASSERT_TRUE(store.Write(state).ok());
  }

  // Reads through a corrupting IO layer: roughly half the generations
  // come back truncated; the CRC envelope rejects them and LoadLatest
  // falls back — it never returns a damaged snapshot.
  FaultPlan plan;
  plan.read_corrupt_rate = 0.5;
  plan.seed = 11;
  FaultInjectingFileIo io(plan);
  CheckpointStore::Options corrupt_options;
  corrupt_options.dir = options.dir;
  corrupt_options.io = &io;
  const CheckpointStore corrupted(corrupt_options);
  std::size_t fallbacks = 0;
  const auto loaded = corrupted.LoadLatest(100, &fallbacks);
  if (loaded.ok()) {
    EXPECT_GE(loaded->rounds, 1u);
    EXPECT_LE(loaded->rounds, 3u);
  } else {
    EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status().ToString();
  }
}

TEST(CheckpointStoreTest, SessionNamespacesNeitherPruneNorLoadEachOther) {
  const std::string dir = FreshDir("bc_ckpt_sessions");
  CheckpointStore alpha({.dir = dir, .session_id = "alpha", .keep = 2});
  CheckpointStore beta({.dir = dir, .session_id = "beta", .keep = 2});

  SessionState state = MakeGoldenState();
  state.answer_log_offset = 0;
  for (std::size_t round = 1; round <= 3; ++round) {
    state.rounds = round;
    state.budget_left = 100.0 + static_cast<double>(round);
    ASSERT_TRUE(alpha.Write(state).ok());
  }
  state.rounds = 1;
  state.budget_left = 7.0;
  ASSERT_TRUE(beta.Write(state).ok());

  // Alpha pruned only its own generations; beta's survived alpha's
  // three writes even though beta is far below its own keep limit.
  const auto alpha_gens = alpha.ListGenerations();
  ASSERT_EQ(alpha_gens.size(), 2u);
  EXPECT_EQ(alpha_gens.front(), "ckpt-alpha-00000002.bin");
  EXPECT_EQ(alpha_gens.back(), "ckpt-alpha-00000003.bin");
  const auto beta_gens = beta.ListGenerations();
  ASSERT_EQ(beta_gens.size(), 1u);
  EXPECT_EQ(beta_gens.front(), "ckpt-beta-00000001.bin");

  // Each store loads its own newest snapshot, never the neighbor's —
  // even though beta's generation number is lower than alpha's.
  std::size_t fallbacks = 0;
  const auto from_alpha = alpha.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(from_alpha.ok()) << from_alpha.status().ToString();
  EXPECT_EQ(from_alpha->rounds, 3u);
  EXPECT_EQ(from_alpha->budget_left, 103.0);
  const auto from_beta = beta.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(from_beta.ok()) << from_beta.status().ToString();
  EXPECT_EQ(from_beta->rounds, 1u);
  EXPECT_EQ(from_beta->budget_left, 7.0);

  // A legacy (un-namespaced) store sharing the directory sees neither
  // session's files, and its own writes are invisible to both.
  CheckpointStore legacy({.dir = dir});
  EXPECT_TRUE(legacy.ListGenerations().empty());
  state.rounds = 9;
  ASSERT_TRUE(legacy.Write(state).ok());
  EXPECT_EQ(legacy.ListGenerations().size(), 1u);
  EXPECT_EQ(alpha.ListGenerations().size(), 2u);
  EXPECT_EQ(beta.ListGenerations().size(), 1u);
}

TEST(CheckpointStoreTest, SessionIdPrefixCannotClaimLongerIdsFiles) {
  // "alpha" is a prefix of "alpha-00000001": the parser must not let
  // the short id claim the long id's files (or vice versa) even though
  // `ckpt-alpha-00000001-00000001.bin` starts with the short prefix.
  const std::string dir = FreshDir("bc_ckpt_prefix");
  CheckpointStore shorter({.dir = dir, .session_id = "alpha"});
  CheckpointStore longer({.dir = dir, .session_id = "alpha-00000001"});

  SessionState state = MakeGoldenState();
  state.answer_log_offset = 0;
  state.rounds = 1;
  ASSERT_TRUE(longer.Write(state).ok());

  EXPECT_TRUE(shorter.ListGenerations().empty());
  std::size_t fallbacks = 0;
  EXPECT_TRUE(shorter.LoadLatest(100, &fallbacks).status().IsNotFound());

  state.rounds = 2;
  ASSERT_TRUE(shorter.Write(state).ok());
  const auto longer_gens = longer.ListGenerations();
  ASSERT_EQ(longer_gens.size(), 1u);
  EXPECT_EQ(longer_gens.front(), "ckpt-alpha-00000001-00000001.bin");
  const auto shorter_gens = shorter.ListGenerations();
  ASSERT_EQ(shorter_gens.size(), 1u);
  EXPECT_EQ(shorter_gens.front(), "ckpt-alpha-00000002.bin");
}

TEST(CheckpointStoreTest, AbortedWriteLeavesPreviousGenerationsIntact) {
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_abort");
  CheckpointStore store(options);
  SessionState state = MakeGoldenState();
  state.rounds = 1;
  state.answer_log_offset = 0;
  ASSERT_TRUE(store.Write(state).ok());

  // A kill before the rename: the tmp file never becomes a generation.
  CheckpointStore::Options failing = options;
  failing.pre_rename_hook = [](const std::string&) {
    return Status::IOError("simulated kill before rename");
  };
  CheckpointStore failing_store(failing);
  state.rounds = 2;
  EXPECT_FALSE(failing_store.Write(state).ok());

  EXPECT_EQ(store.ListGenerations(),
            std::vector<std::string>{"ckpt-00000001.bin"});
  std::size_t fallbacks = 0;
  const auto loaded = store.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rounds, 1u);
  EXPECT_EQ(fallbacks, 0u);
}

TEST(CheckpointStoreTest, TornTmpWritePromotedByRenameFallsBack) {
  // The hook truncates the tmp file *and lets the rename happen*: the
  // worst realistic torn-write outcome. The loader must fall back.
  CheckpointStore::Options options;
  options.dir = FreshDir("bc_ckpt_torn");
  CheckpointStore store(options);
  SessionState state = MakeGoldenState();
  state.rounds = 1;
  state.answer_log_offset = 0;
  ASSERT_TRUE(store.Write(state).ok());

  CheckpointStore::Options tearing = options;
  tearing.pre_rename_hook = [](const std::string& tmp_path) {
    std::error_code ec;
    std::filesystem::resize_file(
        tmp_path, std::filesystem::file_size(tmp_path) / 2, ec);
    return ec ? Status::IOError(ec.message()) : Status::OK();
  };
  CheckpointStore tearing_store(tearing);
  state.rounds = 2;
  ASSERT_TRUE(tearing_store.Write(state).ok());

  std::size_t fallbacks = 0;
  const auto loaded = store.LoadLatest(100, &fallbacks);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rounds, 1u);
  EXPECT_EQ(fallbacks, 1u);
}

// ------------------------------------------------------------------- //
// Golden fixtures. golden_v1.ckpt is a frozen pre-governor checkpoint:
// HEAD must load it forever through the versioned path (it cannot be
// regenerated — no v1 writer exists anymore). golden_v2.ckpt matches
// today's writer byte-for-byte; regenerate with:
//   BC_REGEN_GOLDEN=1 ./checkpoint_test
// ------------------------------------------------------------------- //

TEST(GoldenV1FixtureTest, CommittedFixtureLoadsOnHead) {
  const std::string path = std::string(BC_TESTDATA_DIR) + "/golden_v1.ckpt";
  const std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty()) << "missing fixture " << path;

  std::uint32_t version = 0;
  const auto payload = UnwrapCheckpoint(bytes, &version);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(version, 1u);
  BinReader reader(payload.value());
  SessionState restored;
  ASSERT_TRUE(
      DeserializeSessionState(&reader, &restored, version).ok());

  // A v1 payload loads with the governor-era fields defaulted: no
  // breaker records, and the evaluator blob marked as the format-1
  // (point-probability) layout so RestoreMemoState parses it right.
  EXPECT_TRUE(restored.solver_breakers.empty());
  EXPECT_EQ(restored.evaluator_blob_format, 1u);

  const SessionState expected = MakeGoldenState();
  EXPECT_EQ(restored.rounds, 3u);
  EXPECT_EQ(restored.budget_left, expected.budget_left);
  EXPECT_EQ(restored.answer_log_offset, 7u);
  EXPECT_EQ(restored.config_fingerprint, 0x1234abcd5678ef90ULL);
  ASSERT_EQ(restored.conditions.size(), 3u);
  EXPECT_TRUE(restored.conditions[0].IsTrue());
  EXPECT_FALSE(restored.conditions[2].IsDecided());
  EXPECT_EQ(restored.knowledge_blob, expected.knowledge_blob);
  EXPECT_EQ(restored.evaluator_blob, expected.evaluator_blob);
  ASSERT_EQ(restored.round_logs.size(), 1u);
  EXPECT_EQ(restored.round_logs[0].cache_hits, 17u);

  // And a v1 state re-serialized today round-trips as v2.
  const std::string reserialized = SerializeState(restored);
  BinReader again(reserialized);
  SessionState v2;
  ASSERT_TRUE(DeserializeSessionState(&again, &v2).ok());
  EXPECT_EQ(SerializeState(v2), reserialized);
}

TEST(GoldenV2FixtureTest, CommittedFixtureMatchesHeadBytes) {
  const std::string path = std::string(BC_TESTDATA_DIR) + "/golden_v2.ckpt";
  const SessionState expected = MakeGoldenState();
  if (std::getenv("BC_REGEN_GOLDEN") != nullptr) {
    WriteFileBytes(path, WrapCheckpoint(SerializeState(expected)));
  }
  const std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty()) << "missing fixture " << path;

  std::uint32_t version = 0;
  const auto payload = UnwrapCheckpoint(bytes, &version);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  // The committed fixture is a frozen v2 envelope (BC_REGEN_GOLDEN
  // would stamp today's version; the pin below catches that so the
  // fixture is never silently upgraded).
  EXPECT_EQ(version, 2u);
  BinReader reader(payload.value());
  SessionState restored;
  ASSERT_TRUE(
      DeserializeSessionState(&reader, &restored, version).ok());

  // The fixture must match today's serialization of the same state
  // byte-for-byte — any drift means v2 files no longer parse as v2.
  EXPECT_EQ(payload.value(), SerializeState(expected));
  ASSERT_EQ(restored.solver_breakers.size(), 2u);
  EXPECT_EQ(restored.solver_breakers[0].object, 2u);
  EXPECT_TRUE(restored.solver_breakers[0].open);
  EXPECT_EQ(restored.solver_breakers[0].last.quality,
            ProbQuality::kPartialBound);
  EXPECT_EQ(restored.solver_breakers[1].object, 5u);
  EXPECT_FALSE(restored.solver_breakers[1].open);
  // v2 envelopes predate compiled-circuit artifacts: their evaluator
  // blobs must load as format 2, never as the current format.
  EXPECT_EQ(restored.evaluator_blob_format, 2u);
}

TEST(CheckpointEnvelopeTest, AcceptsOlderVersionRejectsZero) {
  // Re-stamp a fresh envelope as v1: the CRC covers only the payload,
  // so the version byte may be edited in place.
  std::string wrapped = WrapCheckpoint("payload");
  wrapped[4] = 1;
  std::uint32_t version = 0;
  ASSERT_TRUE(UnwrapCheckpoint(wrapped, &version).ok());
  EXPECT_EQ(version, 1u);
  wrapped[4] = 0;
  const auto zero = UnwrapCheckpoint(wrapped);
  ASSERT_FALSE(zero.ok());
  EXPECT_TRUE(zero.status().IsInvalidArgument()) << zero.status().ToString();
}

// ------------------------------------------------------------------- //
// Session layer: fingerprints and answer-log-aware recovery.
// ------------------------------------------------------------------- //

TEST(SessionTest, FingerprintSensitivity) {
  BayesCrowdOptions options;
  const std::uint64_t base = ConfigFingerprint(options, "data", "platform");
  EXPECT_EQ(base, ConfigFingerprint(options, "data", "platform"));
  EXPECT_NE(base, ConfigFingerprint(options, "data2", "platform"));
  EXPECT_NE(base, ConfigFingerprint(options, "data", "platform2"));

  BayesCrowdOptions changed = options;
  changed.budget += 1;
  EXPECT_NE(base, ConfigFingerprint(changed, "data", "platform"));

  // Thread count is excluded by design: results are bit-identical at
  // any thread count, so a resume may change it.
  BayesCrowdOptions threaded = options;
  threaded.threads = 8;
  EXPECT_EQ(base, ConfigFingerprint(threaded, "data", "platform"));
}

TEST(SessionTest, RecoverReplaysTailAndDropsTornLine) {
  const std::string dir = FreshDir("bc_session_recover");
  std::filesystem::create_directories(dir);
  const std::string log_path = dir + "/answers.log";

  // Three durable entries plus a torn final line (killed mid-append).
  WriteFileBytes(log_path,
                 "# bayescrowd answer log v2\n"
                 "vc 0 1 > 3 g 1\n"
                 "vc 1 0 < 5 l 1\n"
                 "vv 2 1 > 0 1 g 2\n"
                 "vc 2 0 > 4");  // Torn: no relation/round/newline.

  CheckpointStore::Options options;
  options.dir = dir;
  CheckpointStore store(options);
  SessionState state = MakeGoldenState();
  state.rounds = 1;
  state.answer_log_offset = 1;
  state.config_fingerprint = 42;
  ASSERT_TRUE(store.Write(state).ok());

  const auto recovered = RecoverSession(dir, log_path, 42);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->dropped_torn_tail);
  EXPECT_EQ(recovered->durable_entries, 3u);
  EXPECT_EQ(recovered->state.rounds, 1u);
  ASSERT_EQ(recovered->replay_tail.entries.size(), 2u);
  EXPECT_EQ(recovered->replay_tail.entries[1].round, 2u);

  // The torn line was scrubbed from disk: a plain strict load succeeds
  // and sees exactly the three durable entries.
  const auto reloaded = LoadAnswerLog(log_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->entries.size(), 3u);
}

TEST(SessionTest, RecoverRefusesFingerprintMismatch) {
  const std::string dir = FreshDir("bc_session_fpr");
  CheckpointStore::Options options;
  options.dir = dir;
  CheckpointStore store(options);
  SessionState state = MakeGoldenState();
  state.rounds = 1;
  state.answer_log_offset = 0;
  state.config_fingerprint = 7;
  ASSERT_TRUE(store.Write(state).ok());

  const auto recovered = RecoverSession(dir, dir + "/answers.log", 8);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsFailedPrecondition())
      << recovered.status().ToString();

  // Fingerprint 0 skips the check (caller opted out).
  EXPECT_TRUE(RecoverSession(dir, dir + "/answers.log", 0).ok());
}

}  // namespace
}  // namespace bayescrowd
