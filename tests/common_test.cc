// Tests for the common substrate: Status/Result, string utilities, RNG,
// dynamic bitset and CSV.

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitset.h"
#include "common/csv.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace bayescrowd {
namespace {

// ------------------------------------------------------------------ //
// Status / Result
// ------------------------------------------------------------------ //

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  BAYESCROWD_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsOutOfRange());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  auto good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  auto bad = ParsePositive(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

Result<int> ChainsAssignOrReturn(int x) {
  BAYESCROWD_ASSIGN_OR_RETURN(const int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(ChainsAssignOrReturn(5).value(), 11);
  EXPECT_FALSE(ChainsAssignOrReturn(0).ok());
}

// ------------------------------------------------------------------ //
// String utilities
// ------------------------------------------------------------------ //

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, ParseIntHandlesEdges) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4x", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

TEST(StringUtilTest, ParseDoubleHandlesEdges) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ------------------------------------------------------------------ //
// Rng
// ------------------------------------------------------------------ //

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(5);
  Rng b(6);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(7), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextDiscreteFollowsWeights) {
  Rng rng(4);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) {
    ones += rng.NextDiscrete(weights) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

// ------------------------------------------------------------------ //
// DynamicBitset
// ------------------------------------------------------------------ //

TEST(BitsetTest, SetTestResetCount) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Reset(64);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, FillTrueClearsPadding) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.Count(), 70u);
  bits.Fill(false);
  EXPECT_TRUE(bits.None());
  bits.Fill(true);
  EXPECT_EQ(bits.Count(), 70u);
}

TEST(BitsetTest, AndOrOperate) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(3);
  a.Set(70);
  b.Set(70);
  b.Set(99);
  DynamicBitset c = a;
  c &= b;
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_TRUE(c.Test(70));
  DynamicBitset d = a;
  d |= b;
  EXPECT_EQ(d.Count(), 3u);
}

TEST(BitsetTest, SetRangeWordBoundaries) {
  DynamicBitset bits(200);
  bits.SetRange(60, 70);
  EXPECT_EQ(bits.Count(), 10u);
  EXPECT_TRUE(bits.Test(60));
  EXPECT_TRUE(bits.Test(69));
  EXPECT_FALSE(bits.Test(59));
  EXPECT_FALSE(bits.Test(70));
  bits.SetRange(0, 0);
  EXPECT_EQ(bits.Count(), 10u);
  bits.SetRange(128, 200);
  EXPECT_EQ(bits.Count(), 82u);
}

TEST(BitsetTest, ForEachSetBitAscending) {
  DynamicBitset bits(150);
  bits.Set(5);
  bits.Set(64);
  bits.Set(149);
  EXPECT_EQ(bits.ToIndices(),
            (std::vector<std::size_t>{5, 64, 149}));
}

// ------------------------------------------------------------------ //
// CSV
// ------------------------------------------------------------------ //

TEST(CsvTest, ParsesHeaderAndRows) {
  const auto doc = ParseCsv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][1], "4");
}

TEST(CsvTest, HandlesQuotesAndEscapes) {
  const auto doc =
      ParseCsv("\"x,y\",\"he said \"\"hi\"\"\"\nplain,2\n", false);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "x,y");
  EXPECT_EQ(doc->rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n", true).ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"abc\n", false).ok());
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvRow({"a", "b,c", "d\"e"}), "a,\"b,c\",\"d\"\"e\"\n");
}

TEST(CsvTest, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"name", "value"};
  doc.rows = {{"x", "1"}, {"y, z", "2"}};
  const std::string path = ::testing::TempDir() + "/bc_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  const auto loaded = ReadCsvFile(path, true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, doc.header);
  EXPECT_EQ(loaded->rows, doc.rows);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Restart();
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace bayescrowd
