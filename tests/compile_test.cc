// Tests for the knowledge-compilation layer (circuit.h / compiler.h /
// the evaluator's artifact cache): compiled circuits must replay ADPLL
// bit for bit under shifted posteriors, refuse oversized instances
// through the governed fallback instead of mis-answering, survive
// serialization (including the checkpoint memo blob), and never leak
// artifacts across budget or compile configurations.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "adversarial_ctables.h"
#include "common/binio.h"
#include "common/random.h"
#include "common/status.h"
#include "ctable/builder.h"
#include "ctable/ctable.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/circuit.h"
#include "probability/compiler.h"
#include "probability/distributions.h"
#include "probability/evaluator.h"
#include "probability/governor.h"
#include "probability/interval.h"

namespace bayescrowd {
namespace {

constexpr Level kLevels = 4;
constexpr std::size_t kMaxVars = 8;
constexpr std::size_t kMaxConditionsPerCase = 6;

struct CompileCase {
  Table incomplete;
  CTable ctable;
  DistributionMap dists;
  std::vector<std::size_t> objects;
};

std::vector<double> RandomDist(std::size_t levels, Rng& rng) {
  std::vector<double> weights(levels);
  double total = 0.0;
  for (double& w : weights) {
    w = 0.05 + rng.NextDouble();
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

// One seeded random c-table with non-uniform distributions — the same
// population family as differential_test.cc, sized so every condition
// both enumerates and compiles comfortably.
CompileCase MakeCompileCase(std::uint64_t seed) {
  const std::size_t n = 12 + seed % 8;
  const std::size_t d = 3;
  Table complete;
  switch (seed % 3) {
    case 0:
      complete = MakeIndependent(n, d, kLevels, 1000 + seed);
      break;
    case 1:
      complete = MakeCorrelated(n, d, kLevels, 1000 + seed);
      break;
    default:
      complete = MakeAnticorrelated(n, d, kLevels, 1000 + seed);
      break;
  }
  Rng missing_rng(500 + seed);
  const double rate = 0.15 + 0.01 * static_cast<double>(seed % 10);
  CompileCase out;
  out.incomplete = InjectMissingUniform(complete, rate, missing_rng);

  CTableOptions options;
  options.alpha = -1.0;  // No pruning: keep conditions rich.
  auto ctable = BuildCTable(out.incomplete, options);
  BAYESCROWD_CHECK_OK(ctable.status());
  out.ctable = std::move(ctable).value();

  Rng dist_rng(9000 + seed);
  for (const CellRef& var : out.ctable.AllVariables()) {
    BAYESCROWD_CHECK_OK(out.dists.Set(var, RandomDist(kLevels, dist_rng)));
  }

  for (std::size_t i : out.ctable.UndecidedObjects()) {
    const Condition& condition = out.ctable.condition(i);
    if (condition.NumExpressions() == 0) continue;
    if (condition.Variables().size() > kMaxVars) continue;
    out.objects.push_back(i);
    if (out.objects.size() >= kMaxConditionsPerCase) break;
  }
  return out;
}

// ------------------------------------------------------------------ //
// Compiler: bit-identity with the search it records
// ------------------------------------------------------------------ //

TEST(CircuitCompilerTest, ReplaysAdpllBitForBitOnSeededCTables) {
  std::size_t compiled = 0;
  AdpllScratch adpll_scratch;
  CircuitScratch circuit_scratch;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const CompileCase c = MakeCompileCase(seed);
    for (const std::size_t object : c.objects) {
      const Condition& condition = c.ctable.condition(object);
      auto circuit = CompileCondition(condition, c.dists, {}, {});
      ASSERT_TRUE(circuit.ok())
          << circuit.status() << " seed " << seed << " object " << object;
      ++compiled;

      const auto direct = AdpllProbability(condition, c.dists);
      ASSERT_TRUE(direct.ok());
      const auto replay = circuit->Evaluate(c.dists, &circuit_scratch);
      ASSERT_TRUE(replay.ok()) << replay.status();
      EXPECT_EQ(direct.value(), replay.value())
          << "seed " << seed << " object " << object;

      // The round loop's workload: shift every posterior and
      // re-evaluate. The artifact must track the new numbers exactly,
      // without recompiling.
      Rng shift_rng(777 + seed * 131 + object);
      DistributionMap shifted;
      for (const CellRef& var : c.ctable.AllVariables()) {
        BAYESCROWD_CHECK_OK(
            shifted.Set(var, RandomDist(kLevels, shift_rng)));
      }
      const auto shifted_direct =
          AdpllProbability(condition, shifted, {}, nullptr, &adpll_scratch);
      ASSERT_TRUE(shifted_direct.ok());
      const auto shifted_replay = circuit->Evaluate(shifted, &circuit_scratch);
      ASSERT_TRUE(shifted_replay.ok());
      EXPECT_EQ(shifted_direct.value(), shifted_replay.value())
          << "seed " << seed << " object " << object;
    }
  }
  // The population must actually exercise the compiler.
  EXPECT_GE(compiled, 10u);
}

TEST(CircuitCompilerTest, CoversStarAndDecisionShapes) {
  CircuitScratch scratch;

  // Small chain: the interior hub fits the star cap, so the artifact
  // records a star plan and one evaluation equals the closed form.
  const AdversarialInstance star = MakeDeepChainInstance(3, 4);
  auto star_circuit = CompileCondition(star.condition, star.dists, {}, {});
  ASSERT_TRUE(star_circuit.ok()) << star_circuit.status();
  EXPECT_FALSE(star_circuit->stars.empty());
  const auto p = star_circuit->Evaluate(star.dists, &scratch);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), star.exact_probability, 1e-12);

  // Oversized hub: ADPLL branches variable by variable, so the circuit
  // must reproduce a full decision cascade bit for bit.
  const AdversarialInstance deep = MakeDeepChainInstance(7, 6);
  CompileOptions roomy;
  roomy.max_nodes = 1ull << 20;
  auto deep_circuit =
      CompileCondition(deep.condition, deep.dists, {}, roomy);
  ASSERT_TRUE(deep_circuit.ok()) << deep_circuit.status();
  bool has_decision = false;
  for (const CircuitNode& node : deep_circuit->nodes) {
    if (node.kind == CircuitNodeKind::kDecision) has_decision = true;
  }
  EXPECT_TRUE(has_decision);
  const auto direct = AdpllProbability(deep.condition, deep.dists);
  ASSERT_TRUE(direct.ok());
  const auto replay = deep_circuit->Evaluate(deep.dists, &scratch);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(direct.value(), replay.value());
  EXPECT_NEAR(replay.value(), deep.exact_probability, 1e-9);
}

TEST(CircuitCompilerTest, RefusesBeyondTheNodeBudget) {
  // The wide conjunct charges its full 6^8 enumeration space up front,
  // far past the default compile budget.
  const AdversarialInstance wide = MakeWideChainConjunctInstance(7, 6);
  auto refused = CompileCondition(wide.condition, wide.dists, {}, {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // The deep chain compiles in full — but not into 256 nodes.
  CompileOptions tiny;
  tiny.max_nodes = 256;
  const AdversarialInstance deep = MakeDeepChainInstance(7, 6);
  auto chain = CompileCondition(deep.condition, deep.dists, {}, tiny);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kResourceExhausted);

  // Even a star plan's hub space is charged.
  tiny.max_nodes = 4;
  const AdversarialInstance small = MakeDeepChainInstance(3, 4);
  auto refused_star =
      CompileCondition(small.condition, small.dists, {}, tiny);
  EXPECT_FALSE(refused_star.ok());
}

// ------------------------------------------------------------------ //
// Serialization
// ------------------------------------------------------------------ //

TEST(CompiledCircuitTest, SerializationRoundTripsBitForBit) {
  const AdversarialInstance inst = MakeDeepChainInstance(3, 4);
  auto circuit = CompileCondition(inst.condition, inst.dists, {}, {});
  ASSERT_TRUE(circuit.ok());

  std::string blob;
  BinWriter w(&blob);
  circuit->Serialize(&w);

  BinReader r(blob);
  CompiledCircuit restored;
  ASSERT_TRUE(CompiledCircuit::Deserialize(&r, &restored).ok());

  CircuitScratch scratch;
  const auto original = circuit->Evaluate(inst.dists, &scratch);
  const auto copy = restored.Evaluate(inst.dists, &scratch);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(original.value(), copy.value());

  // Under shifted posteriors too: the blob carries the whole artifact.
  Rng rng(0xC0FFEE);
  DistributionMap shifted;
  for (std::size_t i = 0; i <= 3; ++i) {
    BAYESCROWD_CHECK_OK(shifted.Set(CellRef{i, 0}, RandomDist(4, rng)));
  }
  const auto original_shifted = circuit->Evaluate(shifted, &scratch);
  const auto copy_shifted = restored.Evaluate(shifted, &scratch);
  ASSERT_TRUE(original_shifted.ok());
  ASSERT_TRUE(copy_shifted.ok());
  EXPECT_EQ(original_shifted.value(), copy_shifted.value());

  // Compilation is deterministic, so so is the canonical form.
  auto again = CompileCondition(inst.condition, inst.dists, {}, {});
  ASSERT_TRUE(again.ok());
  std::string blob_again;
  BinWriter w2(&blob_again);
  again->Serialize(&w2);
  EXPECT_EQ(blob, blob_again);
}

TEST(CompiledCircuitTest, RejectsCorruptBlobs) {
  const AdversarialInstance inst = MakeDeepChainInstance(3, 4);
  auto circuit = CompileCondition(inst.condition, inst.dists, {}, {});
  ASSERT_TRUE(circuit.ok());
  std::string blob;
  BinWriter w(&blob);
  circuit->Serialize(&w);

  // Truncations fail instead of reading out of bounds.
  for (const std::size_t cut :
       {std::size_t{0}, blob.size() / 3, blob.size() - 1}) {
    BinReader r(std::string_view(blob).substr(0, cut));
    CompiledCircuit out;
    EXPECT_FALSE(CompiledCircuit::Deserialize(&r, &out).ok())
        << "cut " << cut;
  }

  // Structural validation: a node whose child range points past the
  // child array must be rejected, not dereferenced.
  CompiledCircuit bogus;
  CircuitNode node;
  node.kind = CircuitNodeKind::kProduct;
  node.first = 0;
  node.count = 3;
  bogus.nodes.push_back(node);
  bogus.root = 0;
  std::string bad;
  BinWriter bw(&bad);
  bogus.Serialize(&bw);
  BinReader br(bad);
  CompiledCircuit out;
  EXPECT_FALSE(CompiledCircuit::Deserialize(&br, &out).ok());
}

// ------------------------------------------------------------------ //
// ADPLL scratch reuse
// ------------------------------------------------------------------ //

TEST(AdpllScratchTest, ReusedScratchIsBitIdenticalToPerCallBuffers) {
  AdpllScratch scratch;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const CompileCase c = MakeCompileCase(seed);
    for (const std::size_t object : c.objects) {
      const Condition& condition = c.ctable.condition(object);
      const auto bare = AdpllProbability(condition, c.dists);
      const auto reused =
          AdpllProbability(condition, c.dists, {}, nullptr, &scratch);
      ASSERT_TRUE(bare.ok());
      ASSERT_TRUE(reused.ok());
      EXPECT_EQ(bare.value(), reused.value())
          << "seed " << seed << " object " << object;
    }
  }

  // The star instance exercises the plan/table buffers; the partial
  // solver accepts the same scratch.
  const AdversarialInstance star = MakeDeepChainInstance(3, 4);
  const auto bare = AdpllProbability(star.condition, star.dists);
  const auto reused =
      AdpllProbability(star.condition, star.dists, {}, nullptr, &scratch);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(bare.value(), reused.value());
  const auto partial = AdpllPartialProbability(star.condition, star.dists,
                                               {}, nullptr, nullptr, &scratch);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->lo, bare.value());
  EXPECT_TRUE(partial->exact());
}

// ------------------------------------------------------------------ //
// Evaluator: the compiled round loop
// ------------------------------------------------------------------ //

TEST(EvaluatorCompileTest, RoundLoopReplaysCompiledArtifacts) {
  const CompileCase c = MakeCompileCase(3);
  ASSERT_FALSE(c.objects.empty());

  auto run = [&](CompileMode mode, std::uint64_t* adpll_calls) {
    ProbabilityOptions options;
    options.compile.mode = mode;
    ProbabilityEvaluator evaluator(options);
    for (const CellRef& var : c.ctable.AllVariables()) {
      auto dist = c.dists.Get(var);
      BAYESCROWD_CHECK_OK(dist.status());
      BAYESCROWD_CHECK_OK(
          evaluator.SetDistribution(var, std::move(dist).value()));
    }
    std::vector<double> all;
    auto first = evaluator.EvaluateAll(c.ctable, c.objects);
    BAYESCROWD_CHECK_OK(first.status());
    all.insert(all.end(), first->begin(), first->end());
    // Fold "crowd answers": re-condition every posterior, three rounds.
    Rng rng(0xF00D);
    for (int round = 0; round < 3; ++round) {
      for (const CellRef& var : c.ctable.AllVariables()) {
        BAYESCROWD_CHECK_OK(
            evaluator.SetDistribution(var, RandomDist(kLevels, rng)));
      }
      auto next = evaluator.EvaluateAll(c.ctable, c.objects);
      BAYESCROWD_CHECK_OK(next.status());
      all.insert(all.end(), next->begin(), next->end());
    }
    if (mode == CompileMode::kOff) {
      EXPECT_EQ(evaluator.compile_stats().builds, 0u);
      EXPECT_EQ(evaluator.CircuitCount(), 0u);
    } else {
      EXPECT_GT(evaluator.compile_stats().builds, 0u);
      EXPECT_GT(evaluator.compile_stats().reuses, 0u);
      EXPECT_GT(evaluator.CircuitCount(), 0u);
    }
    *adpll_calls = evaluator.adpll_stats().calls;
    return all;
  };

  std::uint64_t calls_off = 0, calls_on = 0;
  const std::vector<double> off = run(CompileMode::kOff, &calls_off);
  const std::vector<double> on = run(CompileMode::kAuto, &calls_on);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "slot " << i;
  }
  // The point of the artifact: replay rounds never re-enter the search.
  EXPECT_LT(calls_on, calls_off);
}

TEST(EvaluatorCompileTest, CompileRefusalFallsBackAndNeverRetries) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  ProbabilityOptions options;
  options.compile.mode = CompileMode::kAuto;
  options.compile.max_nodes = 256;
  ProbabilityEvaluator evaluator(options);
  evaluator.distributions() = inst.dists;

  const auto p = evaluator.Probability(inst.condition);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), inst.exact_probability, 1e-9);
  EXPECT_EQ(evaluator.compile_stats().builds, 0u);
  EXPECT_EQ(evaluator.compile_stats().fallbacks, 1u);
  EXPECT_EQ(evaluator.CircuitCount(), 0u);

  // The refusal is remembered: the next miss goes straight to ADPLL
  // instead of re-attempting an oversized compile.
  evaluator.InvalidateVariable(CellRef{0, 0});
  const auto q = evaluator.Probability(inst.condition);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(p.value(), q.value());
  EXPECT_EQ(evaluator.compile_stats().fallbacks, 1u);
  EXPECT_EQ(evaluator.cache_stats().misses, 2u);
}

TEST(EvaluatorCompileTest, GovernedReplayKeepsGradesAndBudgetsSound) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);

  // A biting budget degrades before anything is exact, so there is
  // nothing to compile — and nothing compiled to smuggle an exact
  // answer into the degraded tier.
  {
    ProbabilityOptions options;
    options.compile.mode = CompileMode::kAuto;
    options.governor.max_nodes = 32;
    options.governor.ladder = LadderMode::kFull;
    ProbabilityEvaluator evaluator(options);
    evaluator.distributions() = inst.dists;
    const auto r = evaluator.ProbabilityInterval(inst.condition);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->exact());
    EXPECT_LE(r->lo, inst.exact_probability + 1e-9);
    EXPECT_GE(r->hi, inst.exact_probability - 1e-9);
    EXPECT_EQ(evaluator.compile_stats().builds, 0u);
    EXPECT_EQ(evaluator.CircuitCount(), 0u);
    EXPECT_GE(evaluator.solver_stats().budget_exhausted, 1u);
  }

  // An ample governed budget solves exactly, compiles, and a replay
  // ticks the same exact tier the search would have.
  {
    ProbabilityOptions options;
    options.compile.mode = CompileMode::kAuto;
    options.compile.max_nodes = 1ull << 20;
    options.governor.max_nodes = 1ull << 40;
    options.governor.ladder = LadderMode::kFull;
    ProbabilityEvaluator evaluator(options);
    evaluator.distributions() = inst.dists;
    const auto first = evaluator.ProbabilityInterval(inst.condition);
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first->exact());
    EXPECT_EQ(evaluator.compile_stats().builds, 1u);
    EXPECT_EQ(evaluator.solver_stats().tier_exact, 1u);

    evaluator.InvalidateVariable(CellRef{0, 0});
    const auto second = evaluator.ProbabilityInterval(inst.condition);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->exact());
    EXPECT_EQ(second->lo, first->lo);
    EXPECT_EQ(evaluator.compile_stats().reuses, 1u);
    EXPECT_EQ(evaluator.solver_stats().tier_exact, 2u);
  }

  // The strict ladder is ineligible by contract: budget-exhausted
  // evaluations must stay budget-exhausted, so nothing compiles.
  {
    ProbabilityOptions options;
    options.compile.mode = CompileMode::kAuto;
    options.governor.max_nodes = 1ull << 40;
    options.governor.ladder = LadderMode::kStrict;
    ProbabilityEvaluator evaluator(options);
    evaluator.distributions() = inst.dists;
    const auto r = evaluator.ProbabilityInterval(inst.condition);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(evaluator.compile_stats().builds, 0u);
    EXPECT_EQ(evaluator.compile_stats().fallbacks, 0u);
    EXPECT_EQ(evaluator.CircuitCount(), 0u);
  }
}

TEST(EvaluatorCompileTest, GovernorChangeDropsTheArtifactStore) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  ProbabilityOptions options;
  options.compile.mode = CompileMode::kAuto;
  options.compile.max_nodes = 1ull << 20;
  ProbabilityEvaluator evaluator(options);
  evaluator.distributions() = inst.dists;

  ASSERT_TRUE(evaluator.Probability(inst.condition).ok());
  ASSERT_EQ(evaluator.CircuitCount(), 1u);

  // Enable a biting budget on the same evaluator: the store was
  // populated under the inert tag, so the governed evaluation drops it
  // instead of replaying an exact answer the budgeted search could
  // never afford.
  evaluator.options().governor.max_nodes = 8;
  evaluator.options().governor.ladder = LadderMode::kInterval;
  const auto degraded = evaluator.ProbabilityInterval(inst.condition);
  ASSERT_TRUE(degraded.ok());
  EXPECT_FALSE(degraded->exact());
  EXPECT_EQ(evaluator.CircuitCount(), 0u);
  EXPECT_EQ(evaluator.compile_stats().evictions, 1u);
  EXPECT_EQ(evaluator.compile_stats().reuses, 0u);

  // Returning to the inert configuration rebuilds from scratch rather
  // than trusting any stale store.
  evaluator.options().governor = GovernorOptions{};
  const auto exact = evaluator.Probability(inst.condition);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact.value(), inst.exact_probability, 1e-9);
  EXPECT_EQ(evaluator.compile_stats().builds, 2u);
  EXPECT_EQ(evaluator.CircuitCount(), 1u);
}

TEST(EvaluatorCompileTest, CheckpointedArtifactsReplayAfterRestore) {
  const CompileCase c = MakeCompileCase(5);
  ASSERT_FALSE(c.objects.empty());
  ProbabilityOptions options;
  options.compile.mode = CompileMode::kAuto;

  auto setup = [&](ProbabilityEvaluator& evaluator) {
    for (const CellRef& var : c.ctable.AllVariables()) {
      auto dist = c.dists.Get(var);
      BAYESCROWD_CHECK_OK(dist.status());
      BAYESCROWD_CHECK_OK(
          evaluator.SetDistribution(var, std::move(dist).value()));
    }
  };

  ProbabilityEvaluator warm(options);
  setup(warm);
  auto baseline = warm.EvaluateAll(c.ctable, c.objects);
  BAYESCROWD_CHECK_OK(baseline.status());
  ASSERT_GT(warm.CircuitCount(), 0u);
  std::string blob;
  warm.SerializeMemoState(&blob);

  ProbabilityEvaluator resumed(options);
  setup(resumed);
  BinReader reader(blob);
  ASSERT_TRUE(resumed.RestoreMemoState(&reader).ok());
  EXPECT_EQ(resumed.CircuitCount(), warm.CircuitCount());
  EXPECT_EQ(resumed.compile_stats().restored, warm.CircuitCount());

  // The resumed session's next round replays artifacts it never built.
  Rng rng(0xCAFE);
  for (const CellRef& var : c.ctable.AllVariables()) {
    const std::vector<double> dist = RandomDist(kLevels, rng);
    BAYESCROWD_CHECK_OK(warm.SetDistribution(var, dist));
    BAYESCROWD_CHECK_OK(resumed.SetDistribution(var, dist));
  }
  auto next_warm = warm.EvaluateAll(c.ctable, c.objects);
  auto next_resumed = resumed.EvaluateAll(c.ctable, c.objects);
  BAYESCROWD_CHECK_OK(next_warm.status());
  BAYESCROWD_CHECK_OK(next_resumed.status());
  ASSERT_EQ(next_warm->size(), next_resumed->size());
  for (std::size_t i = 0; i < next_warm->size(); ++i) {
    EXPECT_EQ(next_warm.value()[i], next_resumed.value()[i]) << "slot " << i;
  }
  EXPECT_EQ(resumed.compile_stats().builds, 0u);
  EXPECT_GT(resumed.compile_stats().reuses, 0u);
}

}  // namespace
}  // namespace bayescrowd
