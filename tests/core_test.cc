// Tests for the core framework: entropy (Eq. 3), marginal utility
// (Definition 6, validated against the paper's Example 4 numbers), task
// selection strategies, answer application and the full BayesCrowd
// pipeline on the sample dataset.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bayesnet/imputation.h"
#include "core/entropy.h"
#include "core/framework.h"
#include "core/report.h"
#include "core/strategy.h"
#include "core/update.h"
#include "core/utility.h"
#include "crowd/platform.h"
#include "ctable/builder.h"
#include "data/generators.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// Evaluator loaded with the Example 3 marginals.
ProbabilityEvaluator SampleEvaluator() {
  ProbabilityEvaluator evaluator;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : MakeSampleMovieDataset().MissingCells()) {
    BAYESCROWD_CHECK_OK(
        evaluator.distributions().Set(cell, marginals[cell.attribute]));
  }
  return evaluator;
}

CTable SampleCTable() {
  const auto ctable = BuildCTable(MakeSampleMovieDataset(), {.alpha = -1.0});
  BAYESCROWD_CHECK_OK(ctable.status());
  return std::move(ctable).value();
}

// ------------------------------------------------------------------ //
// Entropy
// ------------------------------------------------------------------ //

TEST(EntropyTest, ExtremesAreZero) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.1), 0.0);
}

TEST(EntropyTest, FairCoinIsOne) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
}

TEST(EntropyTest, Symmetric) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.2), BinaryEntropy(0.8));
}

// ------------------------------------------------------------------ //
// Example 4, first iteration: entropies and marginal utilities.
// ------------------------------------------------------------------ //

TEST(Example4Test, InitialEntropiesMatchPaper) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  // H(o2) = H(o3) = 0 (conditions true).
  EXPECT_TRUE(ctable.condition(1).IsTrue());
  EXPECT_TRUE(ctable.condition(2).IsTrue());
  // H(o1) = 0.72, H(o4) = 0.62, H(o5) = 0.67 (paper's rounding).
  const double p1 = evaluator.Probability(ctable.condition(0)).value();
  const double p4 = evaluator.Probability(ctable.condition(3)).value();
  const double p5 = evaluator.Probability(ctable.condition(4)).value();
  EXPECT_NEAR(p1, 0.8, 1e-9);
  EXPECT_NEAR(p4, 0.153, 1e-9);
  EXPECT_NEAR(BinaryEntropy(p1), 0.72, 5e-3);
  EXPECT_NEAR(BinaryEntropy(p4), 0.62, 5e-3);
  EXPECT_NEAR(BinaryEntropy(p5), 0.67, 5e-3);
}

TEST(Example4Test, MarginalUtilitiesMatchPaper) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const Condition& phi1 = ctable.condition(0);
  const double p1 = evaluator.Probability(phi1).value();

  const Expression e1 = Expression::VarConst(V(4, 1), CmpOp::kLess, 2);
  const Expression e2 = Expression::VarConst(V(4, 2), CmpOp::kLess, 3);
  const Expression e3 = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);

  EXPECT_NEAR(MarginalUtility(phi1, p1, e1, evaluator).value(), 0.072,
              2e-3);
  EXPECT_NEAR(MarginalUtility(phi1, p1, e2, evaluator).value(), 0.157,
              2e-3);
  EXPECT_NEAR(MarginalUtility(phi1, p1, e3, evaluator).value(), 0.322,
              2e-3);
}

TEST(Example4Test, FixExpressionSimplifies) {
  CTable ctable = SampleCTable();
  const Expression e3 = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  // φ(o1) with e3=true collapses to true.
  EXPECT_TRUE(FixExpression(ctable.condition(0), e3, true).IsTrue());
  // With e3=false, two expressions remain.
  const Condition c = FixExpression(ctable.condition(0), e3, false);
  ASSERT_FALSE(c.IsDecided());
  EXPECT_EQ(c.NumExpressions(), 2u);
}

// ------------------------------------------------------------------ //
// Example 4, knowledge-base update: the Table 5 state and the
// second-iteration entropies.
// ------------------------------------------------------------------ //

TEST(Example4Test, CTableUpdateMatchesPaperTable5) {
  CTable ctable = SampleCTable();
  KnowledgeBase kb(MakeSampleMovieDataset().schema());
  // Answers of iteration 1: Var(o5,a4) < 4 and Var(o5,a3) = 3.
  ASSERT_TRUE(kb.RestrictLess(V(4, 3), 4).ok());
  ASSERT_TRUE(kb.RestrictEqual(V(4, 2), 3).ok());

  const auto simplify = [&kb](const Condition& c) {
    return c.SimplifyWith(
        [&kb](const Expression& e) { return kb.Evaluate(e); });
  };

  // φ(o1) -> true.
  EXPECT_TRUE(simplify(ctable.condition(0)).IsTrue());
  // φ(o4) -> (Var(o2,a2)<3) & (Var(o5,a2)<3 | Var(o5,a4)<2).
  const Condition phi4 = simplify(ctable.condition(3));
  ASSERT_FALSE(phi4.IsDecided());
  ASSERT_EQ(phi4.conjuncts().size(), 2u);
  EXPECT_EQ(phi4.conjuncts()[0].size(), 1u);
  EXPECT_EQ(phi4.conjuncts()[1].size(), 2u);
  // φ(o5) -> Var(o5,a2) > 2.
  const Condition phi5 = simplify(ctable.condition(4));
  ASSERT_FALSE(phi5.IsDecided());
  ASSERT_EQ(phi5.conjuncts().size(), 1u);
  ASSERT_EQ(phi5.conjuncts()[0].size(), 1u);
  EXPECT_TRUE(phi5.conjuncts()[0][0] ==
              Expression::VarConst(V(4, 1), CmpOp::kGreater, 2));
}

TEST(Example4Test, SecondIterationEntropiesMatchPaper) {
  CTable ctable = SampleCTable();
  const Table table = MakeSampleMovieDataset();
  KnowledgeBase kb(table.schema());
  ASSERT_TRUE(kb.RestrictLess(V(4, 3), 4).ok());
  ASSERT_TRUE(kb.RestrictEqual(V(4, 2), 3).ok());

  // Re-condition distributions as the framework does.
  ProbabilityEvaluator evaluator;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : table.MissingCells()) {
    BAYESCROWD_CHECK_OK(evaluator.distributions().Set(
        cell, kb.ConditionDistribution(cell, marginals[cell.attribute])));
  }
  const auto simplify = [&kb](const Condition& c) {
    return c.SimplifyWith(
        [&kb](const Expression& e) { return kb.Evaluate(e); });
  };

  // Paper: H(o4) = 0.63 and H(o5) = 0.88 in iteration 2.
  const double p4 =
      evaluator.Probability(simplify(ctable.condition(3))).value();
  const double p5 =
      evaluator.Probability(simplify(ctable.condition(4))).value();
  EXPECT_NEAR(BinaryEntropy(p4), 0.63, 5e-3);
  EXPECT_NEAR(BinaryEntropy(p5), 0.88, 5e-3);
}

// ------------------------------------------------------------------ //
// ApplyAnswer
// ------------------------------------------------------------------ //

TEST(ApplyAnswerTest, VarConstAnswersNarrow) {
  const Table table = MakeSampleMovieDataset();
  KnowledgeBase kb(table.schema());
  Task task;
  task.expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  ASSERT_TRUE(ApplyAnswer(task, {Ordering::kLess}, &kb).ok());
  EXPECT_EQ(kb.Bounds(V(4, 3)).second, 3);

  task.expression = Expression::VarConst(V(4, 1), CmpOp::kGreater, 2);
  ASSERT_TRUE(ApplyAnswer(task, {Ordering::kGreater}, &kb).ok());
  EXPECT_EQ(kb.Bounds(V(4, 1)).first, 3);

  task.expression = Expression::VarConst(V(4, 2), CmpOp::kLess, 3);
  ASSERT_TRUE(ApplyAnswer(task, {Ordering::kEqual}, &kb).ok());
  Level pinned = -1;
  EXPECT_TRUE(kb.IsPinned(V(4, 2), &pinned));
  EXPECT_EQ(pinned, 3);
}

TEST(ApplyAnswerTest, VarVarAnswerRecordsOrder) {
  const Table table = MakeSampleMovieDataset();
  KnowledgeBase kb(table.schema());
  Task task;
  task.expression = Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1));
  ASSERT_TRUE(ApplyAnswer(task, {Ordering::kGreater}, &kb).ok());
  EXPECT_EQ(kb.Evaluate(task.expression), Truth::kTrue);
}

TEST(ApplyAnswerTest, ImpossibleAnswerDegradesToPin) {
  const Table table = MakeSampleMovieDataset();
  KnowledgeBase kb(table.schema());
  Task task;
  // "Var(o5,a4) < 4" answered "greater" is possible (5 exists: domain 6).
  // But an erroneous "less" on a bound of 0 pins the variable to 0.
  task.expression = Expression::VarConst(V(4, 3), CmpOp::kGreater, 0);
  ASSERT_TRUE(ApplyAnswer(task, {Ordering::kLess}, &kb).ok());
  Level pinned = -1;
  EXPECT_TRUE(kb.IsPinned(V(4, 3), &pinned));
  EXPECT_EQ(pinned, 0);
}

// ------------------------------------------------------------------ //
// Task selection
// ------------------------------------------------------------------ //

std::vector<ObjectEntropy> RankAll(const CTable& ctable,
                                   ProbabilityEvaluator& evaluator) {
  std::vector<ObjectEntropy> ranked;
  for (std::size_t i : ctable.UndecidedObjects()) {
    ObjectEntropy entry;
    entry.object = i;
    entry.probability = evaluator.Probability(ctable.condition(i)).value();
    entry.entropy = BinaryEntropy(entry.probability);
    ranked.push_back(entry);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ObjectEntropy& a, const ObjectEntropy& b) {
                     return a.entropy > b.entropy;
                   });
  return ranked;
}

TEST(StrategyTest, TopEntropyObjectsChosenFirst) {
  // Paper: iteration 1 picks o1 (H=0.72) and o5 (H=0.67).
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const auto ranked = RankAll(ctable, evaluator);
  ASSERT_GE(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].object, 0u);  // o1
  EXPECT_EQ(ranked[1].object, 4u);  // o5
  EXPECT_EQ(ranked[2].object, 3u);  // o4
}

TEST(StrategyTest, UbsPicksHighestUtilityExpression) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const auto ranked = RankAll(ctable, evaluator);
  StrategyOptions options;
  options.kind = StrategyKind::kUbs;
  const auto tasks = SelectTasks(ctable, ranked, 2, evaluator, options);
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 2u);
  // For o1 the best expression is e3 = Var(o5,a4) < 4 (G = 0.322).
  EXPECT_EQ(tasks.value()[0].source_object, 0u);
  EXPECT_TRUE(tasks.value()[0].expression ==
              Expression::VarConst(V(4, 3), CmpOp::kLess, 4));
}

TEST(StrategyTest, BatchIsConflictFree) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const auto ranked = RankAll(ctable, evaluator);
  for (const StrategyKind kind :
       {StrategyKind::kFbs, StrategyKind::kUbs, StrategyKind::kHhs}) {
    StrategyOptions options;
    options.kind = kind;
    const auto tasks = SelectTasks(ctable, ranked, 3, evaluator, options);
    ASSERT_TRUE(tasks.ok()) << StrategyKindToString(kind);
    for (std::size_t a = 0; a < tasks->size(); ++a) {
      for (std::size_t b = a + 1; b < tasks->size(); ++b) {
        EXPECT_FALSE(TasksConflict(tasks.value()[a], tasks.value()[b]))
            << StrategyKindToString(kind);
      }
    }
  }
}

TEST(StrategyTest, RespectsBatchSizeK) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const auto ranked = RankAll(ctable, evaluator);
  StrategyOptions options;
  options.kind = StrategyKind::kFbs;
  const auto one = SelectTasks(ctable, ranked, 1, evaluator, options);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
  const auto zero = SelectTasks(ctable, ranked, 0, evaluator, options);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
}

TEST(StrategyTest, HhsWithLargeMEqualsUbsChoice) {
  CTable ctable = SampleCTable();
  ProbabilityEvaluator evaluator = SampleEvaluator();
  const auto ranked = RankAll(ctable, evaluator);
  StrategyOptions ubs;
  ubs.kind = StrategyKind::kUbs;
  StrategyOptions hhs;
  hhs.kind = StrategyKind::kHhs;
  hhs.m = 100;  // Effectively exhaustive.
  const auto ubs_tasks = SelectTasks(ctable, ranked, 2, evaluator, ubs);
  const auto hhs_tasks = SelectTasks(ctable, ranked, 2, evaluator, hhs);
  ASSERT_TRUE(ubs_tasks.ok());
  ASSERT_TRUE(hhs_tasks.ok());
  ASSERT_EQ(ubs_tasks->size(), hhs_tasks->size());
  for (std::size_t i = 0; i < ubs_tasks->size(); ++i) {
    EXPECT_TRUE(ubs_tasks.value()[i].expression ==
                hhs_tasks.value()[i].expression);
  }
}

// ------------------------------------------------------------------ //
// Full framework on the sample dataset.
// ------------------------------------------------------------------ //

TEST(FrameworkTest, SampleDatasetPerfectWorkersExactAnswer) {
  const Table incomplete = MakeSampleMovieDataset();
  const Table ground_truth = MakeSampleMovieGroundTruth();

  // Ground-truth skyline: with Var(o2,a2)=4, Var(o5,*) = (3,3,3):
  const auto truth = SkylineBnl(ground_truth);
  ASSERT_TRUE(truth.ok());

  for (const StrategyKind kind :
       {StrategyKind::kFbs, StrategyKind::kUbs, StrategyKind::kHhs}) {
    BayesCrowdOptions options;
    options.ctable.alpha = -1.0;  // No pruning on 5 objects.
    options.strategy.kind = kind;
    options.strategy.m = 2;
    options.budget = 6;
    options.latency = 3;
    BayesCrowd framework(options);

    FixedMarginalsProvider posteriors(SampleMovieDistributions());
    SimulatedCrowdPlatform platform(ground_truth, {});
    const auto result = framework.Run(incomplete, posteriors, platform);
    ASSERT_TRUE(result.ok()) << StrategyKindToString(kind);

    const auto metrics =
        EvaluateResultSet(result->result_objects, truth.value());
    EXPECT_DOUBLE_EQ(metrics.f1, 1.0) << StrategyKindToString(kind);
    EXPECT_LE(result->tasks_posted, 6u);
    EXPECT_LE(result->rounds, 3u);
  }
}

TEST(FrameworkTest, ZeroBudgetAnswersFromModelAlone) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 0;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tasks_posted, 0u);
  EXPECT_EQ(result->rounds, 0u);
  // o2, o3 are certain; o1 (p=0.8) and o5 (p=0.823) pass the 0.5
  // threshold; o4 (p=0.153) does not.
  EXPECT_EQ(result->result_objects,
            (std::vector<std::size_t>{0, 1, 2, 4}));
}

TEST(FrameworkTest, BudgetAndLatencyRespected) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 4;
  options.latency = 2;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tasks_posted, 4u);
  EXPECT_LE(result->rounds, 2u);
  for (const RoundLog& log : result->round_logs) {
    EXPECT_LE(log.tasks, 2u);  // ceil(4/2) per round.
  }
}

TEST(FrameworkTest, InvalidLatencyRejected) {
  BayesCrowdOptions options;
  options.latency = 0;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  EXPECT_FALSE(
      framework.Run(MakeSampleMovieDataset(), posteriors, platform).ok());
}

TEST(FrameworkTest, ResultReportsPhaseStatistics) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 6;
  options.latency = 3;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->initial_true, 2u);       // o2, o3.
  EXPECT_EQ(result->initial_undecided, 3u);  // o1, o4, o5.
  EXPECT_GE(result->total_seconds, 0.0);
  EXPECT_EQ(result->probabilities.size(), 5u);
  EXPECT_DOUBLE_EQ(result->probabilities[1], 1.0);
}


TEST(ReportTest, FormatsSummaryAndDetails) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 6;
  options.latency = 3;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());

  ReportOptions verbose;
  verbose.show_rounds = true;
  verbose.show_conditions = true;
  const std::string report =
      FormatRunReport(*result, incomplete, verbose);
  EXPECT_NE(report.find("BayesCrowd run"), std::string::npos);
  EXPECT_NE(report.find("round 1"), std::string::npos);
  EXPECT_NE(report.find("phi("), std::string::npos);
  EXPECT_NE(report.find("Se7en"), std::string::npos);

  ReportOptions capped;
  capped.max_objects = 1;
  const std::string short_report =
      FormatRunReport(*result, incomplete, capped);
  EXPECT_NE(short_report.find("... and"), std::string::npos);
}

}  // namespace
}  // namespace bayescrowd
