// Tests for the crowd substrate: tasks, conflicts, the simulated
// platform and majority voting.

#include <gtest/gtest.h>

#include <algorithm>

#include "crowd/platform.h"
#include "crowd/task.h"
#include "data/generators.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

TEST(TaskTest, QuestionTextNamesOperands) {
  const Table table = MakeSampleMovieDataset();
  Task task;
  task.expression = Expression::VarConst(V(4, 1), CmpOp::kLess, 2);
  const std::string text = task.QuestionText(table);
  EXPECT_NE(text.find("Star Wars"), std::string::npos);
  EXPECT_NE(text.find("a2"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(TaskTest, ConflictsOnSharedVariable) {
  Task a;
  a.expression = Expression::VarConst(V(4, 1), CmpOp::kLess, 2);
  Task b;
  b.expression = Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1));
  Task c;
  c.expression = Expression::VarConst(V(4, 2), CmpOp::kLess, 3);
  EXPECT_TRUE(TasksConflict(a, b));
  EXPECT_FALSE(TasksConflict(a, c));
  EXPECT_TRUE(ConflictsWithBatch(b, {c, a}));
  EXPECT_FALSE(ConflictsWithBatch(c, {}));
}

TEST(PlatformTest, TrueRelations) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedCrowdPlatform platform(gt, {});
  // Var(o5,a3) = 3 in the ground truth.
  EXPECT_EQ(platform
                .TrueRelation(Expression::VarConst(V(4, 2), CmpOp::kLess, 4))
                .value(),
            Ordering::kLess);
  EXPECT_EQ(platform
                .TrueRelation(
                    Expression::VarConst(V(4, 2), CmpOp::kGreater, 3))
                .value(),
            Ordering::kEqual);
  // Var(o5,a2)=3 vs Var(o2,a2)=4.
  EXPECT_EQ(platform
                .TrueRelation(
                    Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1)))
                .value(),
            Ordering::kLess);
}

TEST(PlatformTest, PerfectWorkersAlwaysReturnTruth) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.worker_accuracy = 1.0;
  SimulatedCrowdPlatform platform(gt, options);
  std::vector<Task> batch(1);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  for (int i = 0; i < 20; ++i) {
    const auto answers = platform.PostBatch(batch);
    ASSERT_TRUE(answers.ok());
    EXPECT_EQ(answers.value()[0].relation, Ordering::kLess);
  }
  EXPECT_EQ(platform.total_tasks(), 20u);
  EXPECT_EQ(platform.total_rounds(), 20u);
}

TEST(PlatformTest, MajorityVotingBeatsSingleWorker) {
  const Table gt = MakeSampleMovieGroundTruth();
  const Expression expr = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  const int trials = 3000;

  const auto accuracy_with_workers = [&](int workers) {
    SimulatedPlatformOptions options;
    options.worker_accuracy = 0.7;
    options.workers_per_task = workers;
    options.seed = 4242;
    SimulatedCrowdPlatform platform(gt, options);
    std::vector<Task> batch(1);
    batch[0].expression = expr;
    int correct = 0;
    for (int i = 0; i < trials; ++i) {
      const auto answers = platform.PostBatch(batch);
      if (answers.ok() && answers.value()[0].relation == Ordering::kLess) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / trials;
  };

  const double single = accuracy_with_workers(1);
  const double majority = accuracy_with_workers(3);
  EXPECT_NEAR(single, 0.7, 0.04);
  EXPECT_GT(majority, single + 0.05);
}

TEST(PlatformTest, AccuracyPoolDrawsMixedWorkers) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.accuracy_pool = {0.55, 0.95};
  options.workers_per_task = 1;
  options.seed = 7;
  SimulatedCrowdPlatform platform(gt, options);
  std::vector<Task> batch(1);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  int correct = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const auto answers = platform.PostBatch(batch);
    ASSERT_TRUE(answers.ok());
    correct += answers.value()[0].relation == Ordering::kLess ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(correct) / trials, 0.75, 0.04);
}

TEST(PlatformTest, BatchAccountingCountsTasksAndRounds) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedCrowdPlatform platform(gt, {});
  std::vector<Task> batch(2);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  batch[1].expression = Expression::VarConst(V(4, 2), CmpOp::kGreater, 2);
  ASSERT_TRUE(platform.PostBatch(batch).ok());
  EXPECT_EQ(platform.total_tasks(), 2u);
  EXPECT_EQ(platform.total_rounds(), 1u);
  EXPECT_FALSE(platform.PostBatch({}).ok());  // Empty batch rejected.
}

TEST(PlatformTest, MissingGroundTruthCellFails) {
  const Table incomplete = MakeSampleMovieDataset();  // Has missing cells.
  SimulatedCrowdPlatform platform(incomplete, {});
  std::vector<Task> batch(1);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  EXPECT_FALSE(platform.PostBatch(batch).ok());
}

}  // namespace
}  // namespace bayescrowd
