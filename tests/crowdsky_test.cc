// Tests for the CrowdSky baseline.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "crowd/platform.h"
#include "crowdsky/crowdsky.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

struct CrowdSkySetup {
  Table complete;
  Table incomplete;
  std::vector<std::size_t> observed;
  std::vector<std::size_t> crowd;
};

CrowdSkySetup MakeSetup(std::size_t n, std::size_t d, std::uint64_t seed) {
  CrowdSkySetup setup;
  setup.complete = MakeCorrelated(n, d, 8, seed);
  // Last two attributes are the crowd attributes (fully missing).
  for (std::size_t j = 0; j + 2 < d; ++j) setup.observed.push_back(j);
  setup.crowd = {d - 2, d - 1};
  setup.incomplete = InjectMissingAttributes(setup.complete, setup.crowd);
  return setup;
}

TEST(CrowdSkyTest, PerfectWorkersRecoverExactSkyline) {
  const CrowdSkySetup setup = MakeSetup(120, 5, 42);
  SimulatedCrowdPlatform platform(setup.complete, {});
  const auto result =
      RunCrowdSky(setup.incomplete, setup.observed, setup.crowd, platform);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto truth = SkylineBnl(setup.complete);
  ASSERT_TRUE(truth.ok());
  const auto metrics = EvaluateResultSet(result->skyline, truth.value());
  EXPECT_DOUBLE_EQ(metrics.f1, 1.0);
  EXPECT_GT(result->tasks_posted, 0u);
  EXPECT_GT(result->rounds, 0u);
}

TEST(CrowdSkyTest, DeterministicAcrossSeedsOfSameData) {
  const CrowdSkySetup setup = MakeSetup(80, 4, 7);
  SimulatedCrowdPlatform p1(setup.complete, {});
  SimulatedCrowdPlatform p2(setup.complete, {});
  const auto r1 =
      RunCrowdSky(setup.incomplete, setup.observed, setup.crowd, p1);
  const auto r2 =
      RunCrowdSky(setup.incomplete, setup.observed, setup.crowd, p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->skyline, r2->skyline);
  EXPECT_EQ(r1->tasks_posted, r2->tasks_posted);
}

TEST(CrowdSkyTest, RoundsRespectTasksPerRound) {
  const CrowdSkySetup setup = MakeSetup(100, 5, 13);
  SimulatedCrowdPlatform platform(setup.complete, {});
  CrowdSkyOptions options;
  options.tasks_per_round = 20;
  const auto result = RunCrowdSky(setup.incomplete, setup.observed,
                                  setup.crowd, platform, options);
  ASSERT_TRUE(result.ok());
  // Each round posts at most tasks_per_round tasks.
  EXPECT_GE(result->rounds * options.tasks_per_round,
            result->tasks_posted);
}

TEST(CrowdSkyTest, NeverBuysTheSameComparisonTwice) {
  const CrowdSkySetup setup = MakeSetup(60, 4, 3);
  SimulatedCrowdPlatform platform(setup.complete, {});
  const auto result =
      RunCrowdSky(setup.incomplete, setup.observed, setup.crowd, platform);
  ASSERT_TRUE(result.ok());
  // Upper bound: one task per (pair, crowd attribute).
  const std::size_t n = setup.incomplete.num_objects();
  EXPECT_LE(result->tasks_posted, n * (n - 1) / 2 * setup.crowd.size());
}

TEST(CrowdSkyTest, ValidatesAttributePartition) {
  const CrowdSkySetup setup = MakeSetup(30, 4, 5);
  SimulatedCrowdPlatform platform(setup.complete, {});
  // Missing coverage.
  EXPECT_FALSE(
      RunCrowdSky(setup.incomplete, {0}, setup.crowd, platform).ok());
  // Crowd attribute that actually has values.
  EXPECT_FALSE(
      RunCrowdSky(setup.incomplete, {0, 1}, {1, 2, 3}, platform).ok());
  // Observed attribute that has missing values.
  EXPECT_FALSE(RunCrowdSky(setup.incomplete, {0, 1, 3}, {2}, platform).ok());
}

TEST(CrowdSkyTest, ImperfectWorkersDegradeGracefully) {
  const CrowdSkySetup setup = MakeSetup(100, 5, 17);
  SimulatedPlatformOptions options;
  options.worker_accuracy = 0.85;
  SimulatedCrowdPlatform platform(setup.complete, options);
  const auto result =
      RunCrowdSky(setup.incomplete, setup.observed, setup.crowd, platform);
  ASSERT_TRUE(result.ok());
  const auto truth = SkylineBnl(setup.complete);
  ASSERT_TRUE(truth.ok());
  const auto metrics = EvaluateResultSet(result->skyline, truth.value());
  EXPECT_GT(metrics.f1, 0.5);  // Still works, just noisier.
}

}  // namespace
}  // namespace bayescrowd
