// Tests for the c-table substrate: expressions, conditions, dominator
// sets and Get-CTable — including the paper's worked examples (Tables 1,
// 3, 4).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "ctable/builder.h"
#include "ctable/condition.h"
#include "ctable/dominator.h"
#include "ctable/expression.h"
#include "ctable/knowledge.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// ------------------------------------------------------------------ //
// Expression
// ------------------------------------------------------------------ //

TEST(ExpressionTest, VariablesOfVarConst) {
  const Expression e = Expression::VarConst(V(4, 1), CmpOp::kLess, 2);
  EXPECT_EQ(e.Variables().size(), 1u);
  EXPECT_TRUE(e.InvolvesVariable(V(4, 1)));
  EXPECT_FALSE(e.InvolvesVariable(V(4, 2)));
}

TEST(ExpressionTest, VariablesOfVarVar) {
  const Expression e = Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1));
  EXPECT_EQ(e.Variables().size(), 2u);
  EXPECT_TRUE(e.InvolvesVariable(V(4, 1)));
  EXPECT_TRUE(e.InvolvesVariable(V(1, 1)));
}

TEST(ExpressionTest, SubstituteDecidesVarConst) {
  const Expression e = Expression::VarConst(V(0, 0), CmpOp::kLess, 3);
  EXPECT_EQ(e.Substitute(V(0, 0), 2).first, Truth::kTrue);
  EXPECT_EQ(e.Substitute(V(0, 0), 3).first, Truth::kFalse);
  EXPECT_EQ(e.Substitute(V(0, 0), 5).first, Truth::kFalse);
}

TEST(ExpressionTest, SubstituteGreater) {
  const Expression e = Expression::VarConst(V(0, 0), CmpOp::kGreater, 3);
  EXPECT_EQ(e.Substitute(V(0, 0), 4).first, Truth::kTrue);
  EXPECT_EQ(e.Substitute(V(0, 0), 3).first, Truth::kFalse);
}

TEST(ExpressionTest, SubstituteUnrelatedVariableKeepsExpression) {
  const Expression e = Expression::VarConst(V(0, 0), CmpOp::kLess, 3);
  const auto [truth, replacement] = e.Substitute(V(1, 1), 2);
  EXPECT_EQ(truth, Truth::kUnknown);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_TRUE(*replacement == e);
}

TEST(ExpressionTest, SubstituteLhsOfVarVarDegradesToVarConst) {
  // Var(0,0) > Var(1,0), set Var(0,0)=3  ->  Var(1,0) < 3.
  const Expression e = Expression::VarVar(V(0, 0), CmpOp::kGreater, V(1, 0));
  const auto [truth, replacement] = e.Substitute(V(0, 0), 3);
  EXPECT_EQ(truth, Truth::kUnknown);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_FALSE(replacement->rhs_is_var);
  EXPECT_TRUE(replacement->lhs == V(1, 0));
  EXPECT_EQ(replacement->op, CmpOp::kLess);
  EXPECT_EQ(replacement->rhs_const, 3);
}

TEST(ExpressionTest, SubstituteRhsOfVarVarDegradesToVarConst) {
  // Var(0,0) > Var(1,0), set Var(1,0)=2  ->  Var(0,0) > 2.
  const Expression e = Expression::VarVar(V(0, 0), CmpOp::kGreater, V(1, 0));
  const auto [truth, replacement] = e.Substitute(V(1, 0), 2);
  EXPECT_EQ(truth, Truth::kUnknown);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_FALSE(replacement->rhs_is_var);
  EXPECT_TRUE(replacement->lhs == V(0, 0));
  EXPECT_EQ(replacement->op, CmpOp::kGreater);
  EXPECT_EQ(replacement->rhs_const, 2);
}

TEST(ExpressionTest, CanonicalizeMirrorsVarVar) {
  const Expression e = Expression::VarVar(V(5, 1), CmpOp::kGreater, V(1, 1));
  const Expression c = Canonicalize(e);
  EXPECT_TRUE(c.lhs == V(1, 1));
  EXPECT_EQ(c.op, CmpOp::kLess);
  EXPECT_TRUE(c.rhs_var == V(5, 1));
  // Logical equality survives canonicalization.
  EXPECT_TRUE(e == c);
  EXPECT_EQ(e.Key(), c.Key());
}

TEST(ExpressionTest, KeysDistinguishDifferentExpressions) {
  const Expression a = Expression::VarConst(V(0, 0), CmpOp::kLess, 3);
  const Expression b = Expression::VarConst(V(0, 0), CmpOp::kLess, 4);
  const Expression c = Expression::VarConst(V(0, 0), CmpOp::kGreater, 3);
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
}

// ------------------------------------------------------------------ //
// Condition
// ------------------------------------------------------------------ //

Condition SampleCondition() {
  // (A<2 | B<3) & (C>1)  with A=Var(0,0), B=Var(0,1), C=Var(1,0).
  return Condition::Cnf({
      {Expression::VarConst(V(0, 0), CmpOp::kLess, 2),
       Expression::VarConst(V(0, 1), CmpOp::kLess, 3)},
      {Expression::VarConst(V(1, 0), CmpOp::kGreater, 1)},
  });
}

TEST(ConditionTest, ConstantsAreDecided) {
  EXPECT_TRUE(Condition::True().IsTrue());
  EXPECT_TRUE(Condition::False().IsFalse());
  EXPECT_TRUE(Condition::True().IsDecided());
}

TEST(ConditionTest, EmptyCnfIsTrue) {
  EXPECT_TRUE(Condition::Cnf({}).IsTrue());
}

TEST(ConditionTest, EmptyConjunctIsFalse) {
  EXPECT_TRUE(Condition::Cnf({{}}).IsFalse());
}

TEST(ConditionTest, CountsVariablesAndExpressions) {
  const Condition c = SampleCondition();
  EXPECT_EQ(c.NumExpressions(), 3u);
  EXPECT_EQ(c.Variables().size(), 3u);
}

TEST(ConditionTest, IndependentConjunctsDetected) {
  EXPECT_TRUE(SampleCondition().ConjunctsAreIndependent());
  const Condition shared = Condition::Cnf({
      {Expression::VarConst(V(0, 0), CmpOp::kLess, 2)},
      {Expression::VarConst(V(0, 0), CmpOp::kGreater, 0)},
  });
  EXPECT_FALSE(shared.ConjunctsAreIndependent());
}

TEST(ConditionTest, ConjunctComponents) {
  // Conjuncts 0 and 1 share Var(0,0); conjunct 2 is separate.
  const Condition c = Condition::Cnf({
      {Expression::VarConst(V(0, 0), CmpOp::kLess, 2)},
      {Expression::VarConst(V(0, 0), CmpOp::kGreater, 0),
       Expression::VarConst(V(0, 1), CmpOp::kLess, 1)},
      {Expression::VarConst(V(2, 2), CmpOp::kGreater, 3)},
  });
  auto components = c.ConjunctComponents();
  ASSERT_EQ(components.size(), 2u);
  std::size_t sizes[2] = {components[0].size(), components[1].size()};
  std::sort(sizes, sizes + 2);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(ConditionTest, MostFrequentVariable) {
  const Condition c = Condition::Cnf({
      {Expression::VarConst(V(0, 0), CmpOp::kLess, 2),
       Expression::VarConst(V(0, 1), CmpOp::kLess, 3)},
      {Expression::VarConst(V(0, 0), CmpOp::kGreater, 0)},
  });
  EXPECT_TRUE(c.MostFrequentVariable() == V(0, 0));
}

TEST(ConditionTest, SubstituteSatisfiesConjunct) {
  // Setting C=2 satisfies the second conjunct of SampleCondition.
  const Condition after = SampleCondition().SubstituteVariable(V(1, 0), 2);
  ASSERT_FALSE(after.IsDecided());
  EXPECT_EQ(after.conjuncts().size(), 1u);
}

TEST(ConditionTest, SubstituteFalsifiesCondition) {
  // Setting C=1 falsifies the singleton conjunct (C>1).
  const Condition after = SampleCondition().SubstituteVariable(V(1, 0), 1);
  EXPECT_TRUE(after.IsFalse());
}

TEST(ConditionTest, SubstituteToTrue) {
  Condition c = SampleCondition();
  c = c.SubstituteVariable(V(0, 0), 0);  // A<2 true: first conjunct gone.
  c = c.SubstituteVariable(V(1, 0), 3);  // C>1 true: second gone.
  EXPECT_TRUE(c.IsTrue());
}

TEST(ConditionTest, SimplifyWithOracle) {
  const Expression target = Expression::VarConst(V(1, 0), CmpOp::kGreater, 1);
  const Condition after =
      SampleCondition().SimplifyWith([&target](const Expression& e) {
        return (e == target) ? Truth::kTrue : Truth::kUnknown;
      });
  ASSERT_FALSE(after.IsDecided());
  EXPECT_EQ(after.conjuncts().size(), 1u);
  EXPECT_EQ(after.NumExpressions(), 2u);
}

TEST(ConditionTest, SimplifyDropsFalseExpressions) {
  const Expression target = Expression::VarConst(V(0, 0), CmpOp::kLess, 2);
  const Condition after =
      SampleCondition().SimplifyWith([&target](const Expression& e) {
        return (e == target) ? Truth::kFalse : Truth::kUnknown;
      });
  ASSERT_FALSE(after.IsDecided());
  EXPECT_EQ(after.NumExpressions(), 2u);  // B<3 and C>1 remain.
}


TEST(ConditionTest, SubstituteOnDecidedConditionIsIdentity) {
  EXPECT_TRUE(Condition::True().SubstituteVariable(V(0, 0), 1).IsTrue());
  EXPECT_TRUE(Condition::False().SubstituteVariable(V(0, 0), 1).IsFalse());
  EXPECT_TRUE(Condition::True()
                  .SimplifyWith([](const Expression&) {
                    return Truth::kFalse;  // Must be ignored.
                  })
                  .IsTrue());
}

TEST(ConditionTest, VariableFrequencyCounts) {
  const Condition c = Condition::Cnf({
      {Expression::VarConst(V(0, 0), CmpOp::kLess, 2),
       Expression::VarVar(V(0, 0), CmpOp::kGreater, V(1, 0))},
      {Expression::VarConst(V(0, 0), CmpOp::kGreater, 0)},
  });
  EXPECT_EQ(c.VariableFrequency(V(0, 0)), 3u);
  EXPECT_EQ(c.VariableFrequency(V(1, 0)), 1u);
  EXPECT_EQ(c.VariableFrequency(V(9, 9)), 0u);
}

TEST(ConditionTest, PackedKeysMatchStringKeys) {
  // Two expressions share a PackedKey iff they share a Key.
  Rng rng(808);
  std::vector<Expression> pool;
  for (int i = 0; i < 40; ++i) {
    const CellRef a = {rng.NextBelow(3), rng.NextBelow(2)};
    CellRef b = {rng.NextBelow(3), rng.NextBelow(2)};
    const CmpOp op = rng.NextBool(0.5) ? CmpOp::kGreater : CmpOp::kLess;
    if (rng.NextBool(0.5) && !(a == b)) {
      pool.push_back(Expression::VarVar(a, op, b));
    } else {
      pool.push_back(Expression::VarConst(
          a, op, static_cast<Level>(rng.NextBelow(4))));
    }
  }
  for (const Expression& x : pool) {
    for (const Expression& y : pool) {
      EXPECT_EQ(x.Key() == y.Key(), x.PackedKey() == y.PackedKey())
          << x.Key() << " vs " << y.Key();
    }
  }
}

// ------------------------------------------------------------------ //
// Dominator sets: the paper's Table 4.
// ------------------------------------------------------------------ //

TEST(DominatorTest, SampleDatasetMatchesPaperTable4) {
  const Table table = MakeSampleMovieDataset();
  const auto result = ComputeDominatorSets(table, /*alpha=*/-1.0);
  ASSERT_TRUE(result.ok());
  const DominatorSets& sets = result.value();
  EXPECT_EQ(sets.dominators[0], (std::vector<std::uint32_t>{4}));  // {o5}
  EXPECT_TRUE(sets.dominators[1].empty());                         // ∅
  EXPECT_TRUE(sets.dominators[2].empty());                         // ∅
  EXPECT_EQ(sets.dominators[3], (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(sets.dominators[4], (std::vector<std::uint32_t>{0, 1}));
}

TEST(DominatorTest, BaselineAgreesWithFastOnSampleDataset) {
  const Table table = MakeSampleMovieDataset();
  const auto fast = ComputeDominatorSets(table, -1.0);
  const auto base = ComputeDominatorSetsBaseline(table, -1.0);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(fast->dominators, base->dominators);
}

TEST(DominatorTest, FastEqualsBaselineOnRandomIncompleteData) {
  Rng rng(2024);
  for (int round = 0; round < 10; ++round) {
    const Table complete =
        MakeIndependent(60, 4, 6, /*seed=*/1000 + round);
    Rng inject_rng(round);
    const Table table = InjectMissingUniform(complete, 0.2, inject_rng);
    const auto fast = ComputeDominatorSets(table, -1.0);
    const auto base = ComputeDominatorSetsBaseline(table, -1.0);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(base.ok());
    EXPECT_EQ(fast->dominators, base->dominators) << "round " << round;
  }
}

TEST(DominatorTest, PruningFlagsLargeSets) {
  // alpha=0: any non-empty dominator set is pruned.
  const Table table = MakeSampleMovieDataset();
  const auto result = ComputeDominatorSets(table, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pruned[0]);
  EXPECT_FALSE(result->pruned[1]);
  EXPECT_FALSE(result->pruned[2]);
  EXPECT_TRUE(result->pruned[3]);
  EXPECT_TRUE(result->pruned[4]);
}

// ------------------------------------------------------------------ //
// Get-CTable: the paper's Table 3.
// ------------------------------------------------------------------ //

TEST(BuilderTest, SampleDatasetMatchesPaperTable3) {
  const Table table = MakeSampleMovieDataset();
  const auto result = BuildCTable(table, {.alpha = -1.0});
  ASSERT_TRUE(result.ok());
  const CTable& ctable = result.value();

  // φ(o2) = φ(o3) = true.
  EXPECT_TRUE(ctable.condition(1).IsTrue());
  EXPECT_TRUE(ctable.condition(2).IsTrue());

  // φ(o1) = Var(o5,a2)<2 | Var(o5,a3)<3 | Var(o5,a4)<4.
  const Condition& phi1 = ctable.condition(0);
  ASSERT_EQ(phi1.conjuncts().size(), 1u);
  const Conjunct expected1 = {
      Expression::VarConst(V(4, 1), CmpOp::kLess, 2),
      Expression::VarConst(V(4, 2), CmpOp::kLess, 3),
      Expression::VarConst(V(4, 3), CmpOp::kLess, 4),
  };
  ASSERT_EQ(phi1.conjuncts()[0].size(), expected1.size());
  for (std::size_t i = 0; i < expected1.size(); ++i) {
    EXPECT_TRUE(phi1.conjuncts()[0][i] == expected1[i]) << i;
  }

  // φ(o4) = (Var(o2,a2)<3) & (Var(o5,a2)<3 | Var(o5,a3)<1 | Var(o5,a4)<2).
  const Condition& phi4 = ctable.condition(3);
  ASSERT_EQ(phi4.conjuncts().size(), 2u);
  EXPECT_EQ(phi4.conjuncts()[0].size(), 1u);
  EXPECT_TRUE(phi4.conjuncts()[0][0] ==
              Expression::VarConst(V(1, 1), CmpOp::kLess, 3));
  EXPECT_EQ(phi4.conjuncts()[1].size(), 3u);

  // φ(o5) = (Var(o5,a2)>2 | Var(o5,a3)>3 | Var(o5,a4)>4)
  //       & (Var(o5,a2)>Var(o2,a2) | Var(o5,a3)>2 | Var(o5,a4)>2).
  const Condition& phi5 = ctable.condition(4);
  ASSERT_EQ(phi5.conjuncts().size(), 2u);
  EXPECT_EQ(phi5.conjuncts()[0].size(), 3u);
  EXPECT_TRUE(phi5.conjuncts()[0][0] ==
              Expression::VarConst(V(4, 1), CmpOp::kGreater, 2));
  EXPECT_EQ(phi5.conjuncts()[1].size(), 3u);
  EXPECT_TRUE(phi5.conjuncts()[1][0] ==
              Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1)));
}

TEST(BuilderTest, CompleteDominatedObjectGetsFalse) {
  Schema schema;
  schema.AddAttribute("a", 10);
  schema.AddAttribute("b", 10);
  Table table(schema);
  ASSERT_TRUE(table.AppendRow("low", {1, 1}).ok());
  ASSERT_TRUE(table.AppendRow("high", {5, 5}).ok());
  const auto result = BuildCTable(table, {.alpha = -1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition(0).IsFalse());
  EXPECT_TRUE(result->condition(1).IsTrue());
}

TEST(BuilderTest, AlphaPruningProducesFalse) {
  const Table table = MakeSampleMovieDataset();
  const auto result = BuildCTable(table, {.alpha = 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition(0).IsFalse());
  EXPECT_TRUE(result->condition(1).IsTrue());
  EXPECT_TRUE(result->condition(3).IsFalse());
}

TEST(BuilderTest, FastAndBaselinePathsAgree) {
  Rng rng(7);
  const Table complete = MakeCorrelated(80, 5, 8, 99);
  const Table table = InjectMissingUniform(complete, 0.15, rng);
  const auto fast = BuildCTable(table, {.alpha = 0.2, .use_fast_dominators = true});
  const auto base =
      BuildCTable(table, {.alpha = 0.2, .use_fast_dominators = false});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(base.ok());
  for (std::size_t i = 0; i < table.num_objects(); ++i) {
    EXPECT_TRUE(fast->condition(i) == base->condition(i)) << "object " << i;
  }
}

// ------------------------------------------------------------------ //
// KnowledgeBase
// ------------------------------------------------------------------ //

class KnowledgeTest : public ::testing::Test {
 protected:
  KnowledgeTest() : schema_(MakeSampleMovieDataset().schema()), kb_(schema_) {}

  Schema schema_;
  KnowledgeBase kb_;
};

TEST_F(KnowledgeTest, DefaultBoundsSpanDomain) {
  const auto [lo, hi] = kb_.Bounds(V(4, 1));
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 9);
  EXPECT_FALSE(kb_.IsPinned(V(4, 1)));
}

TEST_F(KnowledgeTest, RestrictLessNarrowsUpperBound) {
  ASSERT_TRUE(kb_.RestrictLess(V(4, 3), 4).ok());
  const auto [lo, hi] = kb_.Bounds(V(4, 3));
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 3);
}

TEST_F(KnowledgeTest, RestrictEqualPins) {
  ASSERT_TRUE(kb_.RestrictEqual(V(4, 2), 3).ok());
  Level value = -1;
  EXPECT_TRUE(kb_.IsPinned(V(4, 2), &value));
  EXPECT_EQ(value, 3);
}

TEST_F(KnowledgeTest, ImpossibleRestrictionsRejected) {
  EXPECT_FALSE(kb_.RestrictLess(V(0, 0), 0).ok());
  EXPECT_FALSE(kb_.RestrictGreater(V(0, 0), 9).ok());
  EXPECT_FALSE(kb_.RestrictEqual(V(0, 0), 10).ok());
}

TEST_F(KnowledgeTest, ConflictResolvedNewestWins) {
  ASSERT_TRUE(kb_.RestrictGreater(V(0, 0), 5).ok());  // [6, 9]
  ASSERT_TRUE(kb_.RestrictLess(V(0, 0), 3).ok());     // Conflicts.
  const auto [lo, hi] = kb_.Bounds(V(0, 0));
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 2);  // Newest fact kept.
}

TEST_F(KnowledgeTest, EvaluateVarConstAgainstInterval) {
  ASSERT_TRUE(kb_.RestrictEqual(V(4, 2), 3).ok());
  // Paper Example 4: Var(o5,a3)=3 decides <1 (false), >2 (true), >3
  // (false) at once.
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 2), CmpOp::kLess, 1)),
            Truth::kFalse);
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 2), CmpOp::kGreater, 2)),
            Truth::kTrue);
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 2), CmpOp::kGreater, 3)),
            Truth::kFalse);
}

TEST_F(KnowledgeTest, EvaluatePartialIntervalIsUnknown) {
  ASSERT_TRUE(kb_.RestrictLess(V(4, 3), 4).ok());  // [0, 3]
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 3), CmpOp::kLess, 4)),
            Truth::kTrue);
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 3), CmpOp::kLess, 2)),
            Truth::kUnknown);
  EXPECT_EQ(kb_.Evaluate(Expression::VarConst(V(4, 3), CmpOp::kGreater, 3)),
            Truth::kFalse);
}

TEST_F(KnowledgeTest, EvaluateVarVarFromOrderFact) {
  ASSERT_TRUE(kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kGreater).ok());
  EXPECT_EQ(kb_.Evaluate(Expression::VarVar(V(4, 1), CmpOp::kGreater,
                                            V(1, 1))),
            Truth::kTrue);
  EXPECT_EQ(kb_.Evaluate(Expression::VarVar(V(1, 1), CmpOp::kGreater,
                                            V(4, 1))),
            Truth::kFalse);
  EXPECT_EQ(kb_.Evaluate(Expression::VarVar(V(1, 1), CmpOp::kLess, V(4, 1))),
            Truth::kTrue);
}

TEST_F(KnowledgeTest, EvaluateVarVarFromDisjointIntervals) {
  ASSERT_TRUE(kb_.RestrictGreater(V(0, 0), 5).ok());  // [6, 9]
  ASSERT_TRUE(kb_.RestrictLess(V(1, 0), 4).ok());     // [0, 3]
  EXPECT_EQ(kb_.Evaluate(Expression::VarVar(V(0, 0), CmpOp::kGreater,
                                            V(1, 0))),
            Truth::kTrue);
}

TEST_F(KnowledgeTest, ReRecordingSameOrderIsIdempotent) {
  ASSERT_TRUE(kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kGreater).ok());
  EXPECT_TRUE(kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kGreater).ok());
  // The mirrored statement of the same fact is also idempotent.
  EXPECT_TRUE(kb_.RecordVarOrder(V(1, 1), V(4, 1), Ordering::kLess).ok());
  EXPECT_EQ(kb_.num_order_facts(), 1u);
}

TEST_F(KnowledgeTest, ContradictoryOrderRejectedAndStoredFactKept) {
  ASSERT_TRUE(kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kGreater).ok());
  const Status direct =
      kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kLess);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.IsInvalidArgument());
  // The framework arbitrates on this exact prefix (counts the conflict
  // and keeps going instead of aborting the query).
  EXPECT_EQ(direct.message().rfind("contradictory var-var fact", 0), 0u)
      << direct.message();

  // The mirrored contradiction (b > a after a > b) is caught too.
  const Status mirrored =
      kb_.RecordVarOrder(V(1, 1), V(4, 1), Ordering::kGreater);
  ASSERT_FALSE(mirrored.ok());
  EXPECT_TRUE(mirrored.IsInvalidArgument());

  const Status equal = kb_.RecordVarOrder(V(4, 1), V(1, 1), Ordering::kEqual);
  ASSERT_FALSE(equal.ok());
  EXPECT_TRUE(equal.IsInvalidArgument());

  // Stored fact survives every rejected update.
  EXPECT_EQ(kb_.num_order_facts(), 1u);
  EXPECT_EQ(kb_.Evaluate(Expression::VarVar(V(4, 1), CmpOp::kGreater,
                                            V(1, 1))),
            Truth::kTrue);
}

TEST_F(KnowledgeTest, ConditionDistributionRenormalizes) {
  ASSERT_TRUE(kb_.RestrictLess(V(4, 3), 4).ok());  // a4 in [0,3]
  const std::vector<double> raw = {0.1, 0.1, 0.2, 0.2, 0.3, 0.1};
  const auto conditioned = kb_.ConditionDistribution(V(4, 3), raw);
  ASSERT_EQ(conditioned.size(), raw.size());
  EXPECT_DOUBLE_EQ(conditioned[4], 0.0);
  EXPECT_DOUBLE_EQ(conditioned[5], 0.0);
  double total = 0.0;
  for (double p : conditioned) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(conditioned[2], 0.2 / 0.6, 1e-12);
}

}  // namespace
}  // namespace bayescrowd
