// Tests for the data substrate: schema, tables, missing injection,
// discretization, generators and CSV persistence.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/csv.h"
#include "common/random.h"
#include "data/dataset_io.h"
#include "data/discretizer.h"
#include "data/generators.h"
#include "data/missing.h"
#include "data/schema.h"
#include "data/table.h"

namespace bayescrowd {
namespace {

Schema TwoAttrSchema() {
  Schema s;
  s.AddAttribute("a", 5);
  s.AddAttribute("b", 3);
  return s;
}

TEST(SchemaTest, LookupByName) {
  const Schema s = TwoAttrSchema();
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.AttributeIndex("b"), 1);
  EXPECT_EQ(s.AttributeIndex("zzz"), -1);
  EXPECT_EQ(s.domain_size(0), 5);
}

TEST(TableTest, AppendValidatesWidthAndDomain) {
  Table t(TwoAttrSchema());
  EXPECT_TRUE(t.AppendRow("ok", {4, 2}).ok());
  EXPECT_FALSE(t.AppendRow("short", {1}).ok());
  EXPECT_FALSE(t.AppendRow("oob", {5, 0}).ok());
  EXPECT_FALSE(t.AppendRow("neg", {-2, 0}).ok());
  EXPECT_TRUE(t.AppendRow("missing", {kMissingLevel, 1}).ok());
  EXPECT_EQ(t.num_objects(), 2u);
}

TEST(TableTest, MissingAccounting) {
  Table t(TwoAttrSchema());
  ASSERT_TRUE(t.AppendRow("r1", {1, kMissingLevel}).ok());
  ASSERT_TRUE(t.AppendRow("r2", {kMissingLevel, 2}).ok());
  ASSERT_TRUE(t.AppendRow("r3", {0, 0}).ok());
  EXPECT_FALSE(t.IsComplete());
  EXPECT_TRUE(t.IsRowComplete(2));
  EXPECT_FALSE(t.IsRowComplete(0));
  EXPECT_NEAR(t.MissingRate(), 2.0 / 6.0, 1e-12);
  const auto cells = t.MissingCells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], (CellRef{0, 1}));
  EXPECT_EQ(cells[1], (CellRef{1, 0}));
}

TEST(TableTest, PrefixCopiesLeadingRows) {
  Table t(TwoAttrSchema());
  ASSERT_TRUE(t.AppendRow("r1", {1, 1}).ok());
  ASSERT_TRUE(t.AppendRow("r2", {2, 2}).ok());
  ASSERT_TRUE(t.AppendRow("r3", {3, 0}).ok());
  const Table p = t.Prefix(2);
  EXPECT_EQ(p.num_objects(), 2u);
  EXPECT_EQ(p.At(1, 0), 2);
  EXPECT_EQ(p.object_name(1), "r2");
  EXPECT_EQ(t.Prefix(99).num_objects(), 3u);
}

TEST(MissingTest, UniformInjectionHitsExactRate) {
  const Table complete = MakeIndependent(100, 5, 8, 1);
  Rng rng(2);
  const Table injected = InjectMissingUniform(complete, 0.1, rng);
  EXPECT_NEAR(injected.MissingRate(), 0.1, 1e-9);
  EXPECT_EQ(injected.MissingCells().size(), 50u);
}

TEST(MissingTest, ZeroAndFullRates) {
  const Table complete = MakeIndependent(20, 3, 4, 3);
  Rng rng(4);
  EXPECT_TRUE(InjectMissingUniform(complete, 0.0, rng).IsComplete());
  const Table all = InjectMissingUniform(complete, 1.0, rng);
  EXPECT_EQ(all.MissingCells().size(), 60u);
}

TEST(MissingTest, AttributeInjectionBlanksColumns) {
  const Table complete = MakeIndependent(10, 4, 5, 5);
  const Table injected = InjectMissingAttributes(complete, {1, 3});
  for (std::size_t i = 0; i < injected.num_objects(); ++i) {
    EXPECT_TRUE(injected.IsMissing(i, 1));
    EXPECT_TRUE(injected.IsMissing(i, 3));
    EXPECT_FALSE(injected.IsMissing(i, 0));
    EXPECT_FALSE(injected.IsMissing(i, 2));
  }
}

TEST(DiscretizerTest, EqualWidthEdges) {
  const std::vector<std::vector<double>> cols = {{0.0, 10.0, 5.0, 2.5}};
  const auto disc = Discretizer::Fit(cols, 4, BinningMethod::kEqualWidth);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->Map(0, 0.0), 0);
  EXPECT_EQ(disc->Map(0, 2.6), 1);
  EXPECT_EQ(disc->Map(0, 5.1), 2);
  EXPECT_EQ(disc->Map(0, 10.0), 3);
  EXPECT_EQ(disc->Map(0, 999.0), 3);   // Clamped.
  EXPECT_EQ(disc->Map(0, -999.0), 0);  // Clamped.
}

TEST(DiscretizerTest, EqualFrequencyBalances) {
  std::vector<double> col(1000);
  for (std::size_t i = 0; i < col.size(); ++i) {
    col[i] = static_cast<double>(i * i);  // Skewed.
  }
  const auto table = Discretizer::DiscretizeTable(
      {"x"}, {col}, 10, BinningMethod::kEqualFrequency);
  ASSERT_TRUE(table.ok());
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < table->num_objects(); ++i) {
    counts[static_cast<std::size_t>(table->At(i, 0))] += 1;
  }
  for (int c : counts) EXPECT_NEAR(c, 100, 15);
}

TEST(DiscretizerTest, RejectsBadInput) {
  EXPECT_FALSE(Discretizer::Fit({{1.0}}, 1, BinningMethod::kEqualWidth).ok());
  EXPECT_FALSE(Discretizer::Fit({{}}, 4, BinningMethod::kEqualWidth).ok());
  EXPECT_FALSE(
      Discretizer::Fit({{std::nan("")}}, 4, BinningMethod::kEqualWidth).ok());
}

TEST(GeneratorsTest, SampleMovieDatasetMatchesPaperTable1) {
  const Table t = MakeSampleMovieDataset();
  EXPECT_EQ(t.num_objects(), 5u);
  EXPECT_EQ(t.num_attributes(), 5u);
  EXPECT_EQ(t.At(0, 0), 5);
  EXPECT_EQ(t.At(1, 0), 6);
  EXPECT_TRUE(t.IsMissing(1, 1));
  EXPECT_TRUE(t.IsMissing(2, 2));
  EXPECT_TRUE(t.IsMissing(4, 1));
  EXPECT_TRUE(t.IsMissing(4, 2));
  EXPECT_TRUE(t.IsMissing(4, 3));
  EXPECT_EQ(t.MissingCells().size(), 5u);
  EXPECT_EQ(t.object_name(4), "Star Wars");
}

TEST(GeneratorsTest, GroundTruthIsCompleteAndConsistent) {
  const Table gt = MakeSampleMovieGroundTruth();
  EXPECT_TRUE(gt.IsComplete());
  // Consistent with Example 4's crowd answers.
  EXPECT_GT(gt.At(1, 1), 3);
  EXPECT_GT(gt.At(4, 1), 2);
  EXPECT_EQ(gt.At(4, 2), 3);
  EXPECT_LT(gt.At(4, 3), 4);
  // Observed cells unchanged.
  const Table sample = MakeSampleMovieDataset();
  for (std::size_t i = 0; i < sample.num_objects(); ++i) {
    for (std::size_t j = 0; j < sample.num_attributes(); ++j) {
      if (!sample.IsMissing(i, j)) {
        EXPECT_EQ(gt.At(i, j), sample.At(i, j));
      }
    }
  }
}

TEST(GeneratorsTest, SampleDistributionsNormalized) {
  for (const auto& dist : SampleMovieDistributions()) {
    double total = 0.0;
    for (double p : dist) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(GeneratorsTest, NbaLikeShapeAndDeterminism) {
  const Table a = MakeNbaLike(500, 42);
  EXPECT_EQ(a.num_objects(), 500u);
  EXPECT_EQ(a.num_attributes(), 11u);
  EXPECT_TRUE(a.IsComplete());
  const Table b = MakeNbaLike(500, 42);
  for (std::size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.At(123, j), b.At(123, j));
  }
  const Table c = MakeNbaLike(500, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.num_objects() && !differs; ++i) {
    for (std::size_t j = 0; j < a.num_attributes(); ++j) {
      if (a.At(i, j) != c.At(i, j)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorsTest, NbaLikeIsCorrelated) {
  // Minutes and points should co-vary strongly.
  const Table t = MakeNbaLike(2000, 7);
  const int jm = t.schema().AttributeIndex("minutes");
  const int jp = t.schema().AttributeIndex("points");
  ASSERT_GE(jm, 0);
  ASSERT_GE(jp, 0);
  double sm = 0;
  double sp = 0;
  double smp = 0;
  double sm2 = 0;
  double sp2 = 0;
  const double n = static_cast<double>(t.num_objects());
  for (std::size_t i = 0; i < t.num_objects(); ++i) {
    const double m = t.At(i, static_cast<std::size_t>(jm));
    const double p = t.At(i, static_cast<std::size_t>(jp));
    sm += m;
    sp += p;
    smp += m * p;
    sm2 += m * m;
    sp2 += p * p;
  }
  const double cov = smp / n - (sm / n) * (sp / n);
  const double corr = cov / std::sqrt((sm2 / n - (sm / n) * (sm / n)) *
                                      (sp2 / n - (sp / n) * (sp / n)));
  EXPECT_GT(corr, 0.4);
}

TEST(GeneratorsTest, AdultLikeShape) {
  const Table t = MakeAdultLike(1000, 11);
  EXPECT_EQ(t.num_objects(), 1000u);
  EXPECT_EQ(t.num_attributes(), 9u);
  EXPECT_TRUE(t.IsComplete());
  EXPECT_EQ(t.schema().AttributeIndex("income"), 4);
}

TEST(GeneratorsTest, StandardWorkloadsInDomain) {
  for (const Table& t :
       {MakeIndependent(200, 4, 10, 1), MakeCorrelated(200, 4, 10, 2),
        MakeAnticorrelated(200, 4, 10, 3)}) {
    EXPECT_TRUE(t.IsComplete());
    for (std::size_t i = 0; i < t.num_objects(); ++i) {
      for (std::size_t j = 0; j < t.num_attributes(); ++j) {
        EXPECT_GE(t.At(i, j), 0);
        EXPECT_LT(t.At(i, j), 10);
      }
    }
  }
}

TEST(DatasetIoTest, RoundTripWithMissing) {
  const Table complete = MakeIndependent(30, 3, 6, 17);
  Rng rng(18);
  const Table table = InjectMissingUniform(complete, 0.2, rng);
  const std::string path = ::testing::TempDir() + "/bc_table.csv";
  ASSERT_TRUE(SaveTableCsv(table, path).ok());
  const auto loaded = LoadTableCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->schema() == table.schema());
  ASSERT_EQ(loaded->num_objects(), table.num_objects());
  for (std::size_t i = 0; i < table.num_objects(); ++i) {
    EXPECT_EQ(loaded->object_name(i), table.object_name(i));
    for (std::size_t j = 0; j < table.num_attributes(); ++j) {
      EXPECT_EQ(loaded->At(i, j), table.At(i, j));
    }
  }
}

TEST(DatasetIoTest, LoadRejectsMalformedHeader) {
  const std::string path = ::testing::TempDir() + "/bc_bad.csv";
  {
    CsvDocument doc;
    doc.header = {"name", "a"};  // Missing ":domain".
    doc.rows = {{"r", "1"}};
    ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  }
  EXPECT_FALSE(LoadTableCsv(path).ok());
}

}  // namespace
}  // namespace bayescrowd
