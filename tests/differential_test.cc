// Differential test harness for the Pr(φ) engines: on a population of
// seeded random c-tables, the three independent implementations — full
// enumeration (Naive), adaptive DPLL search (ADPLL), and the
// ApproxCount-style forward sampler — must agree. Naive and ADPLL are
// both exact, so they agree to floating-point noise; the sampler agrees
// within a statistical tolerance far wider than its seeded deviation.
// The same population pins ADPLL's bit-identity across thread counts
// and cache settings, the invariant the crowdsourcing loop leans on.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adversarial_ctables.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "probability/governor.h"
#include "probability/interval.h"
#include "ctable/builder.h"
#include "ctable/ctable.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/distributions.h"
#include "probability/evaluator.h"
#include "probability/naive.h"
#include "probability/sampling.h"

namespace bayescrowd {
namespace {

// Enumeration stays tractable: levels^kMaxNaiveVars assignments.
constexpr Level kLevels = 4;
constexpr std::size_t kMaxNaiveVars = 8;
constexpr std::size_t kNumCases = 50;
constexpr std::size_t kMaxConditionsPerCase = 6;

struct DifferentialCase {
  Table incomplete;
  CTable ctable;
  DistributionMap dists;
  /// Undecided objects whose condition Naive can afford.
  std::vector<std::size_t> objects;
};

// One seeded random c-table: synthetic correlation family, cardinality,
// and missing rate all vary with the seed; distributions are random
// (non-uniform) so the engines cannot agree by symmetry.
DifferentialCase MakeCase(std::uint64_t seed) {
  const std::size_t n = 12 + seed % 8;
  const std::size_t d = 3;
  Table complete;
  switch (seed % 3) {
    case 0:
      complete = MakeIndependent(n, d, kLevels, 1000 + seed);
      break;
    case 1:
      complete = MakeCorrelated(n, d, kLevels, 1000 + seed);
      break;
    default:
      complete = MakeAnticorrelated(n, d, kLevels, 1000 + seed);
      break;
  }
  Rng missing_rng(500 + seed);
  const double rate = 0.15 + 0.01 * static_cast<double>(seed % 10);
  DifferentialCase out;
  out.incomplete = InjectMissingUniform(complete, rate, missing_rng);

  CTableOptions options;
  options.alpha = -1.0;  // No pruning: keep conditions rich.
  auto ctable = BuildCTable(out.incomplete, options);
  BAYESCROWD_CHECK_OK(ctable.status());
  out.ctable = std::move(ctable).value();

  Rng dist_rng(9000 + seed);
  for (const CellRef& var : out.ctable.AllVariables()) {
    std::vector<double> weights(kLevels);
    double total = 0.0;
    for (double& w : weights) {
      w = 0.05 + dist_rng.NextDouble();
      total += w;
    }
    for (double& w : weights) w /= total;
    BAYESCROWD_CHECK_OK(out.dists.Set(var, std::move(weights)));
  }

  for (std::size_t i : out.ctable.UndecidedObjects()) {
    const Condition& condition = out.ctable.condition(i);
    if (condition.NumExpressions() == 0) continue;
    if (condition.Variables().size() > kMaxNaiveVars) continue;
    out.objects.push_back(i);
    if (out.objects.size() >= kMaxConditionsPerCase) break;
  }
  return out;
}

TEST(DifferentialTest, NaiveAdpllAndSamplerAgreeOnSeededCTables) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 0; seed < kNumCases; ++seed) {
    const DifferentialCase c = MakeCase(seed);
    for (const std::size_t object : c.objects) {
      const Condition& condition = c.ctable.condition(object);

      const auto naive = NaiveProbability(condition, c.dists);
      ASSERT_TRUE(naive.ok()) << naive.status() << " seed " << seed;
      const auto adpll = AdpllProbability(condition, c.dists);
      ASSERT_TRUE(adpll.ok()) << adpll.status() << " seed " << seed;
      // Two exact engines: identical up to summation-order noise.
      EXPECT_NEAR(naive.value(), adpll.value(), 1e-9)
          << "seed " << seed << " object " << object;

      SamplingOptions sampling;
      sampling.num_samples = 20'000;
      Rng sample_rng(7700 + seed * 131 + object);
      const auto sampled =
          SampledProbability(condition, c.dists, sampling, sample_rng);
      ASSERT_TRUE(sampled.ok()) << sampled.status();
      // ~8.5 sigma at 20k samples: deterministic seeds keep this exact,
      // the margin keeps it honest if sampling internals evolve.
      EXPECT_NEAR(naive.value(), sampled.value(), 0.03)
          << "seed " << seed << " object " << object;

      Rng rb_rng(8800 + seed * 131 + object);
      const auto rao = SampledProbabilityRaoBlackwell(condition, c.dists,
                                                      sampling, rb_rng);
      ASSERT_TRUE(rao.ok()) << rao.status();
      EXPECT_NEAR(naive.value(), rao.value(), 0.03)
          << "seed " << seed << " object " << object;

      ++compared;
    }
  }
  // The population must actually exercise the engines.
  EXPECT_GE(compared, 50u);
}

// Evaluates every selected condition of a case through the evaluator's
// batch path with the given pool size and cache setting.
std::vector<double> EvaluateCase(const DifferentialCase& c,
                                 std::size_t threads, bool memoize) {
  ProbabilityOptions options;
  options.method = ProbabilityMethod::kAdpll;
  options.memoize = memoize;
  ProbabilityEvaluator evaluator(options);
  for (const CellRef& var : c.ctable.AllVariables()) {
    auto dist = c.dists.Get(var);
    BAYESCROWD_CHECK_OK(dist.status());
    BAYESCROWD_CHECK_OK(
        evaluator.SetDistribution(var, std::move(dist).value()));
  }
  ThreadPool pool(threads);
  evaluator.set_thread_pool(&pool);
  // Evaluate twice: the second pass hits the cache when enabled, and
  // must not change a single bit.
  auto first = evaluator.EvaluateAll(c.ctable, c.objects);
  BAYESCROWD_CHECK_OK(first.status());
  auto second = evaluator.EvaluateAll(c.ctable, c.objects);
  BAYESCROWD_CHECK_OK(second.status());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(first.value()[i], second.value()[i]);
  }
  return std::move(first).value();
}

TEST(DifferentialTest, AdpllBitIdenticalAcrossThreadsAndCache) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const DifferentialCase c = MakeCase(seed);
    if (c.objects.empty()) continue;
    const std::vector<double> base = EvaluateCase(c, 1, /*memoize=*/true);
    for (const std::size_t threads : {1u, 8u}) {
      for (const bool memoize : {true, false}) {
        const std::vector<double> got = EvaluateCase(c, threads, memoize);
        ASSERT_EQ(base.size(), got.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
          EXPECT_EQ(base[i], got[i])
              << "seed " << seed << " threads " << threads << " cache "
              << memoize;
        }
      }
    }
  }
}

// ------------------------------------------------------------------ //
// Compiled sweep: circuit replay vs. the engines it must mirror
// ------------------------------------------------------------------ //

// Evaluates every selected condition of a case across several
// posterior-shift rounds — the compiled layer's hot path — and returns
// the concatenated per-round probabilities.
std::vector<double> EvaluateCaseRounds(const DifferentialCase& c,
                                       std::uint64_t seed,
                                       std::size_t threads,
                                       CompileMode mode,
                                       CircuitStats* stats) {
  ProbabilityOptions options;
  options.method = ProbabilityMethod::kAdpll;
  options.compile.mode = mode;
  ProbabilityEvaluator evaluator(options);
  for (const CellRef& var : c.ctable.AllVariables()) {
    auto dist = c.dists.Get(var);
    BAYESCROWD_CHECK_OK(dist.status());
    BAYESCROWD_CHECK_OK(
        evaluator.SetDistribution(var, std::move(dist).value()));
  }
  ThreadPool pool(threads);
  evaluator.set_thread_pool(&pool);
  std::vector<double> all;
  Rng shift_rng(6100 + seed);
  for (std::size_t round = 0; round < 3; ++round) {
    auto values = evaluator.EvaluateAll(c.ctable, c.objects);
    BAYESCROWD_CHECK_OK(values.status());
    all.insert(all.end(), values->begin(), values->end());
    for (const CellRef& var : c.ctable.AllVariables()) {
      std::vector<double> weights(kLevels);
      double total = 0.0;
      for (double& w : weights) {
        w = 0.05 + shift_rng.NextDouble();
        total += w;
      }
      for (double& w : weights) w /= total;
      BAYESCROWD_CHECK_OK(
          evaluator.SetDistribution(var, std::move(weights)));
    }
  }
  if (stats != nullptr) *stats = evaluator.compile_stats();
  return all;
}

// The compiled evaluator must be indistinguishable from the plain
// ADPLL evaluator — same bits at every thread count, on the same
// seeded population that pins the engines against each other.
TEST(DifferentialTest, CompiledReplayBitIdenticalToAdpllAcrossRounds) {
  std::uint64_t total_reuses = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const DifferentialCase c = MakeCase(seed);
    if (c.objects.empty()) continue;
    const std::vector<double> base =
        EvaluateCaseRounds(c, seed, 1, CompileMode::kOff, nullptr);
    for (const std::size_t threads : {1u, 8u}) {
      CircuitStats stats;
      const std::vector<double> compiled =
          EvaluateCaseRounds(c, seed, threads, CompileMode::kAuto, &stats);
      ASSERT_EQ(base.size(), compiled.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i], compiled[i])
            << "seed " << seed << " threads " << threads << " slot " << i;
      }
      EXPECT_GT(stats.builds, 0u) << "seed " << seed;
      total_reuses += stats.reuses;
    }
  }
  // The shifted rounds must actually run through circuit replay, or
  // the sweep proves nothing about the compiled path.
  EXPECT_GT(total_reuses, 0u);
}

// On instances engineered to blow the compile budget, the evaluator
// must degrade through the governed fallback — exact ADPLL when the
// governor is inert, a sound graded interval when a budget bites —
// and never through a wrong compiled answer.
TEST(DifferentialTest, CompiledPathFallsBackSoundlyOnAdversarialInstances) {
  Rng sweep(0x5EEDC0DE);
  for (std::size_t round = 0; round < 6; ++round) {
    const AdversarialInstance inst = MakeRandomAdversarialInstance(sweep);

    // Inert governor: the compile refusal must leave the exact answer
    // untouched.
    {
      ProbabilityOptions options;
      options.compile.mode = CompileMode::kAuto;
      options.compile.max_nodes = 256;  // Refuses every instance family.
      ProbabilityEvaluator evaluator(options);
      evaluator.distributions() = inst.dists;
      const auto p = evaluator.Probability(inst.condition);
      ASSERT_TRUE(p.ok()) << "round " << round;
      EXPECT_NEAR(p.value(), inst.exact_probability, 1e-9)
          << "round " << round;
      EXPECT_EQ(evaluator.compile_stats().builds, 0u) << "round " << round;
      EXPECT_GE(evaluator.compile_stats().fallbacks, 1u)
          << "round " << round;
    }

    // Biting node budget: compilation must not change the grade — the
    // interval stays sound and the budget still registers as exhausted.
    {
      ProbabilityOptions options;
      options.compile.mode = CompileMode::kAuto;
      options.compile.max_nodes = 256;
      options.governor.max_nodes = 32;
      options.governor.ladder = LadderMode::kFull;
      ProbabilityEvaluator evaluator(options);
      evaluator.distributions() = inst.dists;
      const auto r = evaluator.ProbabilityInterval(inst.condition);
      ASSERT_TRUE(r.ok()) << "round " << round;
      EXPECT_FALSE(r->exact()) << "round " << round;
      EXPECT_LE(r->lo, inst.exact_probability + 1e-9) << "round " << round;
      EXPECT_GE(r->hi, inst.exact_probability - 1e-9) << "round " << round;
      EXPECT_GE(evaluator.solver_stats().budget_exhausted, 1u)
          << "round " << round;
      EXPECT_EQ(evaluator.CircuitCount(), 0u) << "round " << round;
    }
  }
}

// ------------------------------------------------------------------ //
// Adversarial sweep: the governed ladder vs. the Naive ground truth
// ------------------------------------------------------------------ //

// On instances engineered to defeat every ADPLL shortcut (see
// adversarial_ctables.h), a governed solve must (a) terminate inside
// its node budget instead of walking the full levels^vars space, and
// (b) return a sound interval containing the independently-enumerated
// Naive probability. The closed form cross-checks Naive itself, so no
// engine is trusted twice.
TEST(DifferentialTest, GovernedLadderSoundOnAdversarialInstances) {
  Rng sweep(0xBADC0DE);
  for (std::size_t round = 0; round < 12; ++round) {
    const AdversarialInstance inst = MakeRandomAdversarialInstance(sweep);

    NaiveOptions naive_options;
    naive_options.max_assignments = 10'000'000;
    const auto truth =
        NaiveProbability(inst.condition, inst.dists, naive_options);
    ASSERT_TRUE(truth.ok()) << "round " << round;
    ASSERT_NEAR(truth.value(), inst.exact_probability, 1e-9)
        << "round " << round;

    for (const std::uint64_t max_nodes : {4ull, 32ull, 1ull << 40}) {
      GovernorOptions options;
      options.max_nodes = max_nodes;
      options.ladder = LadderMode::kFull;
      const SolverGovernor governor(options);
      Rng rng(round * 1000 + max_nodes);
      GovernorTally tally;
      const auto r = governor.Evaluate(inst.condition, inst.dists, {},
                                       {}, rng, nullptr, &tally);
      ASSERT_TRUE(r.ok()) << "round " << round << " nodes " << max_nodes;
      // Soundness at every budget: the interval contains the truth
      // (exact answers collapse to a point on it).
      EXPECT_LE(r->lo, truth.value() + 1e-9)
          << "round " << round << " nodes " << max_nodes;
      EXPECT_GE(r->hi, truth.value() - 1e-9)
          << "round " << round << " nodes " << max_nodes;
      if (max_nodes == (1ull << 40)) {
        // An effectively-unlimited budget is exact and matches Naive.
        EXPECT_TRUE(r->exact());
        EXPECT_EQ(tally.tier_exact, 1u);
        EXPECT_NEAR(r->lo, truth.value(), 1e-9);
      } else {
        // A tiny budget must actually bite on these instances — that
        // is what makes the sweep adversarial rather than decorative.
        EXPECT_EQ(tally.budget_exhausted, 1u)
            << "round " << round << " nodes " << max_nodes;
      }
    }
  }
}

}  // namespace
}  // namespace bayescrowd
