// Edge cases across modules that the mainline tests do not reach:
// degenerate tables, conflict-saturated task selection, CrowdSky corner
// configurations, text rendering.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/entropy.h"
#include "core/framework.h"
#include "core/strategy.h"
#include "crowd/platform.h"
#include "crowdsky/crowdsky.h"
#include "ctable/builder.h"
#include "ctable/dominator.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/evaluator.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// ------------------------------------------------------------------ //
// Degenerate tables
// ------------------------------------------------------------------ //

TEST(EdgeTest, SingleObjectIsAlwaysSkyline) {
  Schema schema;
  schema.AddAttribute("a", 5);
  Table t(schema);
  ASSERT_TRUE(t.AppendRow("only", {kMissingLevel}).ok());
  const auto ctable = BuildCTable(t, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  EXPECT_TRUE(ctable->condition(0).IsTrue());
}

TEST(EdgeTest, AllMissingRowsProduceVarVarConditions) {
  Schema schema;
  schema.AddAttribute("a", 4);
  schema.AddAttribute("b", 4);
  Table t(schema);
  ASSERT_TRUE(
      t.AppendRow("x", {kMissingLevel, kMissingLevel}).ok());
  ASSERT_TRUE(
      t.AppendRow("y", {kMissingLevel, kMissingLevel}).ok());
  const auto ctable = BuildCTable(t, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  for (std::size_t o = 0; o < 2; ++o) {
    const Condition& c = ctable->condition(o);
    ASSERT_FALSE(c.IsDecided());
    for (const Conjunct& conj : c.conjuncts()) {
      for (const Expression& e : conj) EXPECT_TRUE(e.rhs_is_var);
    }
  }
}

TEST(EdgeTest, EmptyTableRejectedByDominators) {
  Schema schema;
  schema.AddAttribute("a", 4);
  const Table t(schema);
  EXPECT_FALSE(ComputeDominatorSets(t, -1.0).ok());
  EXPECT_FALSE(ComputeDominatorSetsBaseline(t, -1.0).ok());
}

TEST(EdgeTest, AppendEmptyRowIsAllMissing) {
  Schema schema;
  schema.AddAttribute("a", 4);
  schema.AddAttribute("b", 4);
  Table t(schema);
  t.AppendEmptyRow("ghost");
  EXPECT_EQ(t.num_objects(), 1u);
  EXPECT_TRUE(t.IsMissing(0, 0));
  EXPECT_TRUE(t.IsMissing(0, 1));
  EXPECT_EQ(t.object_name(0), "ghost");
}

TEST(EdgeTest, IdenticalIncompleteRowsShareFate) {
  // Two identical partially-missing rows: their conditions must be
  // structurally symmetric (same sizes, mirrored variables).
  Schema schema;
  schema.AddAttribute("a", 4);
  schema.AddAttribute("b", 4);
  Table t(schema);
  ASSERT_TRUE(t.AppendRow("p", {2, kMissingLevel}).ok());
  ASSERT_TRUE(t.AppendRow("q", {2, kMissingLevel}).ok());
  const auto ctable = BuildCTable(t, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  EXPECT_EQ(ctable->condition(0).IsDecided(),
            ctable->condition(1).IsDecided());
  EXPECT_EQ(ctable->condition(0).NumExpressions(),
            ctable->condition(1).NumExpressions());
}

// ------------------------------------------------------------------ //
// Expression / condition rendering
// ------------------------------------------------------------------ //

TEST(EdgeTest, ExpressionToStringFormats) {
  const Table t = MakeSampleMovieDataset();
  EXPECT_EQ(Expression::VarConst(V(4, 1), CmpOp::kLess, 2).ToString(t),
            "Var(Star Wars,a2) < 2");
  EXPECT_EQ(
      Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1)).ToString(t),
      "Var(Star Wars,a2) > Var(Se7en,a2)");
}

TEST(EdgeTest, ConditionToStringConstants) {
  const Table t = MakeSampleMovieDataset();
  EXPECT_EQ(Condition::True().ToString(t), "true");
  EXPECT_EQ(Condition::False().ToString(t), "false");
}

// ------------------------------------------------------------------ //
// Conflict-saturated task selection
// ------------------------------------------------------------------ //

TEST(EdgeTest, ConflictSaturationLimitsBatch) {
  // Three objects whose conditions all hinge on the same variable: only
  // one task per round can be selected.
  // hub possibly dominates r1 and r2 (mutually incomparable); every
  // candidate expression is over Var(hub, a).
  Schema schema;
  schema.AddAttribute("a", 6);
  schema.AddAttribute("b", 6);
  Table t(schema);
  ASSERT_TRUE(t.AppendRow("hub", {kMissingLevel, 5}).ok());
  ASSERT_TRUE(t.AppendRow("r1", {4, 4}).ok());
  ASSERT_TRUE(t.AppendRow("r2", {5, 3}).ok());
  const auto ctable = BuildCTable(t, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());

  ProbabilityEvaluator evaluator;
  BAYESCROWD_CHECK_OK(evaluator.distributions().Set(
      V(0, 0), std::vector<double>(6, 1.0 / 6.0)));

  std::vector<ObjectEntropy> ranked;
  for (std::size_t i : ctable->UndecidedObjects()) {
    ObjectEntropy entry;
    entry.object = i;
    entry.probability =
        evaluator.Probability(ctable->condition(i)).value();
    entry.entropy = BinaryEntropy(entry.probability);
    ranked.push_back(entry);
  }
  ASSERT_GE(ranked.size(), 2u);

  StrategyOptions options;
  options.kind = StrategyKind::kFbs;
  const auto tasks = SelectTasks(*ctable, ranked, 3, evaluator, options);
  ASSERT_TRUE(tasks.ok());
  // Every candidate expression involves Var(hub, a); only one
  // conflict-free task exists.
  EXPECT_EQ(tasks->size(), 1u);
}

// ------------------------------------------------------------------ //
// CrowdSky corners
// ------------------------------------------------------------------ //

TEST(EdgeTest, CrowdSkyOneTaskPerRound) {
  const Table complete = MakeCorrelated(40, 4, 8, 77);
  const std::vector<std::size_t> crowd = {2, 3};
  const Table incomplete = InjectMissingAttributes(complete, crowd);
  SimulatedCrowdPlatform platform(complete, {});
  const auto result = RunCrowdSky(incomplete, {0, 1}, crowd, platform,
                                  {.tasks_per_round = 1});
  ASSERT_TRUE(result.ok()) << result.status();
  // A pair's comparisons are indivisible, so a round may carry up to
  // one pair's worth (two crowd attributes) even at tasks_per_round=1.
  EXPECT_LE(result->tasks_posted, 2 * result->rounds);
  EXPECT_GE(result->tasks_posted, result->rounds);
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(
      EvaluateResultSet(result->skyline, truth.value()).f1, 1.0);
}

TEST(EdgeTest, CrowdSkyThreeCrowdAttributes) {
  const Table complete = MakeCorrelated(60, 5, 8, 78);
  const std::vector<std::size_t> crowd = {2, 3, 4};
  const Table incomplete = InjectMissingAttributes(complete, crowd);
  SimulatedCrowdPlatform platform(complete, {});
  const auto result =
      RunCrowdSky(incomplete, {0, 1}, crowd, platform, {});
  ASSERT_TRUE(result.ok());
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(
      EvaluateResultSet(result->skyline, truth.value()).f1, 1.0);
}

TEST(EdgeTest, CrowdSkyRejectsZeroTasksPerRound) {
  const Table complete = MakeCorrelated(20, 4, 8, 79);
  const Table incomplete = InjectMissingAttributes(complete, {2, 3});
  SimulatedCrowdPlatform platform(complete, {});
  EXPECT_FALSE(RunCrowdSky(incomplete, {0, 1}, {2, 3}, platform,
                           {.tasks_per_round = 0})
                   .ok());
}

// ------------------------------------------------------------------ //
// Framework corners
// ------------------------------------------------------------------ //

TEST(EdgeTest, BudgetLargerThanAvailableWorkTerminates) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 10'000;  // Only a handful of variables exist.
  options.latency = 100;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->tasks_posted, 20u);  // Terminated by exhaustion.
}

TEST(EdgeTest, ThresholdZeroReturnsAllPossibleObjects) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 0;
  options.answer_threshold = 0.0;  // Any nonzero probability qualifies.
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  // All five objects have positive probability.
  EXPECT_EQ(result->result_objects.size(), 5u);
}

}  // namespace
}  // namespace bayescrowd
