// Failure injection: how the framework behaves when its collaborators
// misbehave — erroring platforms, misaligned answers, exhausted exact
// solvers, adversarially wrong workers.

#include <gtest/gtest.h>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

// A platform that fails after `fail_after` successful rounds.
class FailingPlatform : public CrowdPlatform {
 public:
  FailingPlatform(const Table& truth, std::size_t fail_after)
      : inner_(truth, {}), fail_after_(fail_after) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override {
    if (inner_.total_rounds() >= fail_after_) {
      return Status::IOError("marketplace outage");
    }
    return inner_.PostBatch(tasks);
  }
  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override {
    return inner_.total_rounds();
  }

 private:
  SimulatedCrowdPlatform inner_;
  std::size_t fail_after_;
};

// A platform that returns the wrong number of answers.
class MisalignedPlatform : public CrowdPlatform {
 public:
  explicit MisalignedPlatform(const Table& truth) : inner_(truth, {}) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override {
    BAYESCROWD_ASSIGN_OR_RETURN(auto answers, inner_.PostBatch(tasks));
    answers.pop_back();
    return answers;
  }
  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override {
    return inner_.total_rounds();
  }

 private:
  SimulatedCrowdPlatform inner_;
};

// A platform whose workers always answer the *opposite* of the truth
// (worse than random), to probe graceful degradation.
class AdversarialPlatform : public CrowdPlatform {
 public:
  explicit AdversarialPlatform(const Table& truth) : inner_(truth, {}) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override {
    BAYESCROWD_ASSIGN_OR_RETURN(auto answers, inner_.PostBatch(tasks));
    for (TaskAnswer& a : answers) {
      a.relation = a.relation == Ordering::kLess ? Ordering::kGreater
                                                 : Ordering::kLess;
    }
    ++rounds_;
    return answers;
  }
  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override { return rounds_; }

 private:
  SimulatedCrowdPlatform inner_;
  std::size_t rounds_ = 0;
};

BayesCrowdOptions SmallOptions() {
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 6;
  options.latency = 3;
  return options;
}

TEST(FailureTest, PlatformOutagePropagates) {
  const Table incomplete = MakeSampleMovieDataset();
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  FailingPlatform platform(MakeSampleMovieGroundTruth(), 1);
  BayesCrowd framework(SmallOptions());
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FailureTest, MisalignedAnswersDetected) {
  const Table incomplete = MakeSampleMovieDataset();
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  MisalignedPlatform platform(MakeSampleMovieGroundTruth());
  BayesCrowd framework(SmallOptions());
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(FailureTest, AdversarialWorkersDegradeButDoNotCrash) {
  // Every answer is inverted; the run must still terminate cleanly and
  // produce *some* result set (garbage in, garbage out — gracefully).
  const Table incomplete = MakeSampleMovieDataset();
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  AdversarialPlatform platform(MakeSampleMovieGroundTruth());
  BayesCrowd framework(SmallOptions());
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->tasks_posted, 6u);
  // o2/o3 are certain regardless of the crowd.
  EXPECT_EQ(result->final_ctable.condition(1).IsTrue(), true);
  EXPECT_EQ(result->final_ctable.condition(2).IsTrue(), true);
}

TEST(FailureTest, SamplingFallbackRescuesExhaustedAdpll) {
  const Table complete = MakeNbaLike(150, 31, 8);
  Rng rng(32);
  const Table incomplete = InjectMissingUniform(complete, 0.12, rng);

  BayesCrowdOptions options;
  options.ctable.alpha = 0.1;
  options.budget = 20;
  options.latency = 2;
  // Cripple exact search so the fallback must kick in.
  options.probability.adpll.max_calls = 2;
  options.probability.adpll.star_fast_path = false;
  options.probability.adpll.component_decomposition = false;
  options.sampling_fallback = true;

  UniformPosteriorProvider posteriors(incomplete.schema());
  SimulatedCrowdPlatform platform(complete, {});
  BayesCrowd framework(options);
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();

  // Without the fallback the same configuration must fail.
  options.sampling_fallback = false;
  UniformPosteriorProvider posteriors2(incomplete.schema());
  SimulatedCrowdPlatform platform2(complete, {});
  BayesCrowd strict_framework(options);
  const auto strict =
      strict_framework.Run(incomplete, posteriors2, platform2);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureTest, PosteriorProviderErrorPropagates) {
  class BrokenProvider : public PosteriorProvider {
   public:
    Result<std::vector<double>> Posterior(const CellRef&) override {
      return Status::Internal("model store unavailable");
    }
  };
  const Table incomplete = MakeSampleMovieDataset();
  BrokenProvider posteriors;
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  BayesCrowd framework(SmallOptions());
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(FailureTest, CompleteTableNeedsNoCrowd) {
  // A complete table has no missing cells: the c-table is fully decided
  // and the crowd phase is a no-op.
  const Table complete = MakeIndependent(50, 4, 8, 5);
  FixedMarginalsProvider posteriors({});  // Never consulted.
  SimulatedCrowdPlatform platform(complete, {});
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 100;
  options.latency = 5;
  BayesCrowd framework(options);
  const auto result = framework.Run(complete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tasks_posted, 0u);
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(
      EvaluateResultSet(result->result_objects, truth.value()).f1, 1.0);
}

}  // namespace
}  // namespace bayescrowd
