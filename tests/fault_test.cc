// Property tests for the fault-tolerance layer: FaultInjectingPlatform's
// deterministic schedule, the framework's retry/backoff/refund
// semantics, degradation under a dead platform, and the golden replay
// guarantee (a recorded faulted run replays through the identical
// recovery path, telemetry and all).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "core/telemetry.h"
#include "crowd/fault_injection.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/json.h"
#include "obs/normalize.h"

namespace bayescrowd {
namespace {

// Same dataset family as parallel_test.cc: mid-sized, enough undecided
// objects for multi-round, multi-task batches.
Table FaultDataset() {
  Rng rng(0xD15EA5E);
  return InjectMissingUniform(MakeNbaLike(120, /*seed=*/5), 0.15, rng);
}

BayesCrowdOptions FaultRunOptions(std::size_t threads) {
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.budget = 24;
  options.latency = 4;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 5;
  options.threads = threads;
  return options;
}

struct FaultRun {
  BayesCrowdResult result;
  FaultStats stats;
  AnswerLog log;
};

// Runs the pipeline through framework -> recorder -> faulter -> sim.
// The recorder sits outermost so the transcript includes abstains and
// whole-batch failures — the full recovery path.
FaultRun RunFaulted(std::size_t threads, const FaultOptions& faults) {
  const Table incomplete = FaultDataset();
  const BayesCrowdOptions options = FaultRunOptions(threads);
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/5);
  SimulatedCrowdPlatform sim(truth, {});
  FaultInjectingPlatform faulter(sim, faults);
  RecordingPlatform recorder(faulter);
  auto result = framework.Run(incomplete, posteriors, recorder);
  BAYESCROWD_CHECK_OK(result.status());
  return {std::move(result).value(), faulter.stats(), recorder.log()};
}

void ExpectBitIdentical(const BayesCrowdResult& a,
                        const BayesCrowdResult& b) {
  EXPECT_EQ(a.result_objects, b.result_objects);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t i = 0; i < a.probabilities.size(); ++i) {
    EXPECT_EQ(a.probabilities[i], b.probabilities[i]) << "object " << i;
  }
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.rounds_abandoned, b.rounds_abandoned);
  EXPECT_EQ(a.tasks_posted, b.tasks_posted);
  EXPECT_EQ(a.tasks_unanswered, b.tasks_unanswered);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.transient_failures, b.transient_failures);
  EXPECT_EQ(a.cost_spent, b.cost_spent);
  EXPECT_EQ(a.cost_refunded, b.cost_refunded);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.degraded, b.degraded);
}

// ------------------------------------------------------------------ //
// Pass-through and schedule determinism
// ------------------------------------------------------------------ //

TEST(FaultInjectionTest, ZeroRateIsTransparentPassThrough) {
  // Baseline: no decorator at all.
  const Table incomplete = FaultDataset();
  const BayesCrowdOptions options = FaultRunOptions(2);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/5);
  SimulatedCrowdPlatform sim(truth, {});
  RecordingPlatform recorder(sim);
  BayesCrowd framework(options);
  auto baseline = framework.Run(incomplete, posteriors, recorder);
  BAYESCROWD_CHECK_OK(baseline.status());

  const FaultRun faulted = RunFaulted(2, FaultOptions::Profile(0.0, 99));
  ExpectBitIdentical(baseline.value(), faulted.result);
  EXPECT_EQ(SerializeAnswerLog(recorder.log()),
            SerializeAnswerLog(faulted.log));

  // Nothing injected, everything delivered.
  EXPECT_EQ(faulted.stats.transient_failures, 0u);
  EXPECT_EQ(faulted.stats.timeouts, 0u);
  EXPECT_EQ(faulted.stats.abstained_tasks, 0u);
  EXPECT_EQ(faulted.stats.partial_batches, 0u);
  EXPECT_EQ(faulted.stats.batches_attempted,
            faulted.stats.batches_delivered);
  EXPECT_FALSE(faulted.result.degraded);
  EXPECT_EQ(faulted.result.tasks_unanswered, 0u);
  EXPECT_EQ(faulted.result.cost_refunded, 0.0);
}

TEST(FaultInjectionTest, SameSeedReproducesScheduleAndResult) {
  const FaultOptions faults = FaultOptions::Profile(0.3, 17);
  const FaultRun a = RunFaulted(2, faults);
  const FaultRun b = RunFaulted(2, faults);
  ExpectBitIdentical(a.result, b.result);
  EXPECT_EQ(a.stats.transient_failures, b.stats.transient_failures);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.abstained_tasks, b.stats.abstained_tasks);
  EXPECT_EQ(a.stats.partial_batches, b.stats.partial_batches);
  EXPECT_EQ(a.stats.dropped_tail_tasks, b.stats.dropped_tail_tasks);
  EXPECT_EQ(a.stats.batches_attempted, b.stats.batches_attempted);
  EXPECT_EQ(SerializeAnswerLog(a.log), SerializeAnswerLog(b.log));
  // The profile must actually bite, or the test proves nothing.
  EXPECT_GT(a.stats.transient_failures + a.stats.abstained_tasks +
                a.stats.partial_batches,
            0u);
}

TEST(FaultInjectionTest, FaultedRunBitIdenticalAcrossThreadCounts) {
  // Retry, refund and degradation logic all live in the single-threaded
  // round loop; the injector's schedule depends only on seed and batch
  // sizes. Thread count must therefore not leak into a faulted run.
  const FaultOptions faults = FaultOptions::Profile(0.3, 17);
  const FaultRun one = RunFaulted(1, faults);
  const FaultRun eight = RunFaulted(8, faults);
  ExpectBitIdentical(one.result, eight.result);
  EXPECT_EQ(SerializeAnswerLog(one.log), SerializeAnswerLog(eight.log));
  EXPECT_EQ(one.stats.transient_failures, eight.stats.transient_failures);
  EXPECT_EQ(one.stats.abstained_tasks, eight.stats.abstained_tasks);
  EXPECT_EQ(one.stats.dropped_tail_tasks, eight.stats.dropped_tail_tasks);
}

// ------------------------------------------------------------------ //
// Budget accounting
// ------------------------------------------------------------------ //

TEST(FaultInjectionTest, BudgetOnlyPaysForAnswers) {
  const FaultRun run = RunFaulted(2, FaultOptions::Profile(0.3, 17));
  const BayesCrowdResult& r = run.result;
  // Uniform (cost-1) model: spent + refunded partitions the posted
  // tasks, and only answers are charged against the budget.
  EXPECT_EQ(r.cost_spent,
            static_cast<double>(r.tasks_posted - r.tasks_unanswered));
  EXPECT_EQ(r.cost_refunded, static_cast<double>(r.tasks_unanswered));
  EXPECT_LE(r.cost_spent, 24.0);
  // Round logs are consistent with the totals.
  std::size_t unanswered = 0, abandoned = 0;
  double refunded = 0.0;
  for (const RoundLog& log : r.round_logs) {
    EXPECT_EQ(log.tasks, log.answered + log.unanswered);
    unanswered += log.unanswered;
    refunded += log.cost_refunded;
    if (log.abandoned) {
      ++abandoned;
      EXPECT_EQ(log.tasks, 0u);
    }
  }
  EXPECT_EQ(unanswered, r.tasks_unanswered);
  EXPECT_EQ(refunded, r.cost_refunded);
  EXPECT_EQ(abandoned, r.rounds_abandoned);
}

// ------------------------------------------------------------------ //
// Degradation and deadlines
// ------------------------------------------------------------------ //

// A marketplace that is simply gone.
class AlwaysDownPlatform : public CrowdPlatform {
 public:
  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override {
    (void)tasks;
    return Status::Unavailable("platform down");
  }
  std::size_t total_tasks() const override { return 0; }
  std::size_t total_rounds() const override { return 0; }
};

BayesCrowdResult RunAgainstDeadPlatform(const RetryPolicy& retry) {
  const Table incomplete = FaultDataset();
  BayesCrowdOptions options = FaultRunOptions(2);
  options.retry = retry;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  AlwaysDownPlatform dead;
  auto result = framework.Run(incomplete, posteriors, dead);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

TEST(FaultRecoveryTest, DeadPlatformTerminatesDegraded) {
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.max_barren_rounds = 3;
  const BayesCrowdResult r = RunAgainstDeadPlatform(retry);

  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.rounds_abandoned, 3u);
  EXPECT_EQ(r.rounds, 3u);
  // Every round burns all attempts: 3 failures and 2 retries each.
  EXPECT_EQ(r.transient_failures, 9u);
  EXPECT_EQ(r.retries, 6u);
  EXPECT_EQ(r.tasks_posted, 0u);
  EXPECT_EQ(r.cost_spent, 0.0);
  // Backoff 1 + 2 simulated seconds per round, attempts 3 s per round.
  EXPECT_DOUBLE_EQ(r.backoff_seconds, 9.0);
  EXPECT_DOUBLE_EQ(r.simulated_seconds, 18.0);
  // The degraded result is still a well-defined probabilistic skyline.
  EXPECT_EQ(r.probabilities.size(), 120u);
  EXPECT_GT(r.result_objects.size(), 0u);
}

TEST(FaultRecoveryTest, DeadlineCapsAttemptsPerRound) {
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.attempt_seconds = 1.0;
  retry.backoff_initial_seconds = 1.0;
  retry.round_deadline_seconds = 1.5;  // Room for exactly one attempt.
  retry.max_barren_rounds = 2;
  const BayesCrowdResult r = RunAgainstDeadPlatform(retry);

  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.rounds_abandoned, 2u);
  EXPECT_EQ(r.transient_failures, 2u);  // One attempt per round.
  EXPECT_EQ(r.retries, 0u);             // Backoff would blow the deadline.
  EXPECT_DOUBLE_EQ(r.backoff_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.simulated_seconds, 2.0);
  for (const RoundLog& log : r.round_logs) {
    EXPECT_EQ(log.attempts, 1u);
    EXPECT_TRUE(log.abandoned);
  }
}

// ------------------------------------------------------------------ //
// Golden replay
// ------------------------------------------------------------------ //

// Telemetry normalization lives in obs/normalize.h; the default
// options zero exactly the wall-clock durations (keys ending in
// "seconds" without "sim" in the name). Simulated clocks are
// deterministic and survive the diff untouched.

TEST(FaultRecoveryTest, GoldenReplayReproducesRecoveryPathAndTelemetry) {
  // Record a faulted run. threads = 1 keeps the lane bookkeeping (the
  // only thread-count-dependent telemetry) identical across runs.
  const Table incomplete = FaultDataset();
  const BayesCrowdOptions options = FaultRunOptions(1);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/5);

  SimulatedCrowdPlatform sim(truth, {});
  FaultInjectingPlatform faulter(sim, FaultOptions::Profile(0.3, 17));
  RecordingPlatform recorder(faulter);
  BayesCrowd framework(options);
  auto recorded = framework.Run(incomplete, posteriors, recorder);
  BAYESCROWD_CHECK_OK(recorded.status());
  // The transcript must contain actual recovery events to be golden.
  ASSERT_GT(recorded->transient_failures + recorded->tasks_unanswered, 0u);

  // Round-trip the log through its text form, then replay with no live
  // platform at all: the transcript alone must drive the identical
  // recovery path.
  auto parsed = ParseAnswerLog(SerializeAnswerLog(recorder.log()));
  BAYESCROWD_CHECK_OK(parsed.status());
  ReplayingPlatform replayer(std::move(parsed).value(), nullptr);
  RecordingPlatform rerecorder(replayer);
  BayesCrowd replay_framework(options);
  auto replayed = replay_framework.Run(incomplete, posteriors, rerecorder);
  BAYESCROWD_CHECK_OK(replayed.status());

  ExpectBitIdentical(recorded.value(), replayed.value());
  // Replaying re-records the same transcript, failures and all.
  EXPECT_EQ(SerializeAnswerLog(recorder.log()),
            SerializeAnswerLog(rerecorder.log()));

  // Full telemetry envelopes agree modulo wall-clock timings.
  const obs::JsonValue golden = obs::NormalizeTelemetry(
      RunTelemetryJson("golden", options, recorded.value()));
  const obs::JsonValue again = obs::NormalizeTelemetry(
      RunTelemetryJson("golden", options, replayed.value()));
  EXPECT_EQ(golden.Dump(2), again.Dump(2));
}

}  // namespace
}  // namespace bayescrowd
