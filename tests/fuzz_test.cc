// Fuzz-style robustness tests: random and adversarial inputs must never
// crash — they either parse or fail with a clean Status.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "bayesnet/serialization.h"
#include "common/csv.h"
#include "common/random.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length,
                        const std::string& alphabet) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[rng.NextBelow(alphabet.size())]);
  }
  return out;
}

TEST(FuzzTest, CsvParserNeverCrashesOnNoise) {
  Rng rng(0xF00D);
  const std::string alphabet = "abc,\"\n\r 0123\\;|\t";
  for (int round = 0; round < 500; ++round) {
    const std::string noise =
        RandomBytes(rng, rng.NextBelow(200), alphabet);
    for (const bool header : {true, false}) {
      const auto doc = ParseCsv(noise, header);
      if (doc.ok()) {
        // Whatever parsed must re-serialize without crashing.
        for (const auto& row : doc->rows) {
          (void)FormatCsvRow(row);
        }
      } else {
        EXPECT_FALSE(doc.status().message().empty());
      }
    }
  }
}

TEST(FuzzTest, CsvQuotedRoundTripOnRandomFields) {
  Rng rng(0xBEEF);
  const std::string alphabet = "ab,\"\n\r x";
  for (int round = 0; round < 300; ++round) {
    std::vector<std::string> fields;
    const std::size_t width = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < width; ++f) {
      fields.push_back(RandomBytes(rng, rng.NextBelow(12), alphabet));
    }
    const std::string serialized = FormatCsvRow(fields);
    const auto doc = ParseCsv(serialized, /*has_header=*/false);
    ASSERT_TRUE(doc.ok()) << "round " << round;
    // CRLF-vs-LF normalization aside, a single serialized row must
    // parse back to exactly the same fields.
    ASSERT_EQ(doc->rows.size(), 1u);
    EXPECT_EQ(doc->rows[0], fields) << "round " << round;
  }
}

TEST(FuzzTest, TableLoaderNeverCrashesOnNoise) {
  Rng rng(0xABBA);
  const std::string alphabet = "name:,a1?\n-0123456789 x";
  const std::string path = ::testing::TempDir() + "/bc_fuzz_table.csv";
  for (int round = 0; round < 300; ++round) {
    CsvDocument doc;
    doc.header = {"name", "a:4"};
    // Write raw noise instead of a valid document half the time.
    if (rng.NextBool(0.5)) {
      std::ofstream out(path, std::ios::binary);
      out << RandomBytes(rng, rng.NextBelow(150), alphabet);
    } else {
      doc.rows = {{RandomBytes(rng, 3, alphabet),
                   RandomBytes(rng, 2, alphabet)}};
      (void)WriteCsvFile(path, doc);
    }
    const auto loaded = LoadTableCsv(path);
    if (loaded.ok()) {
      EXPECT_LE(loaded->num_objects(), 10u);
    }
  }
}

// Deterministic malformed fixtures: each rejection must be a clean
// InvalidArgument whose message names the offending row/cell, and each
// tolerated quirk must load.
TEST(FuzzTest, TableLoaderRejectsMalformedRowsWithContext) {
  const std::string path = ::testing::TempDir() + "/bc_malformed.csv";
  const auto write = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    out << text;
  };

  struct Fixture {
    const char* name;
    const char* text;
    const char* expect_in_message;  // nullptr = must load cleanly.
  };
  const Fixture fixtures[] = {
      {"bad arity", "name,a:4\no1,1,7\n", "expected 2"},
      {"non-numeric cell", "name,a:4\no1,1\no2,zap\n",
       "not an integer level"},
      {"NaN cell", "name,a:4\no1,NaN\n", "NaN is not a level"},
      {"Inf cell", "name,a:4\no1,-inf\n", "Inf is not a level"},
      {"fractional cell", "name,a:4\no1,2.5\n",
       "fractional levels are not allowed"},
      {"level above domain", "name,a:4\no1,4\n", "outside domain"},
      {"negative level", "name,a:4\no1,-2\n", "outside domain"},
      {"bad header domain", "name,a:zero\no1,1\n", "malformed header"},
      {"header missing name", "id,a:4\no1,1\n", "expected header"},
      {"unterminated quote", "name,a:4\n\"o1,1\n", "unterminated"},
      {"blank lines tolerated", "name,a:4\n\no1,1\n\no2,?\n\n", nullptr},
      {"missing cells tolerated", "name,a:4\no1,?\n", nullptr},
  };
  for (const Fixture& fixture : fixtures) {
    write(fixture.text);
    const auto loaded = LoadTableCsv(path);
    if (fixture.expect_in_message == nullptr) {
      EXPECT_TRUE(loaded.ok()) << fixture.name << ": "
                               << loaded.status().ToString();
      continue;
    }
    ASSERT_FALSE(loaded.ok()) << fixture.name;
    EXPECT_TRUE(loaded.status().IsInvalidArgument()) << fixture.name;
    EXPECT_NE(loaded.status().message().find(fixture.expect_in_message),
              std::string::npos)
        << fixture.name << ": got '" << loaded.status().message() << "'";
  }

  // Row context makes the message actionable: the second data row and
  // the attribute name must both appear.
  write("name,points:4\nok,1\nbroken,NaN\n");
  const auto loaded = LoadTableCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("row 2"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("'points'"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("'broken'"), std::string::npos)
      << loaded.status().message();
}

TEST(FuzzTest, NetworkDeserializerNeverCrashesOnNoise) {
  Rng rng(0xD00F);
  const std::string alphabet =
      "bayesnet v1\nnodes edge cpt 0123456789 .end#";
  for (int round = 0; round < 500; ++round) {
    const std::string noise =
        RandomBytes(rng, rng.NextBelow(250), alphabet);
    const auto net = DeserializeNetwork(noise);
    if (!net.ok()) {
      EXPECT_FALSE(net.status().message().empty());
    }
  }
}

TEST(FuzzTest, NetworkDeserializerSurvivesMutatedValidInput) {
  // Take a valid serialization and flip random characters.
  const Table data = MakeAdultLike(200, 3);
  Dag dag(data.num_attributes());
  BAYESCROWD_CHECK_OK(dag.AddEdge(0, 1));
  auto net = BayesianNetwork::Create(data.schema(), dag);
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(data));
  const std::string valid = SerializeNetwork(net.value());

  Rng rng(0xFEED);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] =
          static_cast<char>('0' + rng.NextBelow(75));
    }
    (void)DeserializeNetwork(mutated);  // Must not crash or hang.
  }
}

TEST(FuzzTest, InjectorsTolerateExtremeRates) {
  const Table complete = MakeIndependent(50, 3, 4, 1);
  Rng rng(2);
  EXPECT_TRUE(InjectMissingUniform(complete, 0.0, rng).IsComplete());
  EXPECT_EQ(InjectMissingUniform(complete, 1.0, rng).MissingCells().size(),
            150u);
  (void)InjectMissingMnar(complete, 0.0, rng);
  (void)InjectMissingMnar(complete, 0.99, rng);
  (void)InjectMissingMar(complete, 0.99, 0, rng);
}

}  // namespace
}  // namespace bayescrowd
