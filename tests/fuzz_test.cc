// Fuzz-style robustness tests: random and adversarial inputs must never
// crash — they either parse or fail with a clean Status.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "bayesnet/serialization.h"
#include "common/csv.h"
#include "common/random.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length,
                        const std::string& alphabet) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[rng.NextBelow(alphabet.size())]);
  }
  return out;
}

TEST(FuzzTest, CsvParserNeverCrashesOnNoise) {
  Rng rng(0xF00D);
  const std::string alphabet = "abc,\"\n\r 0123\\;|\t";
  for (int round = 0; round < 500; ++round) {
    const std::string noise =
        RandomBytes(rng, rng.NextBelow(200), alphabet);
    for (const bool header : {true, false}) {
      const auto doc = ParseCsv(noise, header);
      if (doc.ok()) {
        // Whatever parsed must re-serialize without crashing.
        for (const auto& row : doc->rows) {
          (void)FormatCsvRow(row);
        }
      } else {
        EXPECT_FALSE(doc.status().message().empty());
      }
    }
  }
}

TEST(FuzzTest, CsvQuotedRoundTripOnRandomFields) {
  Rng rng(0xBEEF);
  const std::string alphabet = "ab,\"\n\r x";
  for (int round = 0; round < 300; ++round) {
    std::vector<std::string> fields;
    const std::size_t width = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < width; ++f) {
      fields.push_back(RandomBytes(rng, rng.NextBelow(12), alphabet));
    }
    const std::string serialized = FormatCsvRow(fields);
    const auto doc = ParseCsv(serialized, /*has_header=*/false);
    ASSERT_TRUE(doc.ok()) << "round " << round;
    // CRLF-vs-LF normalization aside, a single serialized row must
    // parse back to exactly the same fields.
    ASSERT_EQ(doc->rows.size(), 1u);
    EXPECT_EQ(doc->rows[0], fields) << "round " << round;
  }
}

TEST(FuzzTest, TableLoaderNeverCrashesOnNoise) {
  Rng rng(0xABBA);
  const std::string alphabet = "name:,a1?\n-0123456789 x";
  const std::string path = ::testing::TempDir() + "/bc_fuzz_table.csv";
  for (int round = 0; round < 300; ++round) {
    CsvDocument doc;
    doc.header = {"name", "a:4"};
    // Write raw noise instead of a valid document half the time.
    if (rng.NextBool(0.5)) {
      std::ofstream out(path, std::ios::binary);
      out << RandomBytes(rng, rng.NextBelow(150), alphabet);
    } else {
      doc.rows = {{RandomBytes(rng, 3, alphabet),
                   RandomBytes(rng, 2, alphabet)}};
      (void)WriteCsvFile(path, doc);
    }
    const auto loaded = LoadTableCsv(path);
    if (loaded.ok()) {
      EXPECT_LE(loaded->num_objects(), 10u);
    }
  }
}

TEST(FuzzTest, NetworkDeserializerNeverCrashesOnNoise) {
  Rng rng(0xD00F);
  const std::string alphabet =
      "bayesnet v1\nnodes edge cpt 0123456789 .end#";
  for (int round = 0; round < 500; ++round) {
    const std::string noise =
        RandomBytes(rng, rng.NextBelow(250), alphabet);
    const auto net = DeserializeNetwork(noise);
    if (!net.ok()) {
      EXPECT_FALSE(net.status().message().empty());
    }
  }
}

TEST(FuzzTest, NetworkDeserializerSurvivesMutatedValidInput) {
  // Take a valid serialization and flip random characters.
  const Table data = MakeAdultLike(200, 3);
  Dag dag(data.num_attributes());
  BAYESCROWD_CHECK_OK(dag.AddEdge(0, 1));
  auto net = BayesianNetwork::Create(data.schema(), dag);
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(data));
  const std::string valid = SerializeNetwork(net.value());

  Rng rng(0xFEED);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] =
          static_cast<char>('0' + rng.NextBelow(75));
    }
    (void)DeserializeNetwork(mutated);  // Must not crash or hang.
  }
}

TEST(FuzzTest, InjectorsTolerateExtremeRates) {
  const Table complete = MakeIndependent(50, 3, 4, 1);
  Rng rng(2);
  EXPECT_TRUE(InjectMissingUniform(complete, 0.0, rng).IsComplete());
  EXPECT_EQ(InjectMissingUniform(complete, 1.0, rng).MissingCells().size(),
            150u);
  (void)InjectMissingMnar(complete, 0.0, rng);
  (void)InjectMissingMnar(complete, 0.99, rng);
  (void)InjectMissingMar(complete, 0.99, 0, rng);
}

}  // namespace
}  // namespace bayescrowd
