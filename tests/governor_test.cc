// Tests for the solver governor: ladder-mode parsing, budget
// fingerprints, the degradation ladder on adversarial instances
// (termination, interval soundness, determinism), the evaluator's
// budget-tier cache stamps, and a framework-level governed run.

#include <gtest/gtest.h>

#include <vector>

#include "adversarial_ctables.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "ctable/condition.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/evaluator.h"
#include "probability/governor.h"
#include "probability/interval.h"

namespace bayescrowd {
namespace {

// Containment against a closed-form reference: the solver's exact
// answers can differ from the analytic product in the last ulp, so the
// check gets a tolerance (soundness failures are orders larger).
bool ContainsApprox(const ProbInterval& interval, double p) {
  return interval.lo <= p + 1e-9 && interval.hi >= p - 1e-9;
}

// ------------------------------------------------------------------ //
// LadderMode parsing / printing
// ------------------------------------------------------------------ //

TEST(LadderModeTest, NamesRoundTrip) {
  for (const LadderMode mode :
       {LadderMode::kFull, LadderMode::kInterval, LadderMode::kSample,
        LadderMode::kStrict}) {
    LadderMode parsed = LadderMode::kFull;
    ASSERT_TRUE(ParseLadderMode(LadderModeToString(mode), &parsed))
        << LadderModeToString(mode);
    EXPECT_EQ(parsed, mode);
  }
}

TEST(LadderModeTest, UnknownNameRejectedAndModeUntouched) {
  LadderMode mode = LadderMode::kSample;
  EXPECT_FALSE(ParseLadderMode("bogus", &mode));
  EXPECT_FALSE(ParseLadderMode("", &mode));
  EXPECT_FALSE(ParseLadderMode("FULL", &mode));  // Names are lowercase.
  EXPECT_EQ(mode, LadderMode::kSample);
}

// ------------------------------------------------------------------ //
// GovernorOptions::Fingerprint
// ------------------------------------------------------------------ //

TEST(GovernorFingerprintTest, InertIsExactlyZero) {
  GovernorOptions inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.Fingerprint(), 0u);
}

TEST(GovernorFingerprintTest, BudgetsAndLadderChangeIt) {
  GovernorOptions a;
  a.max_nodes = 100;
  GovernorOptions b = a;
  b.max_nodes = 200;
  GovernorOptions c = a;
  c.ladder = LadderMode::kStrict;
  EXPECT_NE(a.Fingerprint(), 0u);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(GovernorFingerprintTest, DeadlineValueIsExcluded) {
  // The deadline only degrades — it never changes what a tier computes
  // — so two configs differing only in deadline_ms share a fingerprint
  // (and cached entries).
  GovernorOptions a;
  a.max_nodes = 64;
  a.deadline_ms = 5;
  GovernorOptions b = a;
  b.deadline_ms = 5000;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// ------------------------------------------------------------------ //
// The ladder on adversarial instances
// ------------------------------------------------------------------ //

TEST(GovernedLadderTest, UnlimitedBudgetIsExactAndMatchesAdpll) {
  const AdversarialInstance inst = MakeDeepChainInstance(4, 5);
  GovernorOptions options;
  options.max_nodes = 50'000'000;  // Enabled but never binding here.
  const SolverGovernor governor(options);
  Rng rng(1);
  GovernorTally tally;
  const auto governed = governor.Evaluate(inst.condition, inst.dists, {},
                                          {}, rng, nullptr, &tally);
  ASSERT_TRUE(governed.ok());
  EXPECT_TRUE(governed->exact());
  EXPECT_EQ(governed->quality, ProbQuality::kExact);
  EXPECT_EQ(tally.tier_exact, 1u);
  EXPECT_EQ(tally.budget_exhausted, 0u);
  const auto exact = AdpllProbability(inst.condition, inst.dists);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(governed->lo, exact.value());  // Bit-identical, not near.
  EXPECT_NEAR(governed->lo, inst.exact_probability, 1e-9);
}

TEST(GovernedLadderTest, TinyBudgetTerminatesWithSoundInterval) {
  for (const AdversarialInstance& inst :
       {MakeDeepChainInstance(7, 6), MakeWideChainConjunctInstance(6, 6)}) {
    GovernorOptions options;
    options.max_nodes = 8;
    options.ladder = LadderMode::kInterval;  // Sound bounds only.
    const SolverGovernor governor(options);
    Rng rng(2);
    GovernorTally tally;
    const auto r = governor.Evaluate(inst.condition, inst.dists, {}, {},
                                     rng, nullptr, &tally);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(tally.budget_exhausted, 1u);
    // Partial bounds (and the [0,1] fallback) must contain the truth.
    EXPECT_TRUE(ContainsApprox(*r, inst.exact_probability))
        << "[" << r->lo << ", " << r->hi << "] vs "
        << inst.exact_probability;
    EXPECT_TRUE(r->quality == ProbQuality::kPartialBound ||
                r->quality == ProbQuality::kUnknown)
        << static_cast<int>(r->quality);
  }
}

TEST(GovernedLadderTest, FullLadderIsDeterministicAcrossRepeats) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  GovernorOptions options;
  options.max_nodes = 8;
  options.ladder = LadderMode::kFull;
  const SolverGovernor governor(options);
  auto solve = [&] {
    Rng rng(7);
    GovernorTally tally;
    auto r = governor.Evaluate(inst.condition, inst.dists, {}, {}, rng,
                               nullptr, &tally);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  const ProbInterval a = solve();
  const ProbInterval b = solve();
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.quality, b.quality);
}

TEST(GovernedLadderTest, StrictLadderDegradesToUnknown) {
  const AdversarialInstance inst = MakeWideChainConjunctInstance(6, 6);
  GovernorOptions options;
  options.max_nodes = 4;
  options.ladder = LadderMode::kStrict;
  const SolverGovernor governor(options);
  Rng rng(3);
  GovernorTally tally;
  const auto r = governor.Evaluate(inst.condition, inst.dists, {}, {},
                                   rng, nullptr, &tally);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quality, ProbQuality::kUnknown);
  EXPECT_EQ(r->lo, 0.0);
  EXPECT_EQ(r->hi, 1.0);
  EXPECT_EQ(tally.tier_unknown, 1u);
  EXPECT_EQ(tally.tier_sampled, 0u);
  EXPECT_EQ(tally.tier_partial, 0u);
}

TEST(GovernedLadderTest, SampleLadderCoversTruthWithCI) {
  const AdversarialInstance inst = MakeWideChainConjunctInstance(6, 6);
  GovernorOptions options;
  options.max_nodes = 4;
  options.ladder = LadderMode::kSample;
  options.interval_samples = 4096;
  const SolverGovernor governor(options);
  Rng rng(11);
  GovernorTally tally;
  const auto r = governor.Evaluate(inst.condition, inst.dists, {}, {},
                                   rng, nullptr, &tally);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->quality, ProbQuality::kSampledCI);
  EXPECT_EQ(tally.tier_sampled, 1u);
  // A 99% CI over 4096 samples on a fixed stream; the margin is wide
  // enough that this is deterministic here, not a flaky statistical
  // assertion.
  EXPECT_TRUE(ContainsApprox(*r, inst.exact_probability))
      << "[" << r->lo << ", " << r->hi << "] vs " << inst.exact_probability;
  EXPECT_LT(r->width(), 0.2);
}

TEST(GovernedLadderTest, NaiveTierHonorsBudgetAndBounds) {
  const AdversarialInstance inst = MakeDeepChainInstance(4, 5);
  GovernorOptions options;
  options.max_nodes = 100;  // levels^(depth+1) = 3125 assignments total.
  options.ladder = LadderMode::kInterval;
  const SolverGovernor governor(options);
  Rng rng(5);
  GovernorTally tally;
  const auto r = governor.EvaluateNaive(inst.condition, inst.dists, {},
                                        {}, rng, &tally);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(tally.budget_exhausted, 1u);
  EXPECT_FALSE(r->exact());
  EXPECT_TRUE(ContainsApprox(*r, inst.exact_probability));
}

TEST(GovernedLadderTest, PessimisticPointIsTheLeastInformative) {
  EXPECT_EQ(PessimisticPoint(ProbInterval{0.6, 0.9, ProbQuality::kPartialBound}),
            0.6);
  EXPECT_EQ(PessimisticPoint(ProbInterval{0.1, 0.4, ProbQuality::kPartialBound}),
            0.4);
  EXPECT_EQ(PessimisticPoint(ProbInterval{0.2, 0.8, ProbQuality::kPartialBound}),
            0.5);
  EXPECT_EQ(PessimisticPoint(ProbInterval::Exact(0.7)), 0.7);
}

// ------------------------------------------------------------------ //
// Evaluator integration: budget tiers must not alias in the cache
// ------------------------------------------------------------------ //

ProbabilityEvaluator MakeGovernedEvaluator(const AdversarialInstance& inst,
                                           std::uint64_t max_nodes) {
  ProbabilityOptions options;
  options.governor.max_nodes = max_nodes;
  options.governor.ladder = LadderMode::kInterval;
  ProbabilityEvaluator evaluator(options);
  evaluator.distributions() = inst.dists;
  return evaluator;
}

TEST(GovernedEvaluatorTest, RaisingTheBudgetRecomputesInsteadOfServing) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);

  // Low budget: a degraded interval goes into the cache.
  ProbabilityEvaluator evaluator = MakeGovernedEvaluator(inst, 8);
  const auto low = evaluator.ProbabilityInterval(inst.condition);
  ASSERT_TRUE(low.ok());
  ASSERT_FALSE(low->exact());
  EXPECT_TRUE(evaluator.IsCached(inst.condition));

  // Same evaluator, governor disabled: the low-budget entry's stamp no
  // longer matches, so the lookup recomputes an exact answer instead of
  // serving the degraded interval.
  evaluator.options().governor = GovernorOptions{};
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
  const auto exact = evaluator.ProbabilityInterval(inst.condition);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->exact());
  EXPECT_NEAR(exact->lo, inst.exact_probability, 1e-9);

  // And back down: the exact entry must not satisfy the low-budget
  // configuration either (its tag differs), keeping runs reproducible
  // under either configuration.
  evaluator.options().governor.max_nodes = 8;
  evaluator.options().governor.ladder = LadderMode::kInterval;
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
  const auto low_again = evaluator.ProbabilityInterval(inst.condition);
  ASSERT_TRUE(low_again.ok());
  EXPECT_EQ(low_again->lo, low->lo);
  EXPECT_EQ(low_again->hi, low->hi);
  EXPECT_EQ(low_again->quality, low->quality);
}

TEST(GovernedEvaluatorTest, SolverStatsReportTheWalk) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  ProbabilityEvaluator evaluator = MakeGovernedEvaluator(inst, 8);
  ASSERT_TRUE(evaluator.ProbabilityInterval(inst.condition).ok());
  const GovernorTally tally = evaluator.solver_stats();
  EXPECT_EQ(tally.budget_exhausted, 1u);
  EXPECT_EQ(tally.tier_partial + tally.tier_unknown, 1u);
}

// ------------------------------------------------------------------ //
// Framework: a governed end-to-end run
// ------------------------------------------------------------------ //

BayesCrowdResult RunGoverned(std::uint64_t max_nodes,
                             std::size_t breaker_threshold,
                             std::size_t threads = 1) {
  Rng rng(0xADBEEF);
  const Table truth = MakeNbaLike(60, /*seed=*/9);
  const Table incomplete = InjectMissingUniform(truth, 0.2, rng);
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;  // Keep undecided objects alive.
  options.budget = 16;
  options.latency = 4;
  // UBS scores every eligible candidate in one batch, so solver tallies
  // are thread-count invariant (HHS's pool-sized scoring waves evaluate
  // a few extra candidates past the stop point on wider pools — results
  // stay bit-identical but the solve *counts* differ).
  options.strategy.kind = StrategyKind::kUbs;
  options.threads = threads;
  options.probability.governor.max_nodes = max_nodes;
  options.breaker_threshold = breaker_threshold;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  SimulatedCrowdPlatform platform(truth, {});
  auto result = framework.Run(incomplete, posteriors, platform);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

TEST(GovernedFrameworkTest, TinyBudgetRunCompletesWithGrades) {
  const BayesCrowdResult result = RunGoverned(/*max_nodes=*/4,
                                              /*breaker_threshold=*/2);
  // Every returned interval is a valid graded answer containing its own
  // reported point probability.
  ASSERT_EQ(result.probability_intervals.size(),
            result.probabilities.size());
  for (std::size_t i = 0; i < result.probabilities.size(); ++i) {
    const ProbInterval& interval = result.probability_intervals[i];
    EXPECT_LE(interval.lo, interval.hi);
    EXPECT_TRUE(interval.Contains(result.probabilities[i]));
  }
  // degraded_objects lists exactly the non-exact final answers.
  for (const std::size_t id : result.degraded_objects) {
    ASSERT_LT(id, result.probability_intervals.size());
    EXPECT_FALSE(result.probability_intervals[id].exact());
  }
  EXPECT_GT(result.solver.tier_exact + result.solver.tier_partial +
                result.solver.tier_sampled + result.solver.tier_unknown,
            0u);
}

TEST(GovernedFrameworkTest, GovernedRunDeterministicAcrossThreadCounts) {
  const BayesCrowdResult r1 = RunGoverned(6, 2, /*threads=*/1);
  const BayesCrowdResult r8 = RunGoverned(6, 2, /*threads=*/8);
  EXPECT_EQ(r1.result_objects, r8.result_objects);
  ASSERT_EQ(r1.probabilities.size(), r8.probabilities.size());
  for (std::size_t i = 0; i < r1.probabilities.size(); ++i) {
    EXPECT_EQ(r1.probabilities[i], r8.probabilities[i]) << "object " << i;
    EXPECT_EQ(r1.probability_intervals[i].lo,
              r8.probability_intervals[i].lo);
    EXPECT_EQ(r1.probability_intervals[i].hi,
              r8.probability_intervals[i].hi);
    EXPECT_EQ(r1.probability_intervals[i].quality,
              r8.probability_intervals[i].quality);
  }
  EXPECT_EQ(r1.degraded_objects, r8.degraded_objects);
  EXPECT_EQ(r1.solver.tier_exact, r8.solver.tier_exact);
  EXPECT_EQ(r1.solver.tier_partial, r8.solver.tier_partial);
  EXPECT_EQ(r1.solver.tier_sampled, r8.solver.tier_sampled);
  EXPECT_EQ(r1.solver.tier_unknown, r8.solver.tier_unknown);
}

TEST(GovernedFrameworkTest, UnlimitedGovernorMatchesUngovernedRun) {
  // A huge budget is "enabled" yet never binds: every answer must be
  // graded exact and bit-identical to the ungoverned baseline.
  const BayesCrowdResult baseline = RunGoverned(0, 0);  // Inert.
  const BayesCrowdResult governed = RunGoverned(1'000'000'000, 3);
  EXPECT_EQ(baseline.result_objects, governed.result_objects);
  ASSERT_EQ(baseline.probabilities.size(), governed.probabilities.size());
  for (std::size_t i = 0; i < baseline.probabilities.size(); ++i) {
    EXPECT_EQ(baseline.probabilities[i], governed.probabilities[i])
        << "object " << i;
  }
  EXPECT_TRUE(governed.degraded_objects.empty());
  EXPECT_EQ(governed.solver.budget_exhausted, 0u);
}

}  // namespace
}  // namespace bayescrowd
