// Property tests for Bayesian-network inference: on random small
// networks, variable elimination must match brute-force enumeration
// exactly, and the samplers must converge to it.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "bayesnet/inference.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "data/generators.h"
#include "skyline/algorithms.h"

namespace bayescrowd {
namespace {

// Random DAG + random CPTs over `d` nodes with mixed cardinalities.
BayesianNetwork RandomNetwork(std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  for (std::size_t v = 0; v < d; ++v) {
    schema.AddAttribute("x" + std::to_string(v),
                        static_cast<Level>(2 + rng.NextBelow(3)));
  }
  Dag dag(d);
  // Random edges respecting the identity order (i -> j only if i < j).
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      if (rng.NextBool(0.4) && dag.parents(j).size() < 3) {
        BAYESCROWD_CHECK_OK(dag.AddEdge(i, j));
      }
    }
  }
  auto net = BayesianNetwork::Create(schema, dag);
  BAYESCROWD_CHECK_OK(net.status());
  // Random parameters via random counts.
  for (std::size_t v = 0; v < d; ++v) {
    auto& cpt = const_cast<Cpt&>(net->cpt(v));
    cpt.ClearCounts();
    for (std::size_t c = 0; c < cpt.num_parent_configs(); ++c) {
      for (Level value = 0; value < cpt.cardinality(); ++value) {
        cpt.AddCount(value, c, 0.5 + 10.0 * rng.NextDouble());
      }
    }
    cpt.NormalizeWithPrior(0.01);
  }
  return std::move(net).value();
}

std::vector<double> BruteForce(const BayesianNetwork& net,
                               const Evidence& evidence,
                               std::size_t query) {
  const std::size_t d = net.num_nodes();
  std::vector<double> posterior(
      static_cast<std::size_t>(net.schema().domain_size(query)), 0.0);
  std::vector<Level> row(d, 0);
  const std::function<void(std::size_t)> enumerate = [&](std::size_t v) {
    if (v == d) {
      for (const auto& [node, value] : evidence) {
        if (row[node] != value) return;
      }
      posterior[static_cast<std::size_t>(row[query])] +=
          std::exp(net.LogJointProbability(row));
      return;
    }
    for (Level value = 0; value < net.schema().domain_size(v); ++value) {
      row[v] = value;
      enumerate(v + 1);
    }
  };
  enumerate(0);
  double total = 0.0;
  for (double p : posterior) total += p;
  for (double& p : posterior) p /= total;
  return posterior;
}

class RandomNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkTest, VariableEliminationIsExact) {
  const BayesianNetwork net = RandomNetwork(5, GetParam());
  Rng rng(GetParam() ^ 0x7777);
  for (int round = 0; round < 4; ++round) {
    const std::size_t query = rng.NextBelow(net.num_nodes());
    Evidence evidence;
    for (std::size_t v = 0; v < net.num_nodes(); ++v) {
      if (v != query && rng.NextBool(0.4)) {
        evidence[v] = static_cast<Level>(rng.NextBelow(
            static_cast<std::uint64_t>(net.schema().domain_size(v))));
      }
    }
    const auto ve = VariableElimination(net, evidence, query);
    ASSERT_TRUE(ve.ok()) << ve.status();
    const auto brute = BruteForce(net, evidence, query);
    for (std::size_t v = 0; v < brute.size(); ++v) {
      EXPECT_NEAR(ve.value()[v], brute[v], 1e-9)
          << "seed=" << GetParam() << " round=" << round << " v=" << v;
    }
  }
}

TEST_P(RandomNetworkTest, SamplersConvergeToExact) {
  const BayesianNetwork net = RandomNetwork(4, GetParam());
  const std::size_t query = 0;
  Evidence evidence;
  evidence[net.num_nodes() - 1] = 0;
  const auto exact = VariableElimination(net, evidence, query);
  ASSERT_TRUE(exact.ok());

  Rng lw_rng(GetParam() ^ 0xAA);
  const auto lw =
      LikelihoodWeighting(net, evidence, query, 40000, lw_rng);
  ASSERT_TRUE(lw.ok());
  Rng gibbs_rng(GetParam() ^ 0xBB);
  const auto gibbs =
      GibbsSampling(net, evidence, query, 40000, 2000, gibbs_rng);
  ASSERT_TRUE(gibbs.ok());
  for (std::size_t v = 0; v < exact->size(); ++v) {
    EXPECT_NEAR(lw.value()[v], exact.value()[v], 0.03) << "lw v=" << v;
    EXPECT_NEAR(gibbs.value()[v], exact.value()[v], 0.03)
        << "gibbs v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GibbsTest, ValidatesInput) {
  const BayesianNetwork net = RandomNetwork(3, 9);
  Rng rng(1);
  EXPECT_FALSE(GibbsSampling(net, {}, 99, 10, 0, rng).ok());
  EXPECT_FALSE(GibbsSampling(net, {{0, 0}}, 0, 10, 0, rng).ok());
  EXPECT_FALSE(GibbsSampling(net, {{0, 0}}, 1, 0, 0, rng).ok());
}

// ------------------------------------------------------------------ //
// Divide-and-conquer skyline cross-check (three algorithms agree).
// ------------------------------------------------------------------ //

TEST(DivideConquerTest, AgreesWithBnlAcrossWorkloads) {
  for (int round = 0; round < 6; ++round) {
    for (const Table& t :
         {MakeIndependent(500, 4, 8, 400 + round),
          MakeCorrelated(500, 4, 8, 500 + round),
          MakeAnticorrelated(500, 4, 8, 600 + round)}) {
      const auto bnl = SkylineBnl(t);
      const auto dc = SkylineDivideConquer(t);
      ASSERT_TRUE(bnl.ok());
      ASSERT_TRUE(dc.ok()) << dc.status();
      EXPECT_EQ(bnl.value(), dc.value());
    }
  }
}

TEST(DivideConquerTest, HandlesTieHeavyData) {
  // Constant first attribute: the split degenerates to id order.
  Schema schema;
  schema.AddAttribute("a", 4);
  schema.AddAttribute("b", 4);
  Table t(schema);
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    BAYESCROWD_CHECK_OK(t.AppendRow(
        "o" + std::to_string(i),
        {1, static_cast<Level>(rng.NextBelow(4))}));
  }
  const auto bnl = SkylineBnl(t);
  const auto dc = SkylineDivideConquer(t);
  ASSERT_TRUE(bnl.ok());
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(bnl.value(), dc.value());
}

TEST(DivideConquerTest, RejectsIncompleteTable) {
  EXPECT_FALSE(SkylineDivideConquer(MakeSampleMovieDataset()).ok());
}

}  // namespace
}  // namespace bayescrowd
