// End-to-end integration tests: the full preprocessing -> modeling ->
// crowdsourcing pipeline on generated datasets, exactly as the benchmark
// harness runs it.

#include <gtest/gtest.h>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

struct Pipeline {
  Table complete;
  Table incomplete;
  BayesianNetwork network;
  std::vector<std::size_t> ground_truth;
};

Pipeline MakePipeline(std::size_t n, double missing_rate,
                      std::uint64_t seed) {
  Pipeline p;
  p.complete = MakeNbaLike(n, seed, /*levels=*/8);
  Rng rng(seed ^ 0xfeed);
  p.incomplete = InjectMissingUniform(p.complete, missing_rate, rng);

  // Learn structure and parameters from the incomplete table itself
  // (available-case), as the preprocessing step prescribes.
  StructureLearningOptions slo;
  slo.max_parents = 2;
  const auto dag = HillClimbStructure(p.incomplete, slo);
  BAYESCROWD_CHECK_OK(dag.status());
  auto net = BayesianNetwork::Create(p.incomplete.schema(), dag.value());
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(p.incomplete));
  p.network = std::move(net).value();

  const auto truth = SkylineBnl(p.complete);
  BAYESCROWD_CHECK_OK(truth.status());
  p.ground_truth = truth.value();
  return p;
}

TEST(IntegrationTest, PerfectWorkersHighBudgetReachHighF1) {
  Pipeline p = MakePipeline(300, 0.1, 2027);
  BnPosteriorProvider posteriors(p.network, p.incomplete);
  SimulatedCrowdPlatform platform(p.complete, {});

  BayesCrowdOptions options;
  options.ctable.alpha = 0.05;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 15;
  options.budget = 120;
  options.latency = 6;
  BayesCrowd framework(options);
  const auto result = framework.Run(p.incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();

  const auto metrics =
      EvaluateResultSet(result->result_objects, p.ground_truth);
  EXPECT_GT(metrics.f1, 0.9) << "precision=" << metrics.precision
                             << " recall=" << metrics.recall;
}

TEST(IntegrationTest, MoreBudgetNeverHurtsMuch) {
  Pipeline p = MakePipeline(250, 0.15, 11);
  double f1_small = 0.0;
  double f1_large = 0.0;
  for (const std::size_t budget : {std::size_t{10}, std::size_t{150}}) {
    BnPosteriorProvider posteriors(p.network, p.incomplete);
    SimulatedCrowdPlatform platform(p.complete, {});
    BayesCrowdOptions options;
    options.ctable.alpha = 0.05;
    options.budget = budget;
    options.latency = 5;
    BayesCrowd framework(options);
    const auto result = framework.Run(p.incomplete, posteriors, platform);
    ASSERT_TRUE(result.ok());
    const double f1 =
        EvaluateResultSet(result->result_objects, p.ground_truth).f1;
    if (budget == 10) {
      f1_small = f1;
    } else {
      f1_large = f1;
    }
  }
  EXPECT_GE(f1_large, f1_small - 0.02);
}

TEST(IntegrationTest, DeterministicGivenSeeds) {
  Pipeline p = MakePipeline(150, 0.1, 77);
  std::vector<std::size_t> first;
  for (int run = 0; run < 2; ++run) {
    BnPosteriorProvider posteriors(p.network, p.incomplete);
    SimulatedCrowdPlatform platform(p.complete, {});
    BayesCrowdOptions options;
    options.ctable.alpha = 0.05;
    options.budget = 40;
    options.latency = 4;
    BayesCrowd framework(options);
    const auto result = framework.Run(p.incomplete, posteriors, platform);
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      first = result->result_objects;
    } else {
      EXPECT_EQ(result->result_objects, first);
    }
  }
}

TEST(IntegrationTest, StrategiesOrderedByCostAndQuality) {
  // FBS must be the cheapest machine-side; UBS computes the most
  // utilities. All should be reasonably accurate with perfect workers.
  Pipeline p = MakePipeline(250, 0.1, 5150);
  for (const StrategyKind kind :
       {StrategyKind::kFbs, StrategyKind::kUbs, StrategyKind::kHhs}) {
    BnPosteriorProvider posteriors(p.network, p.incomplete);
    SimulatedCrowdPlatform platform(p.complete, {});
    BayesCrowdOptions options;
    options.ctable.alpha = 0.05;
    options.strategy.kind = kind;
    options.budget = 80;
    options.latency = 4;
    BayesCrowd framework(options);
    const auto result = framework.Run(p.incomplete, posteriors, platform);
    ASSERT_TRUE(result.ok()) << StrategyKindToString(kind);
    const double f1 =
        EvaluateResultSet(result->result_objects, p.ground_truth).f1;
    EXPECT_GT(f1, 0.85) << StrategyKindToString(kind);
  }
}

TEST(IntegrationTest, UniformPriorStillWorks) {
  // Without the Bayesian network (zero-knowledge uniform prior) the
  // pipeline must still run end to end.
  Pipeline p = MakePipeline(200, 0.1, 31337);
  UniformPosteriorProvider posteriors(p.incomplete.schema());
  SimulatedCrowdPlatform platform(p.complete, {});
  BayesCrowdOptions options;
  options.ctable.alpha = 0.05;
  options.budget = 60;
  options.latency = 3;
  BayesCrowd framework(options);
  const auto result = framework.Run(p.incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(EvaluateResultSet(result->result_objects, p.ground_truth).f1,
            0.8);
}

TEST(IntegrationTest, AdultLikePipelineRuns) {
  const Table complete = MakeAdultLike(300, 9);
  Rng rng(10);
  const Table incomplete = InjectMissingUniform(complete, 0.1, rng);
  const auto dag = ChowLiuStructure(incomplete);
  ASSERT_TRUE(dag.ok());
  auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
  ASSERT_TRUE(net.ok());
  ASSERT_TRUE(net->FitParameters(incomplete).ok());
  BnPosteriorProvider posteriors(net.value(), incomplete);
  SimulatedCrowdPlatform platform(complete, {});
  BayesCrowdOptions options;
  options.ctable.alpha = 0.1;
  options.budget = 50;
  options.latency = 5;
  BayesCrowd framework(options);
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  EXPECT_GT(EvaluateResultSet(result->result_objects, truth.value()).f1,
            0.7);
}

}  // namespace
}  // namespace bayescrowd
