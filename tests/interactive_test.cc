// Tests for the interactive (human-answered) crowd platform.

#include <gtest/gtest.h>

#include <sstream>

#include "crowd/interactive.h"
#include "data/generators.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

std::vector<Task> TwoTasks() {
  std::vector<Task> tasks(2);
  tasks[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  tasks[1].expression = Expression::VarVar(V(4, 1), CmpOp::kGreater,
                                           V(1, 1));
  return tasks;
}

TEST(InteractiveTest, ParsesShortAndLongAnswers) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("s\nlarger\n");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  const auto answers = platform.PostBatch(TwoTasks());
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers.value()[0].relation, Ordering::kLess);
  EXPECT_EQ(answers.value()[1].relation, Ordering::kGreater);
  EXPECT_EQ(platform.total_tasks(), 2u);
  EXPECT_EQ(platform.total_rounds(), 1u);
}

TEST(InteractiveTest, ParsesSymbolAnswers) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("=\n<\n");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  const auto answers = platform.PostBatch(TwoTasks());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value()[0].relation, Ordering::kEqual);
  EXPECT_EQ(answers.value()[1].relation, Ordering::kLess);
}

TEST(InteractiveTest, ReasksOnGarbageThenSucceeds) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("banana\n42\ne\ns\n");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  const auto answers = platform.PostBatch(TwoTasks());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value()[0].relation, Ordering::kEqual);
  EXPECT_NE(out.str().find("could not parse"), std::string::npos);
}

TEST(InteractiveTest, ThreeGarbageAnswersFail) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("a\nb\nc\n");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  EXPECT_TRUE(platform.PostBatch(TwoTasks()).status().IsInvalidArgument());
}

TEST(InteractiveTest, EofFailsWithIOError) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("s\n");  // Second task gets no answer.
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  EXPECT_TRUE(platform.PostBatch(TwoTasks()).status().IsIOError());
}

TEST(InteractiveTest, QuestionsMentionObjectNames) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("s\ne\n");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  ASSERT_TRUE(platform.PostBatch(TwoTasks()).ok());
  EXPECT_NE(out.str().find("Star Wars"), std::string::npos);
  EXPECT_NE(out.str().find("Se7en"), std::string::npos);
}

TEST(InteractiveTest, EmptyBatchRejected) {
  const Table table = MakeSampleMovieDataset();
  std::istringstream in("");
  std::ostringstream out;
  InteractiveCrowdPlatform platform(table, in, out);
  EXPECT_FALSE(platform.PostBatch({}).ok());
}

}  // namespace
}  // namespace bayescrowd
