// Kill-point harness: a seeded, faulted, checkpointed query session is
// killed at every checkpoint boundary (before the write, after the
// write, and mid-write with a torn tmp file), then resumed in a fresh
// platform stack. The resumed run's telemetry envelope must diff clean
// against the uninterrupted reference modulo wall-clock fields, lane
// usage, and resume markers — the headline guarantee of the
// crash-safety subsystem.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/checkpoint.h"
#include "core/framework.h"
#include "core/session.h"
#include "core/telemetry.h"
#include "crowd/fault_injection.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/normalize.h"

namespace bayescrowd {
namespace {

constexpr std::uint64_t kWorkerSeed = 5;
constexpr char kSessionConfig[] = "killpoint-fixture|sim";

Table KillDataset() {
  Rng rng(0xD15EA5E);
  return InjectMissingUniform(MakeNbaLike(120, kWorkerSeed), 0.15, rng);
}

Table KillTruth() { return MakeNbaLike(120, kWorkerSeed); }

FaultOptions KillFaults() {
  FaultOptions faults = FaultOptions::Profile(0.15, 77);
  faults.answer_noise = 0.1;  // Noisy virtual workers too.
  return faults;
}

BayesCrowdOptions KillOptions(std::size_t threads,
                              obs::MetricsRegistry* metrics) {
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.budget = 18;
  options.latency = 6;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 5;
  options.threads = threads;
  options.metrics = metrics;
  return options;
}

std::uint64_t Fingerprint(const BayesCrowdOptions& options) {
  return ConfigFingerprint(options, "killpoint-data", kSessionConfig);
}

std::string NormalizedEnvelope(const BayesCrowdOptions& options,
                               const BayesCrowdResult& result) {
  obs::NormalizeOptions normalize;
  normalize.strip_lane_usage = true;
  normalize.strip_resume_markers = true;
  return obs::NormalizeTelemetry(
             RunTelemetryJson("killpoint", options, result), normalize)
      .Dump(2);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Forwards `kill_after` writes to the store, then fails the next one —
/// the framework propagates the failure out of Run(), which is the
/// in-process stand-in for SIGKILL at a checkpoint boundary. With
/// `write_before_kill`, the fatal boundary's snapshot still lands on
/// disk first (kill between rename and return).
class KillingSink : public CheckpointSink {
 public:
  KillingSink(CheckpointSink* inner, std::size_t kill_after,
              bool write_before_kill)
      : inner_(inner),
        kill_after_(kill_after),
        write_before_kill_(write_before_kill) {}

  Status Write(const SessionState& state) override {
    if (writes_ == kill_after_) {
      if (write_before_kill_) {
        const Status written = inner_->Write(state);
        if (!written.ok()) return written;
      }
      return Status::Unavailable("simulated kill at checkpoint boundary");
    }
    ++writes_;
    return inner_->Write(state);
  }

 private:
  CheckpointSink* inner_;
  std::size_t kill_after_;
  bool write_before_kill_;
  std::size_t writes_ = 0;
};

/// The uninterrupted reference: same seeds, same fault schedule, no
/// checkpoint machinery at all (also proves checkpointing is
/// behavior-neutral when compared against the checkpointed runs).
struct Reference {
  BayesCrowdResult result;
  std::string envelope;
};

Reference RunReference(std::size_t threads) {
  const Table incomplete = KillDataset();
  const Table truth = KillTruth();
  UniformPosteriorProvider posteriors(incomplete.schema());
  obs::MetricsRegistry metrics;
  const BayesCrowdOptions options = KillOptions(threads, &metrics);
  SimulatedCrowdPlatform sim(truth, {.worker_accuracy = 0.95,
                                     .seed = kWorkerSeed});
  FaultInjectingPlatform faulter(sim, KillFaults());
  faulter.BindMetrics(&metrics);
  BayesCrowd framework(options);
  auto result = framework.Run(incomplete, posteriors, faulter);
  BAYESCROWD_CHECK_OK(result.status());
  Reference out;
  out.envelope = NormalizedEnvelope(options, result.value());
  out.result = std::move(result).value();
  return out;
}

/// One checkpointed session (fresh or resumed) against the durable
/// state in `dir`. Returns Run()'s status; on success fills `result`
/// and `envelope`.
Status RunSession(std::size_t threads, const std::string& dir,
                  bool resume, CheckpointSink* sink_override,
                  CheckpointStore* store, BayesCrowdResult* result,
                  std::string* envelope, std::size_t* fallbacks) {
  const Table incomplete = KillDataset();
  const Table truth = KillTruth();
  UniformPosteriorProvider posteriors(incomplete.schema());
  obs::MetricsRegistry metrics;
  BayesCrowdOptions options = KillOptions(threads, &metrics);
  options.checkpoint_every = 1;

  SimulatedCrowdPlatform sim(truth, {.worker_accuracy = 0.95,
                                     .seed = kWorkerSeed});
  FaultInjectingPlatform faulter(sim, KillFaults());
  faulter.BindMetrics(&metrics);
  CrowdPlatform* effective = &faulter;

  const std::string log_path = dir + "/answers.log";
  std::filesystem::create_directories(dir);

  std::unique_ptr<RecoveredSession> recovered;
  std::unique_ptr<ReplayingPlatform> replayer;
  std::size_t base_log_offset = 0;
  std::size_t already_durable = 0;
  bool truncate_log = true;
  if (resume) {
    auto session = RecoverSession(dir, log_path, Fingerprint(options));
    if (!session.ok()) return session.status();
    recovered =
        std::make_unique<RecoveredSession>(std::move(session).value());
    if (fallbacks != nullptr) *fallbacks = recovered->fallbacks;
    base_log_offset = recovered->state.answer_log_offset;
    already_durable = recovered->durable_entries - base_log_offset;
    truncate_log = false;
    replayer = std::make_unique<ReplayingPlatform>(recovered->replay_tail,
                                                   effective);
    replayer->SetBaseTotals(recovered->state.platform_tasks,
                            recovered->state.platform_rounds);
    effective = replayer.get();
    // A from-scratch recovery (killed before the first checkpoint) has
    // no state to restore — the full-log replay rebuilds everything.
    if (!recovered->from_scratch) options.resume = &recovered->state;
    metrics.GetCounter("recovery.resumed")->Increment();
    metrics.GetCounter("recovery.fallback")
        ->Increment(recovered->fallbacks);
  }

  auto log_sink =
      FileAnswerLogSink::Open(log_path, already_durable, truncate_log);
  if (!log_sink.ok()) return log_sink.status();
  RecordingPlatform recorder(*effective, log_sink->get());

  SessionCheckpointSink session_sink(
      sink_override != nullptr ? sink_override : store, &recorder,
      base_log_offset, /*network_blob=*/"", Fingerprint(options));
  options.checkpoint_sink = &session_sink;

  BayesCrowd framework(options);
  auto run = framework.Run(incomplete, posteriors, recorder);
  if (!run.ok()) return run.status();
  if (envelope != nullptr) *envelope = NormalizedEnvelope(options, *run);
  if (result != nullptr) *result = std::move(run).value();
  return Status::OK();
}

/// Counts the checkpoint boundaries of an uninterrupted checkpointed
/// run (= rounds, with checkpoint_every=1).
std::size_t CountBoundaries(std::size_t threads) {
  const std::string dir = FreshDir("bc_kp_count");
  CheckpointStore store({.dir = dir});
  BayesCrowdResult result;
  std::string envelope;
  BAYESCROWD_CHECK_OK(RunSession(threads, dir, /*resume=*/false,
                                 /*sink_override=*/nullptr, &store,
                                 &result, &envelope, nullptr));
  return result.rounds;
}

void ExpectKillResumeDiffsClean(std::size_t threads,
                                const Reference& reference,
                                std::size_t kill_point,
                                bool write_before_kill) {
  SCOPED_TRACE("threads=" + std::to_string(threads) +
               " kill_point=" + std::to_string(kill_point) +
               (write_before_kill ? " after-write" : " before-write"));
  const std::string dir = FreshDir(
      "bc_kp_" + std::to_string(threads) + "_" +
      std::to_string(kill_point) + (write_before_kill ? "a" : "b"));
  CheckpointStore store({.dir = dir});

  KillingSink killer(&store, kill_point, write_before_kill);
  const Status killed =
      RunSession(threads, dir, /*resume=*/false, &killer, &store,
                 nullptr, nullptr, nullptr);
  ASSERT_TRUE(killed.IsUnavailable()) << killed.ToString();

  BayesCrowdResult resumed;
  std::string envelope;
  const Status ok =
      RunSession(threads, dir, /*resume=*/true, /*sink_override=*/nullptr,
                 &store, &resumed, &envelope, nullptr);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  // kill_point 0 / before-write recovers from scratch (no snapshot
  // existed yet), so `resumed` is legitimately false there.
  if (kill_point > 0 || write_before_kill) EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(envelope, reference.envelope);
}

// ------------------------------------------------------------------ //
// Kill at every boundary, single-threaded
// ------------------------------------------------------------------ //

TEST(KillPointTest, EveryBoundarySingleThread) {
  const Reference reference = RunReference(1);
  const std::size_t boundaries = CountBoundaries(1);
  ASSERT_GE(boundaries, 2u) << "fixture too small to exercise resume";
  for (std::size_t k = 0; k < boundaries; ++k) {
    ExpectKillResumeDiffsClean(1, reference, k, /*write_before_kill=*/false);
    ExpectKillResumeDiffsClean(1, reference, k, /*write_before_kill=*/true);
  }
}

// ------------------------------------------------------------------ //
// Kill at every boundary, 8 threads (results are thread-invariant, so
// the same reference envelope must emerge)
// ------------------------------------------------------------------ //

TEST(KillPointTest, EveryBoundaryEightThreads) {
  const Reference reference = RunReference(8);
  const std::size_t boundaries = CountBoundaries(8);
  ASSERT_GE(boundaries, 2u);
  for (std::size_t k = 0; k < boundaries; ++k) {
    ExpectKillResumeDiffsClean(8, reference, k, /*write_before_kill=*/false);
    ExpectKillResumeDiffsClean(8, reference, k, /*write_before_kill=*/true);
  }
}

TEST(KillPointTest, ThreadCountsAgreeOnReference) {
  // The envelope embeds options.threads, so compare the results
  // themselves: the query outcome must be thread-invariant.
  const Reference a = RunReference(1);
  const Reference b = RunReference(8);
  EXPECT_EQ(a.result.result_objects, b.result.result_objects);
  EXPECT_EQ(a.result.probabilities, b.result.probabilities);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.tasks_posted, b.result.tasks_posted);
  EXPECT_EQ(a.result.cost_spent, b.result.cost_spent);
  EXPECT_EQ(a.result.cost_refunded, b.result.cost_refunded);
  EXPECT_EQ(a.result.simulated_seconds, b.result.simulated_seconds);
}

// ------------------------------------------------------------------ //
// Mid-write kill: the tmp file is torn AND promoted by the rename, then
// the process dies. Recovery must fall back past the torn generation.
// ------------------------------------------------------------------ //

TEST(KillPointTest, TornCheckpointWriteFallsBackAGeneration) {
  const Reference reference = RunReference(1);
  const std::string dir = FreshDir("bc_kp_torn");

  std::size_t writes = 0;
  CheckpointStore::Options tearing;
  tearing.dir = dir;
  tearing.pre_rename_hook = [&writes](const std::string& tmp_path) {
    if (++writes < 2) return Status::OK();  // Tear the second boundary.
    std::error_code ec;
    std::filesystem::resize_file(
        tmp_path, std::filesystem::file_size(tmp_path) / 2, ec);
    return ec ? Status::IOError(ec.message()) : Status::OK();
  };
  CheckpointStore tearing_store(tearing);
  // Kill right after the torn write was "successfully" promoted.
  KillingSink killer(&tearing_store, 2, /*write_before_kill=*/false);
  const Status killed =
      RunSession(1, dir, /*resume=*/false, &killer, &tearing_store,
                 nullptr, nullptr, nullptr);
  ASSERT_TRUE(killed.IsUnavailable()) << killed.ToString();

  CheckpointStore store({.dir = dir});
  BayesCrowdResult resumed;
  std::string envelope;
  std::size_t fallbacks = 0;
  const Status ok =
      RunSession(1, dir, /*resume=*/true, /*sink_override=*/nullptr,
                 &store, &resumed, &envelope, &fallbacks);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_GE(fallbacks, 1u);  // recovery.fallback
  EXPECT_EQ(envelope, reference.envelope);
}

// ------------------------------------------------------------------ //
// Corrupted newest snapshot after a clean shutdown: resume falls back
// to the previous generation and replays the final round from the log.
// ------------------------------------------------------------------ //

TEST(KillPointTest, CorruptNewestSnapshotFallsBackAndReplays) {
  const Reference reference = RunReference(1);
  const std::string dir = FreshDir("bc_kp_corrupt");
  CheckpointStore store({.dir = dir});
  BayesCrowdResult first;
  std::string first_envelope;
  BAYESCROWD_CHECK_OK(RunSession(1, dir, /*resume=*/false,
                                 /*sink_override=*/nullptr, &store, &first,
                                 &first_envelope, nullptr));
  EXPECT_EQ(first_envelope, reference.envelope);

  const auto generations = store.ListGenerations();
  ASSERT_GE(generations.size(), 2u);
  const std::string newest = dir + "/" + generations.back();
  {
    std::filesystem::resize_file(newest,
                                 std::filesystem::file_size(newest) / 3);
  }

  BayesCrowdResult resumed;
  std::string envelope;
  std::size_t fallbacks = 0;
  const Status ok =
      RunSession(1, dir, /*resume=*/true, /*sink_override=*/nullptr,
                 &store, &resumed, &envelope, &fallbacks);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_GE(fallbacks, 1u);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(envelope, reference.envelope);
}

}  // namespace
}  // namespace bayescrowd
