// Tests for the adversarial crowd marketplace: seeded determinism
// across thread counts, checkpoint ('M' chunk) round-trips, quarantine
// targeting under a spam storm, the degradation ladder, and adaptive
// vote budgeting through the framework.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/binio.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/marketplace.h"
#include "crowd/record_replay.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

MarketplaceOptions StormOptions() {
  MarketplaceOptions options;
  options.pool_size = 20;
  options.spam_rate = 0.3;
  options.max_votes = 5;
  options.seed = 99;
  return options;
}

// Synthetic comparison batch over attribute 0 of consecutive objects —
// enough volume per round that the joint inference gets a signal.
std::vector<Task> ComparisonBatch(std::size_t objects) {
  std::vector<Task> batch;
  for (std::size_t i = 0; i + 1 < objects; ++i) {
    Task task;
    task.expression.lhs = {i, 0};
    task.expression.rhs_is_var = true;
    task.expression.rhs_var = {i + 1, 0};
    batch.push_back(task);
  }
  return batch;
}

TEST(MarketplaceTest, SeededRunsAreBitIdentical) {
  const Table truth = MakeCorrelated(40, 4, 8, 7);
  MarketplaceCrowdPlatform a(truth, StormOptions());
  MarketplaceCrowdPlatform b(truth, StormOptions());
  const auto batch = ComparisonBatch(20);
  for (int round = 0; round < 6; ++round) {
    const auto answers_a = a.PostBatch(batch);
    const auto answers_b = b.PostBatch(batch);
    ASSERT_TRUE(answers_a.ok());
    ASSERT_TRUE(answers_b.ok());
    ASSERT_EQ(answers_a->size(), answers_b->size());
    for (std::size_t t = 0; t < answers_a->size(); ++t) {
      EXPECT_EQ(answers_a->at(t).answered, answers_b->at(t).answered);
      EXPECT_EQ(answers_a->at(t).relation, answers_b->at(t).relation);
      ASSERT_EQ(answers_a->at(t).votes.size(),
                answers_b->at(t).votes.size());
      for (std::size_t v = 0; v < answers_a->at(t).votes.size(); ++v) {
        EXPECT_EQ(answers_a->at(t).votes[v].worker,
                  answers_b->at(t).votes[v].worker);
        EXPECT_EQ(answers_a->at(t).votes[v].answer,
                  answers_b->at(t).votes[v].answer);
        EXPECT_DOUBLE_EQ(answers_a->at(t).votes[v].work_seconds,
                         answers_b->at(t).votes[v].work_seconds);
      }
    }
  }
  std::string state_a;
  std::string state_b;
  a.SaveState(&state_a);
  b.SaveState(&state_b);
  EXPECT_EQ(state_a, state_b);
}

TEST(MarketplaceTest, StateChunkRoundTripResumesIdentically) {
  const Table truth = MakeCorrelated(40, 4, 8, 7);
  MarketplaceCrowdPlatform original(truth, StormOptions());
  const auto batch = ComparisonBatch(20);
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(original.PostBatch(batch).ok());
  }

  std::string state;
  original.SaveState(&state);

  // A fresh platform restored from the chunk must carry the learned
  // reputations (same quarantine set, same stats) and continue on the
  // identical random stream.
  MarketplaceCrowdPlatform restored(truth, StormOptions());
  ASSERT_EQ(state.front(), 'M');  // The chunk tag LoadState re-reads.
  BinReader reader(state);
  ASSERT_TRUE(restored.LoadState(&reader).ok());

  EXPECT_EQ(restored.quarantined_workers(),
            original.quarantined_workers());
  EXPECT_EQ(restored.active_workers(), original.active_workers());
  EXPECT_EQ(restored.stats().votes_cast, original.stats().votes_cast);
  EXPECT_EQ(restored.stats().gold_tasks, original.stats().gold_tasks);
  EXPECT_EQ(restored.total_rounds(), original.total_rounds());

  std::string resaved;
  restored.SaveState(&resaved);
  EXPECT_EQ(resaved, state);

  const auto next_original = original.PostBatch(batch);
  const auto next_restored = restored.PostBatch(batch);
  ASSERT_TRUE(next_original.ok());
  ASSERT_TRUE(next_restored.ok());
  for (std::size_t t = 0; t < next_original->size(); ++t) {
    EXPECT_EQ(next_original->at(t).relation,
              next_restored->at(t).relation);
    ASSERT_EQ(next_original->at(t).votes.size(),
              next_restored->at(t).votes.size());
    for (std::size_t v = 0; v < next_original->at(t).votes.size(); ++v) {
      EXPECT_EQ(next_original->at(t).votes[v].worker,
                next_restored->at(t).votes[v].worker);
    }
  }

  // Truncated chunks fail cleanly.
  MarketplaceCrowdPlatform corrupt(truth, StormOptions());
  BinReader bad(std::string_view(state).substr(0, state.size() / 3));
  EXPECT_FALSE(corrupt.LoadState(&bad).ok());
}

TEST(MarketplaceTest, QuarantineTargetsAdversariesNotHonestWorkers) {
  const Table truth = MakeCorrelated(40, 4, 8, 7);
  MarketplaceCrowdPlatform market(truth, StormOptions());
  const auto batch = ComparisonBatch(20);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(market.PostBatch(batch).ok());
  }

  // The storm must be detected...
  EXPECT_GT(market.quarantined_workers(), 0u);
  EXPECT_GT(market.stats().gold_tasks, 0u);

  // ...and no honest worker may be collateral damage: the gold anchor
  // plus work-time gates keep the flags on spammers/colluders (sloppy
  // workers may legitimately trip the accuracy floor).
  const auto& quality = market.quality();
  std::size_t flagged_adversaries = 0;
  for (std::size_t w = 0; w < quality.num_workers(); ++w) {
    if (!quality.Quarantined(w)) continue;
    const WorkerProfile profile =
        market.worker_profile(static_cast<std::uint32_t>(w));
    EXPECT_NE(profile, WorkerProfile::kHonest) << "worker " << w;
    if (profile == WorkerProfile::kSpammer ||
        profile == WorkerProfile::kColluder) {
      flagged_adversaries += 1;
    }
  }
  EXPECT_GT(flagged_adversaries, 0u);

  // Quarantined workers are never assigned again. Snapshot the set
  // first: a worker can be newly flagged by the very round they voted
  // in, which is allowed — flagged *before* the round is not.
  std::vector<bool> flagged(quality.num_workers());
  for (std::size_t w = 0; w < flagged.size(); ++w) {
    flagged[w] = quality.Quarantined(w);
  }
  const auto answers = market.PostBatch(batch);
  ASSERT_TRUE(answers.ok());
  for (const TaskAnswer& answer : *answers) {
    for (const VoteRecord& vote : answer.votes) {
      ASSERT_LT(vote.worker, flagged.size());
      EXPECT_FALSE(flagged[vote.worker])
          << "vote from quarantined worker " << vote.worker;
    }
  }
}

TEST(MarketplaceTest, BaselineArmNeverQuarantinesOrAbstains) {
  const Table truth = MakeCorrelated(40, 4, 8, 7);
  MarketplaceOptions options = StormOptions();
  options.defend = false;
  options.max_votes = options.base_votes;  // Flat 3-vote majority.
  MarketplaceCrowdPlatform market(truth, options);
  const auto batch = ComparisonBatch(20);
  for (int round = 0; round < 6; ++round) {
    const auto answers = market.PostBatch(batch);
    ASSERT_TRUE(answers.ok());
    for (const TaskAnswer& answer : *answers) {
      EXPECT_TRUE(answer.answered);
      EXPECT_EQ(answer.votes.size(),
                static_cast<std::size_t>(options.base_votes));
    }
  }
  EXPECT_EQ(market.quarantined_workers(), 0u);
  EXPECT_EQ(market.stats().abstained_tasks, 0u);
  EXPECT_EQ(market.stats().extra_votes, 0u);
  EXPECT_EQ(market.stats().gold_tasks, 0u);  // Audits need the defense.
}

TEST(MarketplaceTest, AdaptiveAllocationSpendsOnlyWhenUnconfident) {
  const Table truth = MakeCorrelated(40, 4, 8, 7);
  MarketplaceOptions options = StormOptions();
  options.spam_rate = 0.0;  // A clean crowd...
  MarketplaceCrowdPlatform market(truth, options);
  const auto batch = ComparisonBatch(20);
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(market.PostBatch(batch).ok());
  }
  // ...settles most tasks at base fan-out: extra votes stay rare
  // rather than maxing out on every task.
  const auto& stats = market.stats();
  const std::uint64_t max_possible =
      stats.votes_cast == 0
          ? 0
          : market.total_tasks() *
                static_cast<std::uint64_t>(options.max_votes -
                                           options.base_votes);
  EXPECT_LT(stats.extra_votes, max_possible / 2);
}

TEST(MarketplaceTest, RejectsIncompleteGroundTruth) {
  Rng rng(3);
  const Table incomplete =
      InjectMissingUniform(MakeCorrelated(20, 3, 6, 7), 0.3, rng);
  MarketplaceCrowdPlatform market(incomplete, StormOptions());
  const auto answers = market.PostBatch(ComparisonBatch(10));
  EXPECT_FALSE(answers.ok());
}

// ------------------------------------------------------------------ //
// Framework integration: thread invariance + adaptive budget charging
// ------------------------------------------------------------------ //

BayesCrowdResult RunStorm(std::size_t threads, AnswerLog* log) {
  const Table truth = MakeAnticorrelated(60, 4, 6, 5);
  Rng rng(5);
  const Table incomplete = InjectMissingUniform(truth, 0.3, rng);

  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;  // Keep objects undecided into querying.
  options.budget = 300;
  options.latency = 3;
  options.threads = threads;
  options.adaptive.enabled = true;
  options.adaptive.base_votes = 3;
  options.adaptive.max_votes = 5;

  MarketplaceOptions market_options = StormOptions();
  MarketplaceCrowdPlatform market(truth, market_options);
  RecordingPlatform recorder(market);

  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  auto result = framework.Run(incomplete, posteriors, recorder);
  BAYESCROWD_CHECK_OK(result.status());
  if (log != nullptr) *log = recorder.log();
  return std::move(result).value();
}

TEST(MarketplaceFrameworkTest, OneVsEightThreadsBitIdentical) {
  AnswerLog log1;
  AnswerLog log8;
  const BayesCrowdResult r1 = RunStorm(1, &log1);
  const BayesCrowdResult r8 = RunStorm(8, &log8);

  // The serialized v3 logs — every task, aggregate, and per-vote
  // worker/answer/work-time token — must match byte for byte.
  EXPECT_EQ(SerializeAnswerLog(log1), SerializeAnswerLog(log8));
  EXPECT_EQ(r1.result_objects, r8.result_objects);
  EXPECT_EQ(r1.extra_votes, r8.extra_votes);
  EXPECT_EQ(r1.cost_spent, r8.cost_spent);
}

TEST(MarketplaceFrameworkTest, ExtraVotesAreChargedAgainstBudget) {
  AnswerLog log;
  const BayesCrowdResult result = RunStorm(2, &log);
  ASSERT_GT(result.extra_votes, 0u);

  // cost = answered tasks + extra_votes / 3 (the default per-vote
  // surcharge), and the charge never exceeds the budget.
  std::size_t answered = 0;
  std::size_t extra = 0;
  for (const AnswerLogEntry& entry : log.entries) {
    if (entry.kind != AnswerLogEntry::Kind::kAnswer) continue;
    answered += 1;
    if (entry.votes.size() > 3) extra += entry.votes.size() - 3;
  }
  EXPECT_EQ(extra, result.extra_votes);
  EXPECT_NEAR(result.cost_spent,
              static_cast<double>(answered) +
                  static_cast<double>(extra) / 3.0,
              1e-9);
  EXPECT_LE(result.cost_spent, 300.0 + 1e-9);
}

}  // namespace
}  // namespace bayescrowd
