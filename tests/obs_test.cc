// Tests for the observability layer: the JSON model, the metrics
// registry (including concurrent increments through the thread pool),
// the scoped-span tracer and its Chrome trace output, run telemetry,
// logging levels, and — most importantly — that instrumentation is
// deterministic-neutral: bit-identical pipeline results with obs fully
// on versus fully off, at 1 and 8 threads.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/framework.h"
#include "core/telemetry.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace bayescrowd {
namespace {

using obs::JsonValue;

// ------------------------------------------------------------------ //
// JsonValue
// ------------------------------------------------------------------ //

TEST(JsonTest, DumpAndParseRoundTrip) {
  JsonValue doc = JsonValue::Object();
  doc["int"] = 42;
  doc["neg"] = -7;
  doc["pi"] = 3.5;
  doc["flag"] = true;
  doc["nothing"] = JsonValue();
  doc["text"] = "line\n\"quoted\"\tand\\slash";
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(false);
  doc["arr"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const auto parsed = JsonValue::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue& v = *parsed;
    EXPECT_EQ(v.Find("int")->AsInt(), 42);
    EXPECT_EQ(v.Find("int")->kind(), JsonValue::Kind::kInt);
    EXPECT_EQ(v.Find("neg")->AsInt(), -7);
    EXPECT_DOUBLE_EQ(v.Find("pi")->AsDouble(), 3.5);
    EXPECT_EQ(v.Find("pi")->kind(), JsonValue::Kind::kDouble);
    EXPECT_TRUE(v.Find("flag")->AsBool());
    EXPECT_TRUE(v.Find("nothing")->is_null());
    EXPECT_EQ(v.Find("text")->AsString(),
              "line\n\"quoted\"\tand\\slash");
    ASSERT_EQ(v.Find("arr")->size(), 3u);
    EXPECT_EQ(v.Find("arr")->at(1).AsString(), "two");
  }
}

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  JsonValue doc = JsonValue::Object();
  doc["zebra"] = 1;
  doc["apple"] = 2;
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[1].first, "apple");
  const std::string text = doc.Dump();
  EXPECT_LT(text.find("zebra"), text.find("apple"));
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\x\"").ok());
  EXPECT_TRUE(JsonValue::Parse("  [1, 2, 3]  ").ok());
  EXPECT_TRUE(JsonValue::Parse("\"\\u0041\"").ok());
}

// ------------------------------------------------------------------ //
// Metrics
// ------------------------------------------------------------------ //

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  EXPECT_EQ(c, registry.GetCounter("c"));  // Stable handle.
  c->Increment();
  c->Increment(9);
  EXPECT_EQ(c->value(), 10u);

  obs::Gauge* g = registry.GetGauge("g");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), -1.0);

  obs::Histogram* h = registry.GetHistogram("h", {1.0, 10.0});
  h->Observe(0.5);   // <= 1
  h->Observe(1.0);   // <= 1 (bounds are inclusive upper limits)
  h->Observe(5.0);   // <= 10
  h->Observe(100.0); // overflow
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 106.5);
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 10u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), -1.0);
  EXPECT_EQ(snap.histograms.at("h").count, 4u);
  EXPECT_EQ(snap.histograms.at("h").bucket_counts.size(), 3u);

  registry.Reset();
  EXPECT_EQ(c->value(), 0u);  // Handles survive Reset.
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
}

TEST(MetricsTest, ConcurrentIncrementsUnderThreadPoolAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("hits");
  obs::Histogram* histogram = registry.GetHistogram("obs", {10.0, 100.0});
  static constexpr std::size_t kItems = 10'000;
  ThreadPool pool(8);
  pool.ParallelFor(kItems, [&](std::size_t, std::size_t i) {
    counter->Increment();
    histogram->Observe(static_cast<double>(i % 200));
  });
  EXPECT_EQ(counter->value(), kItems);
  EXPECT_EQ(histogram->count(), kItems);
  // Each residue class 0..199 appears kItems/200 times; 0..10 land in
  // the first bucket, 11..100 in the second, 101..199 overflow.
  const std::uint64_t per_class = kItems / 200;
  EXPECT_EQ(histogram->bucket_count(0), per_class * 11);
  EXPECT_EQ(histogram->bucket_count(1), per_class * 90);
  EXPECT_EQ(histogram->bucket_count(2), per_class * 99);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected_sum += static_cast<double>(i % 200);
  }
  EXPECT_DOUBLE_EQ(histogram->sum(), expected_sum);
}

TEST(MetricsTest, SnapshotRendersTextAndJson) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("b.level")->Set(0.5);
  registry.GetHistogram("c.sizes", {2.0})->Observe(1.0);
  const obs::MetricsSnapshot snap = registry.Snapshot();

  const std::string text = snap.ToText();
  EXPECT_NE(text.find("a.count 3"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);

  const auto parsed = JsonValue::Parse(snap.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("counters")->Find("a.count")->AsInt(), 3);
  EXPECT_DOUBLE_EQ(parsed->Find("gauges")->Find("b.level")->AsDouble(),
                   0.5);
  const JsonValue* hist = parsed->Find("histograms")->Find("c.sizes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 1);
}

// ------------------------------------------------------------------ //
// Tracer
// ------------------------------------------------------------------ //

TEST(TraceTest, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  {
    BAYESCROWD_TRACE_SPAN("ignored");
  }
  EXPECT_EQ(tracer.EventCountForTesting(), 0u);
}

TEST(TraceTest, ChromeTraceJsonIsValidAndWellFormed) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    BAYESCROWD_TRACE_SPAN("outer");
    { BAYESCROWD_TRACE_SPAN("inner"); }
  }
  {
    // Worker buffers flush on thread exit, so the pool must be joined
    // (destroyed) before the trace is read — the same ordering Run()
    // guarantees by writing traces only after the pool is gone.
    ThreadPool pool(4);
    pool.ParallelFor(16, [](std::size_t, std::size_t) {
      BAYESCROWD_TRACE_SPAN("pooled");
    });
  }
  tracer.Disable();

  // Serialize and re-parse: checks the document is valid JSON end-to-end.
  const auto parsed = JsonValue::Parse(tracer.ChromeTraceJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->size(), 18u);  // outer + inner + 16 pooled spans.
  double last_ts = -1.0;
  bool saw_inner = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    EXPECT_EQ(e.Find("ph")->AsString(), "X");
    EXPECT_FALSE(e.Find("name")->AsString().empty());
    ASSERT_TRUE(e.Find("ts")->is_number());
    ASSERT_TRUE(e.Find("dur")->is_number());
    EXPECT_GE(e.Find("ts")->AsDouble(), last_ts);  // Sorted by start.
    EXPECT_GE(e.Find("dur")->AsDouble(), 0.0);
    last_ts = e.Find("ts")->AsDouble();
    saw_inner = saw_inner || e.Find("name")->AsString() == "inner";
  }
  EXPECT_TRUE(saw_inner);
  tracer.Clear();
}

TEST(TraceTest, ExplicitEndIsIdempotent) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    obs::TraceSpan span("explicit");
    span.End();
    span.End();  // Destructor will also run; still one event.
  }
  tracer.Disable();
  EXPECT_EQ(tracer.EventCountForTesting(), 1u);
  tracer.Clear();
}

TEST(TraceTest, OpenSpanCountBalancesAcrossEarlyExits) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  ASSERT_EQ(tracer.OpenSpanCount(), 0u);

  // Early return: the RAII destructor must close the span.
  const auto early_return = [] {
    BAYESCROWD_TRACE_SPAN("early-return");
    return 7;
  };
  EXPECT_EQ(early_return(), 7);
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);

  // Exception unwinding counts as an exit path too.
  try {
    obs::TraceSpan span("unwound");
    EXPECT_EQ(tracer.OpenSpanCount(), 1u);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);

  // Cross-scope spans count down at End(), not at destruction, so a
  // writer running between the two sees the span as closed.
  {
    obs::TraceSpan span("cross-scope");
    EXPECT_EQ(tracer.OpenSpanCount(), 1u);
    span.End();
    EXPECT_EQ(tracer.OpenSpanCount(), 0u);
  }
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);
  tracer.Disable();
  tracer.Clear();
}

TEST(TraceTest, EnableMidSpanClampsDurationInsteadOfWrapping) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  {
    obs::TraceSpan span("clamped");
    // Re-enabling resets the epoch, so "now" lands behind the span's
    // recorded start. Without the clamp the duration wraps to ~585
    // years and the trace viewer renders garbage.
    tracer.Enable();
  }
  tracer.Disable();
  const JsonValue doc = tracer.ChromeTraceJson();
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  const double dur_us = events->at(0).Find("dur")->AsDouble();
  EXPECT_GE(dur_us, 0.0);
  EXPECT_LT(dur_us, 1e6);  // Well under a second; definitely no wrap.
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);
  tracer.Clear();
}


// ------------------------------------------------------------------ //
// Telemetry
// ------------------------------------------------------------------ //

Table ObsDataset() {
  Rng rng(0xD15EA5E);
  return InjectMissingUniform(MakeNbaLike(120, /*seed=*/5), 0.15, rng);
}

BayesCrowdResult RunPipeline(std::size_t threads,
                             obs::MetricsRegistry* metrics) {
  const Table incomplete = ObsDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.budget = 24;
  options.latency = 4;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 5;
  options.threads = threads;
  options.metrics = metrics;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/5);
  SimulatedCrowdPlatform platform(truth, {});
  auto result = framework.Run(incomplete, posteriors, platform);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

TEST(TelemetryTest, RunTelemetryJsonRoundTripsResultFields) {
  const BayesCrowdResult result = RunPipeline(2, nullptr);
  BayesCrowdOptions options;
  options.budget = 24;
  options.latency = 4;
  const JsonValue doc =
      RunTelemetryJson("unit-test", options, result);

  const auto parsed = JsonValue::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema_version")->AsInt(),
            obs::kTelemetrySchemaVersion);
  EXPECT_EQ(parsed->Find("kind")->AsString(), "run");
  EXPECT_EQ(parsed->Find("name")->AsString(), "unit-test");

  const JsonValue* payload = parsed->Find("payload");
  ASSERT_NE(payload, nullptr);
  const JsonValue* res = payload->Find("result");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(res->Find("tasks_posted")->AsInt()),
            result.tasks_posted);
  EXPECT_EQ(static_cast<std::size_t>(res->Find("rounds")->AsInt()),
            result.rounds);
  ASSERT_EQ(res->Find("probabilities")->size(),
            result.probabilities.size());
  for (std::size_t i = 0; i < result.probabilities.size(); ++i) {
    EXPECT_DOUBLE_EQ(res->Find("probabilities")->at(i).AsDouble(),
                     result.probabilities[i]);
  }
  EXPECT_EQ(
      static_cast<std::uint64_t>(payload->Find("cache")->Find("hits")->AsInt()),
      result.cache_hits);
  EXPECT_EQ(static_cast<std::uint64_t>(
                payload->Find("adpll")->Find("calls")->AsInt()),
            result.adpll.calls);
  EXPECT_GT(result.adpll.calls, 0u);
  ASSERT_EQ(payload->Find("rounds")->size(), result.round_logs.size());
  ASSERT_GT(result.round_logs.size(), 0u);
  const JsonValue& round0 = payload->Find("rounds")->at(0);
  EXPECT_EQ(static_cast<std::size_t>(round0.Find("tasks")->AsInt()),
            result.round_logs[0].tasks);
  ASSERT_EQ(payload->Find("lanes")->size(), result.lane_usage.size());
  // Metrics snapshot rides along and agrees with the scalar mirrors.
  const JsonValue* counters = payload->Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(
                counters->Find("evaluator.cache.hits")->AsInt()),
            result.cache_hits);
}

TEST(TelemetryTest, WriteBenchArtifactProducesParseableFile) {
  JsonValue rows = JsonValue::Array();
  JsonValue row = JsonValue::Object();
  row["threads"] = 4;
  row["seconds"] = 0.25;
  rows.Append(std::move(row));
  BAYESCROWD_CHECK_OK(
      obs::WriteBenchArtifact("obs_unit", std::move(rows), "/tmp"));
  const auto parsed = obs::ReadJsonFile("/tmp/BENCH_obs_unit.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("kind")->AsString(), "bench");
  EXPECT_EQ(parsed->Find("payload")->at(0).Find("threads")->AsInt(), 4);
  std::remove("/tmp/BENCH_obs_unit.json");
}

// ------------------------------------------------------------------ //
// Determinism: obs on vs off
// ------------------------------------------------------------------ //

TEST(ObsDeterminismTest, ObsOnVsOffBitIdenticalAt1And8Threads) {
  for (const std::size_t threads : {1u, 8u}) {
    // Off: tracer disabled, no injected registry (Run uses a private
    // one internally either way).
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
    const BayesCrowdResult off = RunPipeline(threads, nullptr);

    // On: tracer enabled and an external registry capturing everything.
    obs::MetricsRegistry registry;
    obs::Tracer::Global().Enable();
    const BayesCrowdResult on = RunPipeline(threads, &registry);
    obs::Tracer::Global().Disable();
    EXPECT_GT(obs::Tracer::Global().EventCountForTesting(), 0u);
    obs::Tracer::Global().Clear();

    EXPECT_EQ(on.result_objects, off.result_objects)
        << threads << " threads";
    ASSERT_EQ(on.probabilities.size(), off.probabilities.size());
    for (std::size_t i = 0; i < on.probabilities.size(); ++i) {
      EXPECT_EQ(on.probabilities[i], off.probabilities[i])
          << "object " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(on.rounds, off.rounds);
    EXPECT_EQ(on.tasks_posted, off.tasks_posted);
    EXPECT_EQ(on.cache_hits, off.cache_hits);
    EXPECT_EQ(on.adpll.calls, off.adpll.calls);

    // The injected registry saw the same counts the result reports.
    const obs::MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("evaluator.cache.hits"), on.cache_hits);
    EXPECT_EQ(snap.counters.at("adpll.calls"), on.adpll.calls);
    EXPECT_EQ(snap.counters.at("framework.rounds"), on.rounds);
  }
}

TEST(TraceTest, PipelineRunLeavesNoOpenSpans) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  // A full run exercises every early-exit path instrumentation guards
  // (phase spans, per-round spans with break sites). Whatever route the
  // loop took, no span may still be open once Run() returns.
  RunPipeline(2, nullptr);
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);
  tracer.Disable();
  tracer.Clear();
}

// ------------------------------------------------------------------ //
// ThreadPool lane stats
// ------------------------------------------------------------------ //

TEST(LaneStatsTest, TasksSumToWorkItemsAndBusyTimeAccumulates) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.lane_stats().size(), 4u);
  pool.ParallelFor(100, [](std::size_t, std::size_t) {});
  pool.ParallelFor(50, [](std::size_t, std::size_t) {});
  std::uint64_t total = 0;
  for (const ThreadPool::LaneStats& lane : pool.lane_stats()) {
    total += lane.tasks;
    EXPECT_GE(lane.busy_seconds, 0.0);
  }
  EXPECT_EQ(total, 150u);
  // Lane 0 is the calling thread and always participates.
  EXPECT_GT(pool.lane_stats()[0].tasks, 0u);
}

// ------------------------------------------------------------------ //
// Logging
// ------------------------------------------------------------------ //

TEST(LoggingTest, ParseLogLevelHandlesAllSpellings) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // Untouched on failure.
}

TEST(LoggingTest, LevelGatesEnabledCheckAndShortCircuitsTheStream) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kError));
  // A disabled statement must not evaluate its operands.
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  BAYESCROWD_LOG(Debug) << "never " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(saved);
}

TEST(LoggingTest, ConcurrentLoggingAndLevelChangesAreSafe) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);  // Keep test output clean.
  ThreadPool pool(8);
  pool.ParallelFor(500, [](std::size_t lane, std::size_t i) {
    if (i % 100 == 0) SetLogLevel(LogLevel::kOff);  // Racing writers.
    BAYESCROWD_LOG(Warning) << "lane " << lane << " item " << i;
  });
  SetLogLevel(saved);
}

}  // namespace
}  // namespace bayescrowd
