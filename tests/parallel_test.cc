// Tests for the parallel + incremental evaluation layer: the ThreadPool
// itself, determinism of Run() across thread counts, and the evaluator's
// variable-indexed memo-cache invalidation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "adversarial_ctables.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "ctable/builder.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/evaluator.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// ------------------------------------------------------------------ //
// ThreadPool
// ------------------------------------------------------------------ //

TEST(ThreadPoolTest, SizeOneSpawnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> seen;
  pool.ParallelFor(5, [&seen](std::size_t lane, std::size_t i) {
    EXPECT_EQ(lane, 0u);
    seen.push_back(i);  // Inline execution: no synchronization needed.
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    static constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.ParallelFor(kCount, [&visits](std::size_t lane, std::size_t i) {
      ASSERT_LT(i, kCount);
      visits[i].fetch_add(static_cast<int>(lane) + 1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_GE(visits[i].load(), 1) << "index " << i;
    }
    long long total = 0;
    std::atomic<long long> sum{0};
    pool.ParallelFor(kCount, [&sum](std::size_t, std::size_t i) {
      sum.fetch_add(static_cast<long long>(i));
    });
    total = static_cast<long long>(kCount) * (kCount - 1) / 2;
    EXPECT_EQ(sum.load(), total);
  }
}

TEST(ThreadPoolTest, SubmitWaitDrainsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after a Wait().
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 65);
}

TEST(ThreadPoolTest, ThrowingParallelForBodyBecomesStatus) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    const Status status =
        pool.ParallelFor(64, [&ran](std::size_t, std::size_t i) {
          ran.fetch_add(1);
          if (i == 13) throw std::runtime_error("lane boundary test");
        });
    // The exception is caught at the lane boundary and surfaced as the
    // loop's Status instead of unwinding into a worker's start
    // function (which would std::terminate the whole process).
    EXPECT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_NE(status.message().find("lane boundary test"),
              std::string::npos)
        << status.message();
    EXPECT_GE(ran.load(), 1);

    // The pool survives and is reusable: a follow-up loop runs clean
    // and reports OK (the recorded error does not leak forward).
    std::atomic<int> clean{0};
    EXPECT_TRUE(pool.ParallelFor(32, [&clean](std::size_t, std::size_t) {
                      clean.fetch_add(1);
                    }).ok());
    EXPECT_EQ(clean.load(), 32);
    EXPECT_TRUE(pool.TakeError().ok());
  }
}

TEST(ThreadPoolTest, ThrowingSubmittedTaskSurfacesViaTakeError) {
  ThreadPool pool(4);
  pool.Submit([] { throw std::runtime_error("submitted failure"); });
  pool.Wait();
  const Status first = pool.TakeError();
  EXPECT_FALSE(first.ok());
  EXPECT_NE(first.message().find("submitted failure"), std::string::npos);
  // TakeError clears: the next poll is OK, and the pool still works.
  EXPECT_TRUE(pool.TakeError().ok());
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolTest, ParallelForErrorsArePerCallNotPoolGlobal) {
  ThreadPool pool(4);

  // A raw Submit failure parked in the pool-global slot must not bleed
  // into an unrelated ParallelFor's return value...
  pool.Submit([] { throw std::runtime_error("stale submit failure"); });
  pool.Wait();
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.ParallelFor(16, [&ran](std::size_t, std::size_t) {
                    ran.fetch_add(1);
                  }).ok());
  EXPECT_EQ(ran.load(), 16);
  // ...and it is still there for the Submit user afterwards.
  const Status stale = pool.TakeError();
  EXPECT_NE(stale.message().find("stale submit failure"),
            std::string::npos);

  // Conversely a ParallelFor failure is returned to its caller only —
  // it never lands in the pool-global slot where another session's
  // poll would pick it up (the cross-session latch this pins against).
  const Status failed =
      pool.ParallelFor(16, [](std::size_t, std::size_t i) {
        if (i == 3) throw std::runtime_error("loop-local failure");
      });
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
}

// ------------------------------------------------------------------ //
// Batch evaluation determinism
// ------------------------------------------------------------------ //

// A mid-sized incomplete dataset with enough undecided objects that
// every phase (entropy ranking, HHS counterfactual scoring, final
// inference) exercises multi-item batches.
Table DeterminismDataset() {
  Rng rng(0xD15EA5E);
  return InjectMissingUniform(MakeNbaLike(120, /*seed=*/5), 0.15, rng);
}

BayesCrowdResult RunWithThreads(std::size_t threads, AnswerLog* log,
                                bool memoize = true) {
  const Table incomplete = DeterminismDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.budget = 24;
  options.latency = 4;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 5;
  options.threads = threads;
  options.probability.memoize = memoize;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  const Table truth = MakeNbaLike(120, /*seed=*/5);
  SimulatedCrowdPlatform inner(truth, {});
  RecordingPlatform recorder(inner);
  auto result = framework.Run(incomplete, posteriors, recorder);
  BAYESCROWD_CHECK_OK(result.status());
  if (log != nullptr) *log = recorder.log();
  return std::move(result).value();
}

TEST(ParallelDeterminismTest, OneVsEightThreadsBitIdentical) {
  AnswerLog log1, log8;
  const BayesCrowdResult r1 = RunWithThreads(1, &log1);
  const BayesCrowdResult r8 = RunWithThreads(8, &log8);

  // Same crowdsourcing transcript: every selected task, in order.
  ASSERT_EQ(log1.entries.size(), log8.entries.size());
  ASSERT_GT(log1.entries.size(), 0u);
  for (std::size_t i = 0; i < log1.entries.size(); ++i) {
    EXPECT_TRUE(log1.entries[i].expression == log8.entries[i].expression)
        << "task " << i;
    EXPECT_EQ(log1.entries[i].relation, log8.entries[i].relation);
    EXPECT_EQ(log1.entries[i].round, log8.entries[i].round);
  }

  // Same result set and bit-identical probabilities.
  EXPECT_EQ(r1.result_objects, r8.result_objects);
  ASSERT_EQ(r1.probabilities.size(), r8.probabilities.size());
  for (std::size_t i = 0; i < r1.probabilities.size(); ++i) {
    EXPECT_EQ(r1.probabilities[i], r8.probabilities[i]) << "object " << i;
  }
  EXPECT_EQ(r1.rounds, r8.rounds);
  EXPECT_EQ(r1.tasks_posted, r8.tasks_posted);
}

TEST(ParallelDeterminismTest, CacheOnOffBitIdentical) {
  // Memoization must never change an exact method's numbers, only skip
  // recomputation.
  AnswerLog log_on, log_off;
  const BayesCrowdResult on = RunWithThreads(4, &log_on, /*memoize=*/true);
  const BayesCrowdResult off =
      RunWithThreads(4, &log_off, /*memoize=*/false);
  EXPECT_GT(on.cache_hits, 0u);
  EXPECT_EQ(off.cache_hits, 0u);
  EXPECT_EQ(log_on.entries.size(), log_off.entries.size());
  EXPECT_EQ(on.result_objects, off.result_objects);
  ASSERT_EQ(on.probabilities.size(), off.probabilities.size());
  for (std::size_t i = 0; i < on.probabilities.size(); ++i) {
    EXPECT_EQ(on.probabilities[i], off.probabilities[i]) << "object " << i;
  }
}

TEST(ParallelDeterminismTest, RoundLogsSplitPhasesAndCountCacheTraffic) {
  const BayesCrowdResult result = RunWithThreads(2, nullptr);
  ASSERT_GT(result.round_logs.size(), 0u);
  double select = 0.0, update = 0.0;
  for (const RoundLog& log : result.round_logs) {
    EXPECT_GE(log.select_seconds, 0.0);
    EXPECT_GE(log.update_seconds, 0.0);
    EXPECT_DOUBLE_EQ(log.seconds, log.select_seconds + log.update_seconds);
    EXPECT_GE(log.CacheHitRate(), 0.0);
    EXPECT_LE(log.CacheHitRate(), 1.0);
    select += log.select_seconds;
    update += log.update_seconds;
  }
  // The terminal partial round (the selection pass that decides to
  // stop) is charged to the run total at the loop break sites but never
  // gets a round log, so the total dominates the per-round sum.
  EXPECT_GE(result.select_seconds, select);
  EXPECT_DOUBLE_EQ(result.update_seconds, update);
  std::uint64_t round_hits = 0, round_misses = 0;
  for (const RoundLog& log : result.round_logs) {
    round_hits += log.cache_hits;
    round_misses += log.cache_misses;
  }
  // Run totals also cover the final inference pass, so they dominate
  // the per-round sums.
  EXPECT_GE(result.cache_hits, round_hits);
  EXPECT_GE(result.cache_misses, round_misses);
  EXPECT_GT(result.cache_misses, 0u);
}

// ------------------------------------------------------------------ //
// Memo-cache invalidation
// ------------------------------------------------------------------ //

// Two-level distributions keep the arithmetic easy to follow.
ProbabilityEvaluator TwoLevelEvaluator() {
  ProbabilityEvaluator evaluator;
  for (std::size_t object : {0u, 1u, 2u}) {
    BAYESCROWD_CHECK_OK(evaluator.SetDistribution(
        V(object, 0), std::vector<double>{0.5, 0.5}));
  }
  return evaluator;
}

Condition SingleVarCondition(const CellRef& var) {
  return Condition::Cnf(
      {{Expression::VarConst(var, CmpOp::kGreater, 0)}});
}

TEST(EvaluatorCacheTest, AnsweringAVariableEvictsExactlyItsConditions) {
  ProbabilityEvaluator evaluator = TwoLevelEvaluator();
  // c01 mentions vars 0 and 1; c2 mentions var 2 only.
  const Condition c01 =
      Condition::Cnf({{Expression::VarVar(V(0, 0), CmpOp::kGreater,
                                          V(1, 0))}});
  const Condition c2 = SingleVarCondition(V(2, 0));

  ASSERT_TRUE(evaluator.Probability(c01).ok());
  ASSERT_TRUE(evaluator.Probability(c2).ok());
  EXPECT_TRUE(evaluator.IsCached(c01));
  EXPECT_TRUE(evaluator.IsCached(c2));
  EXPECT_EQ(evaluator.CacheSize(), 2u);

  // Fold a crowd answer about Var(1,0): its distribution collapses.
  BAYESCROWD_CHECK_OK(
      evaluator.SetDistribution(V(1, 0), std::vector<double>{1.0, 0.0}));

  EXPECT_FALSE(evaluator.IsCached(c01));  // Mentions the answered var.
  EXPECT_TRUE(evaluator.IsCached(c2));    // Untouched: still cached.
  EXPECT_EQ(evaluator.cache_stats().evictions, 1u);

  // Re-evaluation reflects the new distribution: Var(0,0) > Var(1,0)
  // with Var(1,0) pinned to level 0 is P(Var(0,0) = 1) = 0.5.
  const auto p = evaluator.Probability(c01);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
}

TEST(EvaluatorCacheTest, HitsAndMissesAreCounted) {
  ProbabilityEvaluator evaluator = TwoLevelEvaluator();
  const Condition c = SingleVarCondition(V(0, 0));
  ASSERT_TRUE(evaluator.Probability(c).ok());
  ASSERT_TRUE(evaluator.Probability(c).ok());
  ASSERT_TRUE(evaluator.Probability(c).ok());
  EXPECT_EQ(evaluator.cache_stats().misses, 1u);
  EXPECT_EQ(evaluator.cache_stats().hits, 2u);
}

TEST(EvaluatorCacheTest, BatchServesHitsWithoutRecomputing) {
  ProbabilityEvaluator evaluator = TwoLevelEvaluator();
  const Condition a = SingleVarCondition(V(0, 0));
  const Condition b = SingleVarCondition(V(1, 0));
  const std::vector<const Condition*> batch{&a, &b, &a};
  const auto first = evaluator.EvaluateBatch(batch);
  ASSERT_TRUE(first.ok());
  // Duplicate within the batch misses twice (parallel lanes do not
  // share in-flight work) but both land on one cache entry.
  EXPECT_EQ(evaluator.CacheSize(), 2u);
  const auto second = evaluator.EvaluateBatch(batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(evaluator.cache_stats().hits, 3u);
}

TEST(EvaluatorCacheTest, MutableDistributionsHandleDropsWholeCache) {
  ProbabilityEvaluator evaluator = TwoLevelEvaluator();
  const Condition c = SingleVarCondition(V(0, 0));
  ASSERT_TRUE(evaluator.Probability(c).ok());
  EXPECT_EQ(evaluator.CacheSize(), 1u);
  // Bypassing SetDistribution cannot track which vars changed, so the
  // accessor conservatively clears everything.
  evaluator.distributions();
  EXPECT_EQ(evaluator.CacheSize(), 0u);
  EXPECT_FALSE(evaluator.IsCached(c));
}

TEST(EvaluatorCacheTest, SampledMethodsBypassTheCache) {
  ProbabilityOptions options;
  options.method = ProbabilityMethod::kSampled;
  options.sampling.num_samples = 500;
  ProbabilityEvaluator evaluator(options);
  BAYESCROWD_CHECK_OK(
      evaluator.SetDistribution(V(0, 0), std::vector<double>{0.5, 0.5}));
  const Condition c = SingleVarCondition(V(0, 0));
  ASSERT_TRUE(evaluator.Probability(c).ok());
  EXPECT_EQ(evaluator.CacheSize(), 0u);
  EXPECT_EQ(evaluator.cache_stats().hits, 0u);
  EXPECT_EQ(evaluator.cache_stats().misses, 0u);
}

// ------------------------------------------------------------------ //
// Governed batch evaluation: budget tiers must not alias in the cache
// ------------------------------------------------------------------ //

TEST(GovernedBatchTest, LowBudgetEntriesNeverServeHigherBudgetBatches) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  ThreadPool pool(4);
  ProbabilityOptions options;
  options.governor.max_nodes = 8;
  options.governor.ladder = LadderMode::kInterval;
  ProbabilityEvaluator evaluator(options);
  evaluator.distributions() = inst.dists;
  evaluator.set_thread_pool(&pool);

  const std::vector<const Condition*> batch{&inst.condition,
                                            &inst.condition};
  const auto degraded = evaluator.EvaluateBatchIntervals(batch);
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->size(), 2u);
  ASSERT_FALSE((*degraded)[0].exact());
  EXPECT_TRUE(evaluator.IsCached(inst.condition));

  // Disable the governor on the same evaluator: the degraded entry's
  // budget tag no longer matches, so the batch recomputes exactly
  // instead of serving the low-budget interval.
  evaluator.options().governor = GovernorOptions{};
  const auto exact = evaluator.EvaluateBatchIntervals(batch);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE((*exact)[0].exact());
  EXPECT_NEAR((*exact)[0].lo, inst.exact_probability, 1e-9);

  // Both tiers stay reproducible: re-enabling the low budget returns
  // the original degraded interval bit-for-bit, not the exact entry.
  evaluator.options().governor.max_nodes = 8;
  evaluator.options().governor.ladder = LadderMode::kInterval;
  const auto again = evaluator.EvaluateBatchIntervals(batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[0].lo, (*degraded)[0].lo);
  EXPECT_EQ((*again)[0].hi, (*degraded)[0].hi);
  EXPECT_EQ((*again)[0].quality, (*degraded)[0].quality);
}

TEST(GovernedBatchTest, BatchIntervalsBitIdenticalAcrossPoolSizes) {
  const AdversarialInstance chain = MakeDeepChainInstance(7, 6);
  const AdversarialInstance wide = MakeWideChainConjunctInstance(6, 6);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ProbabilityOptions options;
    options.governor.max_nodes = 8;
    options.governor.ladder = LadderMode::kFull;  // Sampling tier too.
    ProbabilityEvaluator evaluator(options);
    evaluator.distributions() = chain.dists;
    // Both instances address {object i, attribute 0} from zero, so one
    // merged map covers the union of their variables.
    for (std::size_t i = 0; i <= 7; ++i) {
      BAYESCROWD_CHECK_OK(evaluator.SetDistribution(
          CellRef{i, 0}, std::vector<double>(6, 1.0 / 6.0)));
    }
    evaluator.set_thread_pool(&pool);
    const std::vector<const Condition*> batch{
        &chain.condition, &wide.condition, &chain.condition};
    auto r = evaluator.EvaluateBatchIntervals(batch);
    BAYESCROWD_CHECK_OK(r.status());
    return *r;
  };
  const auto one = run(1);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].lo, eight[i].lo) << i;
    EXPECT_EQ(one[i].hi, eight[i].hi) << i;
    EXPECT_EQ(one[i].quality, eight[i].quality) << i;
  }
}

// The compiled batch path — artifact resolution before the fan-out,
// per-lane replay, post-barrier fold — must be invisible: identical
// bits to the plain batch at every pool size, with replays actually
// happening on the post-shift pass (duplicates included).
TEST(GovernedBatchTest, CompiledBatchBitIdenticalAtEveryPoolSize) {
  const AdversarialInstance chain = MakeDeepChainInstance(3, 4);
  const AdversarialInstance wide = MakeWideChainConjunctInstance(2, 4);

  auto run = [&](std::size_t threads, CompileMode mode,
                 CircuitStats* stats) {
    ThreadPool pool(threads);
    ProbabilityOptions options;
    options.compile.mode = mode;
    ProbabilityEvaluator evaluator(options);
    evaluator.distributions() = chain.dists;  // Covers both instances.
    evaluator.set_thread_pool(&pool);
    const std::vector<const Condition*> batch{
        &chain.condition, &wide.condition, &chain.condition};
    std::vector<double> all;
    auto first = evaluator.EvaluateBatch(batch);
    BAYESCROWD_CHECK_OK(first.status());
    all.insert(all.end(), first->begin(), first->end());
    // Shift one shared posterior: both conditions miss, and a compiled
    // evaluator serves the misses by circuit replay.
    BAYESCROWD_CHECK_OK(evaluator.SetDistribution(
        V(1, 0), std::vector<double>{0.1, 0.2, 0.3, 0.4}));
    auto second = evaluator.EvaluateBatch(batch);
    BAYESCROWD_CHECK_OK(second.status());
    all.insert(all.end(), second->begin(), second->end());
    if (stats != nullptr) *stats = evaluator.compile_stats();
    return all;
  };

  const std::vector<double> base = run(1, CompileMode::kOff, nullptr);
  for (const std::size_t threads : {1u, 8u}) {
    CircuitStats stats;
    const std::vector<double> compiled =
        run(threads, CompileMode::kAuto, &stats);
    ASSERT_EQ(base.size(), compiled.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i], compiled[i]) << "threads " << threads << " " << i;
    }
    // Two distinct conditions compiled once each (the duplicate does
    // not double-build), then replayed after the shift.
    EXPECT_EQ(stats.builds, 2u) << "threads " << threads;
    EXPECT_GE(stats.reuses, 2u) << "threads " << threads;
  }
}

}  // namespace
}  // namespace bayescrowd
