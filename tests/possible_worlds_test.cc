// End-to-end semantic validation: possible-world enumeration must match
// the entire c-table + ADPLL pipeline object for object. This is the
// strongest correctness property in the suite — the two sides share no
// code beyond the dominance definition.

#include <gtest/gtest.h>

#include "common/random.h"
#include "ctable/builder.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/possible_worlds.h"

namespace bayescrowd {
namespace {

struct WorldCase {
  std::size_t n;
  std::size_t d;
  Level levels;
  double missing_rate;
  std::uint64_t seed;
};

class PossibleWorldsTest : public ::testing::TestWithParam<WorldCase> {};

DistributionMap RandomDistributions(const Table& table,
                                    std::uint64_t seed) {
  DistributionMap dists;
  Rng rng(seed);
  for (const CellRef& cell : table.MissingCells()) {
    const auto card = static_cast<std::size_t>(
        table.schema().domain_size(cell.attribute));
    std::vector<double> dist(card);
    double total = 0.0;
    for (double& p : dist) {
      p = 0.05 + rng.NextDouble();
      total += p;
    }
    for (double& p : dist) p /= total;
    BAYESCROWD_CHECK_OK(dists.Set(cell, dist));
  }
  return dists;
}

TEST_P(PossibleWorldsTest, EnumerationMatchesCTablePipeline) {
  const WorldCase& param = GetParam();
  const Table complete =
      MakeIndependent(param.n, param.d, param.levels, param.seed);
  Rng rng(param.seed ^ 0x7070);
  const Table incomplete =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const DistributionMap dists =
      RandomDistributions(incomplete, param.seed ^ 0x1111);

  PossibleWorldOptions options;
  options.semantics = WorldSemantics::kCTable;
  const auto enumerated =
      SkylineMembershipByEnumeration(incomplete, dists, options);
  ASSERT_TRUE(enumerated.ok()) << enumerated.status();

  const auto ctable = BuildCTable(incomplete, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  for (std::size_t o = 0; o < incomplete.num_objects(); ++o) {
    const auto pipeline = AdpllProbability(ctable->condition(o), dists);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    EXPECT_NEAR(enumerated.value()[o], pipeline.value(), 1e-9)
        << "object " << o << " seed " << param.seed;
  }
}

TEST_P(PossibleWorldsTest, CTableSemanticsLowerBoundsStrictSkyline) {
  // The paper's CNF reading treats all-equal worlds as dominated, so it
  // can only remove probability mass relative to Definition 1.
  const WorldCase& param = GetParam();
  const Table complete =
      MakeIndependent(param.n, param.d, param.levels, param.seed + 77);
  Rng rng(param.seed ^ 0x8181);
  const Table incomplete =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const DistributionMap dists =
      RandomDistributions(incomplete, param.seed ^ 0x2222);

  PossibleWorldOptions strict;
  strict.semantics = WorldSemantics::kStrictSkyline;
  PossibleWorldOptions paper;
  paper.semantics = WorldSemantics::kCTable;
  const auto p_strict =
      SkylineMembershipByEnumeration(incomplete, dists, strict);
  const auto p_paper =
      SkylineMembershipByEnumeration(incomplete, dists, paper);
  ASSERT_TRUE(p_strict.ok());
  ASSERT_TRUE(p_paper.ok());
  for (std::size_t o = 0; o < incomplete.num_objects(); ++o) {
    EXPECT_LE(p_paper.value()[o], p_strict.value()[o] + 1e-12)
        << "object " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PossibleWorldsTest,
    ::testing::Values(WorldCase{5, 3, 4, 0.2, 11},
                      WorldCase{6, 3, 4, 0.25, 12},
                      WorldCase{8, 4, 3, 0.15, 13},
                      WorldCase{10, 3, 3, 0.15, 14},
                      WorldCase{7, 4, 4, 0.2, 15},
                      WorldCase{12, 2, 5, 0.15, 16},
                      WorldCase{4, 5, 4, 0.3, 17},
                      WorldCase{9, 3, 4, 0.1, 18}));

TEST(PossibleWorldsTest, PaperSampleMatchesExample3) {
  const Table incomplete = MakeSampleMovieDataset();
  DistributionMap dists;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : incomplete.MissingCells()) {
    BAYESCROWD_CHECK_OK(dists.Set(cell, marginals[cell.attribute]));
  }
  const auto membership =
      SkylineMembershipByEnumeration(incomplete, dists);
  ASSERT_TRUE(membership.ok());
  EXPECT_NEAR(membership.value()[0], 0.8, 1e-9);    // o1
  EXPECT_NEAR(membership.value()[1], 1.0, 1e-9);    // o2 (certain)
  EXPECT_NEAR(membership.value()[2], 1.0, 1e-9);    // o3 (certain)
  EXPECT_NEAR(membership.value()[3], 0.153, 1e-9);  // o4
  EXPECT_NEAR(membership.value()[4], 0.823, 5e-4);  // o5 (Example 3)
}

TEST(PossibleWorldsTest, WorldLimitEnforced) {
  const Table incomplete = MakeSampleMovieDataset();
  DistributionMap dists;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : incomplete.MissingCells()) {
    BAYESCROWD_CHECK_OK(dists.Set(cell, marginals[cell.attribute]));
  }
  PossibleWorldOptions options;
  options.max_worlds = 100;
  EXPECT_EQ(SkylineMembershipByEnumeration(incomplete, dists, options)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(PossibleWorldsTest, MissingDistributionRejected) {
  const Table incomplete = MakeSampleMovieDataset();
  DistributionMap dists;  // Empty.
  EXPECT_TRUE(SkylineMembershipByEnumeration(incomplete, dists)
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace bayescrowd
