// Tests for probability computation: expression probabilities, Naive
// enumeration, ADPLL (including the paper's Example 3 golden value) and
// the sampling estimators. Property tests assert Naive == ADPLL on
// random conditions.

#include <gtest/gtest.h>

#include "adversarial_ctables.h"
#include "common/random.h"
#include "ctable/builder.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/distributions.h"
#include "probability/evaluator.h"
#include "probability/naive.h"
#include "probability/sampling.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// Distributions of the paper's Example 3 for the sample dataset.
DistributionMap SampleDistributions() {
  DistributionMap dists;
  const auto marginals = SampleMovieDistributions();
  const Table table = MakeSampleMovieDataset();
  for (const CellRef& cell : table.MissingCells()) {
    BAYESCROWD_CHECK_OK(dists.Set(cell, marginals[cell.attribute]));
  }
  return dists;
}

// ------------------------------------------------------------------ //
// DistributionMap / ExpressionProbability
// ------------------------------------------------------------------ //

TEST(DistributionMapTest, RejectsUnnormalized) {
  DistributionMap dists;
  EXPECT_FALSE(dists.Set(V(0, 0), {0.5, 0.2}).ok());
  EXPECT_FALSE(dists.Set(V(0, 0), {}).ok());
  EXPECT_FALSE(dists.Set(V(0, 0), {1.2, -0.2}).ok());
  EXPECT_TRUE(dists.Set(V(0, 0), {0.5, 0.5}).ok());
}

TEST(DistributionMapTest, ProbGreaterAndLess) {
  DistributionMap dists;
  ASSERT_TRUE(dists.Set(V(0, 0), {0.1, 0.2, 0.3, 0.4}).ok());
  EXPECT_NEAR(dists.ProbGreater(V(0, 0), 1).value(), 0.7, 1e-12);
  EXPECT_NEAR(dists.ProbLess(V(0, 0), 2).value(), 0.3, 1e-12);
  EXPECT_NEAR(dists.ProbGreater(V(0, 0), 3).value(), 0.0, 1e-12);
  EXPECT_NEAR(dists.ProbLess(V(0, 0), 0).value(), 0.0, 1e-12);
}

TEST(ExpressionProbabilityTest, VarConst) {
  DistributionMap dists = SampleDistributions();
  // P(Var(o5,a2) < 2) = 0.2 under uniform-over-10.
  const auto p = ExpressionProbability(
      Expression::VarConst(V(4, 1), CmpOp::kLess, 2), dists);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.2, 1e-12);
}

TEST(ExpressionProbabilityTest, VarVarUniform) {
  DistributionMap dists;
  ASSERT_TRUE(dists.Set(V(0, 0), std::vector<double>(10, 0.1)).ok());
  ASSERT_TRUE(dists.Set(V(1, 0), std::vector<double>(10, 0.1)).ok());
  // P(A > B) for iid uniform over 10 values = (1 - P(A=B)) / 2 = 0.45.
  const auto p = ExpressionProbability(
      Expression::VarVar(V(0, 0), CmpOp::kGreater, V(1, 0)), dists);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.45, 1e-12);
  const auto q = ExpressionProbability(
      Expression::VarVar(V(0, 0), CmpOp::kLess, V(1, 0)), dists);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 0.45, 1e-12);
}

TEST(ExpressionProbabilityTest, VarVarMixedDomains) {
  DistributionMap dists;
  ASSERT_TRUE(dists.Set(V(0, 0), {0.5, 0.5}).ok());           // {0, 1}
  ASSERT_TRUE(dists.Set(V(1, 0), {0.25, 0.25, 0.25, 0.25}).ok());
  // P(A > B) = P(A=1) P(B=0) = 0.5 * 0.25 = 0.125.
  const auto p = ExpressionProbability(
      Expression::VarVar(V(0, 0), CmpOp::kGreater, V(1, 0)), dists);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.125, 1e-12);
  // P(A < B): A=0 -> B in {1,2,3} (0.75); A=1 -> B in {2,3} (0.5).
  const auto q = ExpressionProbability(
      Expression::VarVar(V(0, 0), CmpOp::kLess, V(1, 0)), dists);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 0.5 * 0.75 + 0.5 * 0.5, 1e-12);
}

// ------------------------------------------------------------------ //
// Example 3: Pr(φ(o5)) = 0.823.
// ------------------------------------------------------------------ //

Condition PhiO5() {
  const Table table = MakeSampleMovieDataset();
  const auto ctable = BuildCTable(table, {.alpha = -1.0});
  BAYESCROWD_CHECK_OK(ctable.status());
  return ctable->condition(4);
}

TEST(Example3Test, NaiveComputes0823) {
  const auto p = NaiveProbability(PhiO5(), SampleDistributions());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.823, 5e-4);
}

TEST(Example3Test, AdpllComputes0823) {
  const auto p = AdpllProbability(PhiO5(), SampleDistributions());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.823, 5e-4);
}

TEST(Example3Test, AllPhiProbabilitiesAgreeAcrossMethods) {
  const Table table = MakeSampleMovieDataset();
  const auto ctable = BuildCTable(table, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  const DistributionMap dists = SampleDistributions();
  for (std::size_t i = 0; i < table.num_objects(); ++i) {
    const auto naive = NaiveProbability(ctable->condition(i), dists);
    const auto adpll = AdpllProbability(ctable->condition(i), dists);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(adpll.ok());
    EXPECT_NEAR(naive.value(), adpll.value(), 1e-9) << "object " << i;
  }
}

// ------------------------------------------------------------------ //
// Decided conditions and corner cases.
// ------------------------------------------------------------------ //

TEST(AdpllTest, DecidedConditions) {
  DistributionMap dists;
  EXPECT_DOUBLE_EQ(AdpllProbability(Condition::True(), dists).value(), 1.0);
  EXPECT_DOUBLE_EQ(AdpllProbability(Condition::False(), dists).value(), 0.0);
  EXPECT_DOUBLE_EQ(NaiveProbability(Condition::True(), dists).value(), 1.0);
  EXPECT_DOUBLE_EQ(NaiveProbability(Condition::False(), dists).value(), 0.0);
}

TEST(AdpllTest, MissingDistributionIsNotFound) {
  const Condition c = Condition::Cnf(
      {{Expression::VarConst(V(9, 9), CmpOp::kLess, 1)}});
  DistributionMap dists;
  EXPECT_TRUE(AdpllProbability(c, dists).status().IsNotFound());
  EXPECT_TRUE(NaiveProbability(c, dists).status().IsNotFound());
}

TEST(AdpllTest, SharedVariableWithinConjunctIsExact) {
  // (A>2 | A<1): P = P(A>2) + P(A<1) — the naive product rule would
  // produce 1-(1-p)(1-q) instead; ADPLL must detect the shared variable.
  DistributionMap dists;
  ASSERT_TRUE(dists.Set(V(0, 0), std::vector<double>(10, 0.1)).ok());
  const Condition c = Condition::Cnf({{
      Expression::VarConst(V(0, 0), CmpOp::kGreater, 2),
      Expression::VarConst(V(0, 0), CmpOp::kLess, 1),
  }});
  const auto p = AdpllProbability(c, dists);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.7 + 0.1, 1e-12);
}

TEST(AdpllTest, RecursionBudgetEnforced) {
  DistributionMap dists = SampleDistributions();
  AdpllOptions options;
  options.max_calls = 1;
  options.component_decomposition = false;
  options.star_fast_path = false;  // Force branching.
  const auto p = AdpllProbability(PhiO5(), dists, options);
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdpllTest, StarFastPathMatchesBranchingOnPhiO5) {
  DistributionMap dists = SampleDistributions();
  AdpllOptions star;
  AdpllOptions branch;
  branch.star_fast_path = false;
  AdpllStats star_stats;
  const auto with_star = AdpllProbability(PhiO5(), dists, star, &star_stats);
  const auto without = AdpllProbability(PhiO5(), dists, branch);
  ASSERT_TRUE(with_star.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with_star.value(), without.value(), 1e-12);
  EXPECT_GT(star_stats.direct_evals, 0u);
}

TEST(NaiveTest, AssignmentSpaceLimitEnforced) {
  DistributionMap dists = SampleDistributions();
  NaiveOptions options;
  options.max_assignments = 10;
  const auto p = NaiveProbability(PhiO5(), dists, options);
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------------------------ //
// Property tests: random CNF conditions, Naive == ADPLL under every
// heuristic and with/without component decomposition.
// ------------------------------------------------------------------ //

struct RandomConditionCase {
  std::uint64_t seed;
  std::size_t num_vars;
  std::size_t num_conjuncts;
  std::size_t max_disjuncts;
};

class RandomConditionTest
    : public ::testing::TestWithParam<RandomConditionCase> {};

// Builds a random condition over `num_vars` variables with random
// domains (2..6 levels) and random distributions.
void MakeRandomCase(const RandomConditionCase& param, Condition* condition,
                    DistributionMap* dists) {
  Rng rng(param.seed);
  std::vector<CellRef> vars;
  std::vector<Level> cards;
  for (std::size_t v = 0; v < param.num_vars; ++v) {
    vars.push_back(V(v, v % 3));
    cards.push_back(static_cast<Level>(2 + rng.NextBelow(5)));
    std::vector<double> dist(static_cast<std::size_t>(cards.back()));
    double total = 0.0;
    for (double& p : dist) {
      p = 0.05 + rng.NextDouble();
      total += p;
    }
    for (double& p : dist) p /= total;
    BAYESCROWD_CHECK_OK(dists->Set(vars[v], dist));
  }
  std::vector<Conjunct> conjuncts;
  for (std::size_t c = 0; c < param.num_conjuncts; ++c) {
    Conjunct conj;
    const std::size_t width = 1 + rng.NextBelow(param.max_disjuncts);
    for (std::size_t e = 0; e < width; ++e) {
      const std::size_t v = rng.NextBelow(vars.size());
      const CmpOp op =
          rng.NextBool(0.5) ? CmpOp::kGreater : CmpOp::kLess;
      if (rng.NextBool(0.3) && vars.size() >= 2) {
        std::size_t w = rng.NextBelow(vars.size());
        if (w == v) w = (w + 1) % vars.size();
        conj.push_back(Expression::VarVar(vars[v], op, vars[w]));
      } else {
        const Level bound =
            static_cast<Level>(rng.NextBelow(
                static_cast<std::uint64_t>(cards[v]) + 1));
        conj.push_back(Expression::VarConst(vars[v], op, bound));
      }
    }
    conjuncts.push_back(std::move(conj));
  }
  *condition = Condition::Cnf(std::move(conjuncts));
}

TEST_P(RandomConditionTest, NaiveEqualsAdpll) {
  Condition condition;
  DistributionMap dists;
  MakeRandomCase(GetParam(), &condition, &dists);

  const auto naive = NaiveProbability(condition, dists);
  ASSERT_TRUE(naive.ok());

  for (const bool star : {true, false}) {
    for (const bool decomposition : {true, false}) {
      for (const BranchHeuristic heuristic :
           {BranchHeuristic::kMostFrequent, BranchHeuristic::kFirst,
            BranchHeuristic::kRandom}) {
        AdpllOptions options;
        options.star_fast_path = star;
        options.component_decomposition = decomposition;
        options.heuristic = heuristic;
        const auto adpll = AdpllProbability(condition, dists, options);
        ASSERT_TRUE(adpll.ok());
        EXPECT_NEAR(naive.value(), adpll.value(), 1e-9)
            << "star=" << star << " decomposition=" << decomposition
            << " heuristic=" << static_cast<int>(heuristic);
      }
    }
  }
}

TEST_P(RandomConditionTest, SamplingConvergesToExact) {
  Condition condition;
  DistributionMap dists;
  MakeRandomCase(GetParam(), &condition, &dists);
  const auto exact = NaiveProbability(condition, dists);
  ASSERT_TRUE(exact.ok());

  Rng rng(GetParam().seed ^ 0xabcdef);
  SamplingOptions options;
  options.num_samples = 60'000;
  const auto approx = SampledProbability(condition, dists, options, rng);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx.value(), exact.value(), 0.02);

  Rng rng2(GetParam().seed ^ 0x123456);
  const auto rb =
      SampledProbabilityRaoBlackwell(condition, dists, options, rng2);
  ASSERT_TRUE(rb.ok());
  EXPECT_NEAR(rb.value(), exact.value(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomConditionTest,
    ::testing::Values(
        RandomConditionCase{101, 2, 1, 2}, RandomConditionCase{102, 3, 2, 2},
        RandomConditionCase{103, 4, 3, 3}, RandomConditionCase{104, 5, 4, 3},
        RandomConditionCase{105, 6, 4, 4}, RandomConditionCase{106, 6, 6, 3},
        RandomConditionCase{107, 7, 5, 4}, RandomConditionCase{108, 8, 6, 4},
        RandomConditionCase{109, 4, 8, 2}, RandomConditionCase{110, 8, 3, 5},
        RandomConditionCase{111, 5, 5, 5}, RandomConditionCase{112, 7, 7, 2},
        RandomConditionCase{113, 3, 9, 3}, RandomConditionCase{114, 9, 4, 3},
        RandomConditionCase{115, 6, 2, 6}, RandomConditionCase{116, 2, 10, 2}));

// ------------------------------------------------------------------ //
// Real c-tables: methods agree on conditions produced by Get-CTable.
// ------------------------------------------------------------------ //

TEST(RealCTableTest, MethodsAgreeOnGeneratedData) {
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Table complete = MakeIndependent(40, 3, 5, 700 + seed);
    const Table table = InjectMissingUniform(complete, 0.12, rng);
    const auto ctable = BuildCTable(table, {.alpha = -1.0});
    ASSERT_TRUE(ctable.ok());

    DistributionMap dists;
    for (const CellRef& cell : table.MissingCells()) {
      const auto card = static_cast<std::size_t>(
          table.schema().domain_size(cell.attribute));
      BAYESCROWD_CHECK_OK(dists.Set(
          cell,
          std::vector<double>(card, 1.0 / static_cast<double>(card))));
    }

    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      const Condition& cond = ctable->condition(i);
      if (cond.IsDecided()) continue;
      if (cond.Variables().size() > 8) continue;  // Keep Naive tractable.
      ++checked;
      const auto naive = NaiveProbability(cond, dists);
      const auto adpll = AdpllProbability(cond, dists);
      ASSERT_TRUE(naive.ok()) << naive.status();
      ASSERT_TRUE(adpll.ok()) << adpll.status();
      EXPECT_NEAR(naive.value(), adpll.value(), 1e-9)
          << "seed " << seed << " object " << i;
    }
  }
  EXPECT_GT(checked, 10u) << "test nearly vacuous";
}

// ------------------------------------------------------------------ //
// Evaluator facade.
// ------------------------------------------------------------------ //

TEST(EvaluatorTest, DispatchesAllMethods) {
  const Condition phi = PhiO5();
  for (const ProbabilityMethod method :
       {ProbabilityMethod::kAdpll, ProbabilityMethod::kNaive,
        ProbabilityMethod::kSampled,
        ProbabilityMethod::kSampledRaoBlackwell}) {
    ProbabilityOptions options;
    options.method = method;
    options.sampling.num_samples = 50'000;
    ProbabilityEvaluator evaluator(options);
    const auto marginals = SampleMovieDistributions();
    for (const CellRef& cell : MakeSampleMovieDataset().MissingCells()) {
      BAYESCROWD_CHECK_OK(
          evaluator.distributions().Set(cell, marginals[cell.attribute]));
    }
    const auto p = evaluator.Probability(phi);
    ASSERT_TRUE(p.ok()) << ProbabilityMethodToString(method);
    EXPECT_NEAR(p.value(), 0.823, 0.02)
        << ProbabilityMethodToString(method);
  }
}

TEST(EvaluatorTest, StatsAccumulate) {
  ProbabilityEvaluator evaluator;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : MakeSampleMovieDataset().MissingCells()) {
    BAYESCROWD_CHECK_OK(
        evaluator.distributions().Set(cell, marginals[cell.attribute]));
  }
  ASSERT_TRUE(evaluator.Probability(PhiO5()).ok());
  EXPECT_GT(evaluator.adpll_stats().calls, 0u);
}

// ------------------------------------------------------------------ //
// Governed scalar path: cache entries are tier-stamped
// ------------------------------------------------------------------ //

TEST(GovernedScalarCacheTest, ExactEntryNeverServedToBudgetedConfig) {
  const AdversarialInstance inst = MakeDeepChainInstance(7, 6);
  ProbabilityEvaluator evaluator;  // Governor inert: exact answers.
  evaluator.distributions() = inst.dists;

  const auto exact = evaluator.Probability(inst.condition);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact.value(), inst.exact_probability, 1e-9);
  EXPECT_TRUE(evaluator.IsCached(inst.condition));

  // Enabling a tiny budget switches the cache stamp: the exact entry
  // must not satisfy the governed lookup (a budgeted run has to
  // produce the same answers whether or not an exact run preceded it
  // in the same process).
  evaluator.options().governor.max_nodes = 8;
  evaluator.options().governor.ladder = LadderMode::kInterval;
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
  const auto interval = evaluator.ProbabilityInterval(inst.condition);
  ASSERT_TRUE(interval.ok());
  EXPECT_FALSE(interval->exact());
  EXPECT_LE(interval->lo, inst.exact_probability + 1e-9);
  EXPECT_GE(interval->hi, inst.exact_probability - 1e-9);

  // The governed scalar Probability() is the interval midpoint, and it
  // lands on the same (budget-tagged) cache entry.
  const auto mid = evaluator.Probability(inst.condition);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value(), interval->midpoint());
  EXPECT_EQ(evaluator.cache_stats().hits, 1u);
}

// The compile tag mirrors the budget tag: entries written under one
// compile configuration never satisfy lookups under another, while the
// numbers themselves stay bit-identical (compilation is a replay of
// the exact search, never a different answer).
TEST(GovernedScalarCacheTest, CompileTagKeepsConfigurationsApart) {
  const AdversarialInstance inst = MakeDeepChainInstance(3, 4);
  ProbabilityOptions options;
  options.compile.mode = CompileMode::kAuto;
  ProbabilityEvaluator evaluator(options);
  evaluator.distributions() = inst.dists;

  const auto compiled = evaluator.Probability(inst.condition);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(evaluator.IsCached(inst.condition));
  EXPECT_EQ(evaluator.compile_stats().builds, 1u);

  // Turning compilation off changes the stamp, so the compiled-era
  // entry misses and the plain path recomputes — to the same bits.
  evaluator.options().compile.mode = CompileMode::kOff;
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
  const auto plain = evaluator.Probability(inst.condition);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(compiled.value(), plain.value());

  // Back under the original configuration the artifact store still
  // holds the circuit, so the (again missing) lookup replays it.
  evaluator.options().compile.mode = CompileMode::kAuto;
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
  const auto replayed = evaluator.Probability(inst.condition);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(compiled.value(), replayed.value());
  EXPECT_EQ(evaluator.compile_stats().reuses, 1u);

  // A different compile budget is a different artifact universe.
  evaluator.options().compile.max_nodes = 512;
  EXPECT_FALSE(evaluator.IsCached(inst.condition));
}

}  // namespace
}  // namespace bayescrowd
