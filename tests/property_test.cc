// Cross-module property tests: invariants that must hold on randomly
// generated inputs across workload families, sizes and missing rates.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "ctable/builder.h"
#include "ctable/dominator.h"
#include "ctable/knowledge.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/adpll.h"
#include "probability/naive.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace bayescrowd {
namespace {

enum class Workload { kIndependent, kCorrelated, kAnticorrelated, kNba };

Table MakeWorkload(Workload kind, std::size_t n, std::uint64_t seed) {
  switch (kind) {
    case Workload::kIndependent:
      return MakeIndependent(n, 5, 8, seed);
    case Workload::kCorrelated:
      return MakeCorrelated(n, 5, 8, seed);
    case Workload::kAnticorrelated:
      return MakeAnticorrelated(n, 5, 8, seed);
    case Workload::kNba:
      return MakeNbaLike(n, seed, 8);
  }
  return {};
}

struct WorkloadCase {
  Workload kind;
  double missing_rate;
  double alpha;
  std::uint64_t seed;
};

class WorkloadPropertyTest
    : public ::testing::TestWithParam<WorkloadCase> {};

// ------------------------------------------------------------------ //
// Dominator sets: bitset fast path == pairwise baseline, and every
// member satisfies Definition 5.
// ------------------------------------------------------------------ //

TEST_P(WorkloadPropertyTest, DominatorFastEqualsBaseline) {
  const WorkloadCase& param = GetParam();
  const Table complete = MakeWorkload(param.kind, 120, param.seed);
  Rng rng(param.seed ^ 0xD00D);
  const Table table =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const auto fast = ComputeDominatorSets(table, param.alpha);
  const auto base = ComputeDominatorSetsBaseline(table, param.alpha);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(fast->pruned, base->pruned);
  EXPECT_EQ(fast->dominators, base->dominators);
}

TEST_P(WorkloadPropertyTest, DominatorMembersSatisfyDefinition5) {
  const WorkloadCase& param = GetParam();
  const Table complete = MakeWorkload(param.kind, 100, param.seed);
  Rng rng(param.seed ^ 0xBEEF);
  const Table table =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const auto sets = ComputeDominatorSets(table, -1.0);
  ASSERT_TRUE(sets.ok());
  for (std::size_t o = 0; o < table.num_objects(); ++o) {
    std::vector<bool> member(table.num_objects(), false);
    for (std::uint32_t p : sets->dominators[o]) member[p] = true;
    for (std::size_t p = 0; p < table.num_objects(); ++p) {
      if (p == o) {
        EXPECT_FALSE(member[p]);
        continue;
      }
      bool qualifies = true;
      for (std::size_t j = 0; j < table.num_attributes(); ++j) {
        const Level ov = table.At(o, j);
        const Level pv = table.At(p, j);
        if (!IsMissingLevel(ov) && !IsMissingLevel(pv) && pv < ov) {
          qualifies = false;
          break;
        }
      }
      EXPECT_EQ(member[p], qualifies) << "o=" << o << " p=" << p;
    }
  }
}

// ------------------------------------------------------------------ //
// C-table semantics: for the *true* completion of the data, φ(o) must
// evaluate to the actual skyline membership — except for the documented
// all-equal corner (a dominator whose possible worlds are all-equal) and
// α-pruned objects.
// ------------------------------------------------------------------ //

TEST_P(WorkloadPropertyTest, ConditionsEvaluateTruthfullyOnRealCompletion) {
  const WorkloadCase& param = GetParam();
  const Table complete = MakeWorkload(param.kind, 90, param.seed);
  Rng rng(param.seed ^ 0xFACE);
  const Table table =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const auto ctable = BuildCTable(table, {.alpha = -1.0});
  ASSERT_TRUE(ctable.ok());
  const auto skyline = SkylineBnl(complete);
  ASSERT_TRUE(skyline.ok());
  std::vector<bool> in_skyline(table.num_objects(), false);
  for (std::size_t s : skyline.value()) in_skyline[s] = true;

  const auto value_of = [&complete](const CellRef& var) {
    return complete.At(var.object, var.attribute);
  };
  std::size_t checked = 0;
  for (std::size_t o = 0; o < table.num_objects(); ++o) {
    const bool holds =
        EvaluateConditionComplete(ctable->condition(o), value_of);
    // The paper's CNF treats "dominator equal to o in every possible
    // world" as domination, so φ(o) may be false for an object whose
    // only "dominators" are exact ties. Skip objects with a tie in the
    // complete data; everything else must match exactly.
    bool has_tie = false;
    for (std::size_t p = 0; p < complete.num_objects() && !has_tie; ++p) {
      if (p == o) continue;
      bool equal = true;
      for (std::size_t j = 0; j < complete.num_attributes(); ++j) {
        if (complete.At(p, j) != complete.At(o, j)) {
          equal = false;
          break;
        }
      }
      has_tie = equal;
    }
    if (has_tie) continue;
    ++checked;
    EXPECT_EQ(holds, in_skyline[o]) << "object " << o;
  }
  EXPECT_GT(checked, 50u);
}

// ------------------------------------------------------------------ //
// Probability: ADPLL == Naive on every tractable real condition.
// ------------------------------------------------------------------ //

TEST_P(WorkloadPropertyTest, AdpllMatchesNaiveOnRealConditions) {
  const WorkloadCase& param = GetParam();
  const Table complete = MakeWorkload(param.kind, 80, param.seed);
  Rng rng(param.seed ^ 0xCAFE);
  const Table table =
      InjectMissingUniform(complete, param.missing_rate, rng);
  const auto ctable = BuildCTable(table, {.alpha = param.alpha});
  ASSERT_TRUE(ctable.ok());

  DistributionMap dists;
  Rng dist_rng(param.seed ^ 0xD157);
  for (const CellRef& cell : table.MissingCells()) {
    const auto card = static_cast<std::size_t>(
        table.schema().domain_size(cell.attribute));
    std::vector<double> dist(card);
    double total = 0.0;
    for (double& p : dist) {
      p = 0.1 + dist_rng.NextDouble();
      total += p;
    }
    for (double& p : dist) p /= total;
    BAYESCROWD_CHECK_OK(dists.Set(cell, dist));
  }

  for (std::size_t i : ctable->UndecidedObjects()) {
    const Condition& cond = ctable->condition(i);
    if (cond.Variables().size() > 7) continue;
    const auto naive = NaiveProbability(cond, dists);
    const auto adpll = AdpllProbability(cond, dists);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(adpll.ok());
    EXPECT_NEAR(naive.value(), adpll.value(), 1e-9) << "object " << i;
  }
}

// ------------------------------------------------------------------ //
// Skyline algorithms agree and are correct under Definition 1.
// ------------------------------------------------------------------ //

TEST_P(WorkloadPropertyTest, SkylineAlgorithmsAgree) {
  const WorkloadCase& param = GetParam();
  const Table table = MakeWorkload(param.kind, 150, param.seed);
  const auto bnl = SkylineBnl(table);
  const auto sfs = SkylineSfs(table);
  ASSERT_TRUE(bnl.ok());
  ASSERT_TRUE(sfs.ok());
  EXPECT_EQ(bnl.value(), sfs.value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadPropertyTest,
    ::testing::Values(
        WorkloadCase{Workload::kIndependent, 0.05, 0.2, 1},
        WorkloadCase{Workload::kIndependent, 0.20, 0.3, 2},
        WorkloadCase{Workload::kCorrelated, 0.10, 0.2, 3},
        WorkloadCase{Workload::kCorrelated, 0.20, 0.4, 4},
        WorkloadCase{Workload::kAnticorrelated, 0.10, 0.2, 5},
        WorkloadCase{Workload::kAnticorrelated, 0.15, 0.5, 6},
        WorkloadCase{Workload::kNba, 0.05, 0.1, 7},
        WorkloadCase{Workload::kNba, 0.15, 0.2, 8}));

// ------------------------------------------------------------------ //
// Substitution semantics: recursively assigning every variable of a
// condition must agree with direct complete evaluation.
// ------------------------------------------------------------------ //

TEST(SubstitutionSemanticsTest, FullSubstitutionMatchesDirectEvaluation) {
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    // Random small condition over 3 variables with domain 3.
    std::vector<CellRef> vars = {{0, 0}, {1, 0}, {2, 0}};
    std::vector<Conjunct> conjuncts;
    const std::size_t num_conjuncts = 1 + rng.NextBelow(3);
    for (std::size_t c = 0; c < num_conjuncts; ++c) {
      Conjunct conj;
      const std::size_t width = 1 + rng.NextBelow(2);
      for (std::size_t e = 0; e < width; ++e) {
        const CellRef v = vars[rng.NextBelow(3)];
        const CmpOp op = rng.NextBool(0.5) ? CmpOp::kGreater : CmpOp::kLess;
        if (rng.NextBool(0.4)) {
          CellRef w = vars[rng.NextBelow(3)];
          if (w == v) w = vars[(PackVar(w) + 1) % 3];
          conj.push_back(Expression::VarVar(v, op, w));
        } else {
          conj.push_back(Expression::VarConst(
              v, op, static_cast<Level>(rng.NextBelow(4))));
        }
      }
      conjuncts.push_back(std::move(conj));
    }
    const Condition condition = Condition::Cnf(std::move(conjuncts));

    for (Level a = 0; a < 3; ++a) {
      for (Level b = 0; b < 3; ++b) {
        for (Level c = 0; c < 3; ++c) {
          const std::map<CellRef, Level> assignment = {
              {vars[0], a}, {vars[1], b}, {vars[2], c}};
          Condition substituted = condition;
          for (const auto& [var, value] : assignment) {
            substituted = substituted.SubstituteVariable(var, value);
          }
          ASSERT_TRUE(substituted.IsDecided());
          const bool direct = EvaluateConditionComplete(
              condition,
              [&assignment](const CellRef& var) {
                return assignment.at(var);
              });
          EXPECT_EQ(substituted.IsTrue(), direct)
              << "round " << round << " assignment " << a << b << c;
        }
      }
    }
  }
}

// ------------------------------------------------------------------ //
// Knowledge conditioning: distributions stay normalized and supported
// inside the narrowed interval.
// ------------------------------------------------------------------ //

TEST(KnowledgeConditioningTest, RandomRestrictionsKeepDistributionsValid) {
  const Table table = MakeSampleMovieDataset();
  Rng rng(4242);
  for (int round = 0; round < 50; ++round) {
    KnowledgeBase kb(table.schema());
    const CellRef var = {4, static_cast<std::size_t>(rng.NextBelow(4)) + 1};
    const Level domain = table.schema().domain_size(var.attribute);
    // Apply 1-3 random (possibly conflicting) restrictions.
    const int facts = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < facts; ++f) {
      const Level bound = static_cast<Level>(rng.NextBelow(
          static_cast<std::uint64_t>(domain)));
      switch (rng.NextBelow(3)) {
        case 0:
          (void)kb.RestrictLess(var, bound);
          break;
        case 1:
          (void)kb.RestrictGreater(var, bound);
          break;
        default:
          (void)kb.RestrictEqual(var, bound);
      }
    }
    const auto [lo, hi] = kb.Bounds(var);
    ASSERT_LE(lo, hi);
    ASSERT_GE(lo, 0);
    ASSERT_LT(hi, domain);

    std::vector<double> raw(static_cast<std::size_t>(domain));
    double total = 0.0;
    for (double& p : raw) {
      p = rng.NextDouble();
      total += p;
    }
    for (double& p : raw) p /= total;
    const auto conditioned = kb.ConditionDistribution(var, raw);
    double sum = 0.0;
    for (std::size_t v = 0; v < conditioned.size(); ++v) {
      const auto level = static_cast<Level>(v);
      if (level < lo || level > hi) {
        EXPECT_DOUBLE_EQ(conditioned[v], 0.0);
      }
      sum += conditioned[v];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace bayescrowd
