// Tests for worker-quality modeling: voting rules, gold-task tracking,
// consensus estimation, the pooled platform modes, MAR/MNAR missingness
// and the framework's confidence stop.

#include <gtest/gtest.h>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowd/quality.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// ------------------------------------------------------------------ //
// Voting rules
// ------------------------------------------------------------------ //

TEST(VotingTest, MajorityPicksMode) {
  EXPECT_EQ(MajorityVote({Ordering::kLess, Ordering::kLess,
                          Ordering::kGreater}),
            Ordering::kLess);
  EXPECT_EQ(MajorityVote({Ordering::kEqual}), Ordering::kEqual);
}

TEST(VotingTest, WeightedVoteTrustsAccurateWorker) {
  // One 0.95 worker outvotes two 0.5 workers.
  const auto result = WeightedVote(
      {Ordering::kGreater, Ordering::kLess, Ordering::kLess},
      {0.95, 0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), Ordering::kGreater);
}

TEST(VotingTest, WeightedVoteEqualWeightsIsMajority) {
  const auto result = WeightedVote(
      {Ordering::kEqual, Ordering::kEqual, Ordering::kGreater},
      {0.8, 0.8, 0.8});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), Ordering::kEqual);
}

TEST(VotingTest, WeightedVoteValidatesInput) {
  EXPECT_FALSE(WeightedVote({}, {}).ok());
  EXPECT_FALSE(WeightedVote({Ordering::kLess}, {0.8, 0.9}).ok());
}

// ------------------------------------------------------------------ //
// WorkerQualityTracker
// ------------------------------------------------------------------ //

TEST(TrackerTest, PriorIsOptimisticButUncertain) {
  WorkerQualityTracker tracker(2);
  EXPECT_NEAR(tracker.Accuracy(0), 2.0 / 3.0, 1e-12);
}

TEST(TrackerTest, ConvergesToObservedRate) {
  WorkerQualityTracker tracker(1);
  for (int i = 0; i < 90; ++i) tracker.Record(0, true);
  for (int i = 0; i < 10; ++i) tracker.Record(0, false);
  EXPECT_NEAR(tracker.Accuracy(0), 0.9, 0.02);
  EXPECT_EQ(tracker.Accuracies().size(), 1u);
}

// ------------------------------------------------------------------ //
// Consensus (Dawid-Skene-style) estimation
// ------------------------------------------------------------------ //

TEST(ConsensusTest, SeparatesGoodFromBadWorkers) {
  // 3 workers: two accurate (0.95), one adversarially noisy (0.4), over
  // 200 simulated tasks.
  Rng rng(515);
  const double true_acc[3] = {0.95, 0.95, 0.4};
  std::vector<std::vector<Vote>> tasks(200);
  for (auto& votes : tasks) {
    const auto truth = static_cast<Ordering>(rng.NextBelow(3));
    for (std::size_t w = 0; w < 3; ++w) {
      Ordering answer = truth;
      if (!rng.NextBool(true_acc[w])) {
        answer = static_cast<Ordering>(
            (static_cast<int>(truth) + 1 + rng.NextBelow(2)) % 3);
      }
      votes.push_back({w, answer});
    }
  }
  const auto est = EstimateAccuraciesByConsensus(tasks, 3);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est.value()[0], 0.85);
  EXPECT_GT(est.value()[1], 0.85);
  EXPECT_LT(est.value()[2], 0.6);
}

TEST(ConsensusTest, ValidatesInput) {
  EXPECT_FALSE(EstimateAccuraciesByConsensus({}, 0).ok());
  EXPECT_FALSE(EstimateAccuraciesByConsensus({{{5, Ordering::kLess}}}, 2)
                   .ok());
  EXPECT_FALSE(
      EstimateAccuraciesByConsensus({{{0, Ordering::kLess}}}, 1, 0).ok());
}

// ------------------------------------------------------------------ //
// Pooled platform modes
// ------------------------------------------------------------------ //

std::vector<Task> OneTask() {
  std::vector<Task> tasks(1);
  tasks[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  return tasks;
}

double AnswerAccuracy(SimulatedPlatformOptions options, int trials) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedCrowdPlatform platform(gt, options);
  int correct = 0;
  for (int i = 0; i < trials; ++i) {
    const auto answers = platform.PostBatch(OneTask());
    BAYESCROWD_CHECK_OK(answers.status());
    correct += answers.value()[0].relation == Ordering::kLess ? 1 : 0;
  }
  return static_cast<double>(correct) / trials;
}

TEST(PooledPlatformTest, WeightedAggregationNeedsPool) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.aggregation = AggregationMethod::kWeightedTrue;
  SimulatedCrowdPlatform platform(gt, options);
  EXPECT_TRUE(platform.PostBatch(OneTask()).status().code() ==
              StatusCode::kFailedPrecondition);
}

TEST(PooledPlatformTest, PoolAccuraciesAssignedRoundRobin) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.worker_pool_size = 4;
  options.accuracy_pool = {0.6, 0.9};
  SimulatedCrowdPlatform platform(gt, options);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(0), 0.6);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(1), 0.9);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(2), 0.6);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(3), 0.9);
}

TEST(PooledPlatformTest, WeightedTrueBeatsMajorityWithMixedPool) {
  // Pool: one excellent worker among mediocre ones. Weighted voting
  // should exploit the good worker; majority cannot.
  SimulatedPlatformOptions base;
  base.worker_pool_size = 3;
  base.accuracy_pool = {0.98, 0.45, 0.45};
  base.workers_per_task = 3;
  base.seed = 77;

  SimulatedPlatformOptions majority = base;
  majority.aggregation = AggregationMethod::kMajority;
  SimulatedPlatformOptions weighted = base;
  weighted.aggregation = AggregationMethod::kWeightedTrue;

  const double acc_majority = AnswerAccuracy(majority, 3000);
  const double acc_weighted = AnswerAccuracy(weighted, 3000);
  EXPECT_GT(acc_weighted, acc_majority + 0.05);
  EXPECT_GT(acc_weighted, 0.9);
}

TEST(PooledPlatformTest, EstimatedWeightsApproachTrueWeights) {
  SimulatedPlatformOptions base;
  base.worker_pool_size = 3;
  base.accuracy_pool = {0.98, 0.45, 0.45};
  base.workers_per_task = 3;
  base.gold_fraction = 0.3;
  base.seed = 99;

  SimulatedPlatformOptions estimated = base;
  estimated.aggregation = AggregationMethod::kWeightedEstimated;
  SimulatedPlatformOptions majority = base;
  majority.aggregation = AggregationMethod::kMajority;

  // After enough gold observations the estimated weights should clearly
  // beat majority voting.
  const double acc_estimated = AnswerAccuracy(estimated, 4000);
  const double acc_majority = AnswerAccuracy(majority, 4000);
  EXPECT_GT(acc_estimated, acc_majority + 0.03);
}

// ------------------------------------------------------------------ //
// MAR / MNAR injection
// ------------------------------------------------------------------ //

TEST(MissingnessTest, MarHitsExpectedRateAndSparesDriver) {
  const Table complete = MakeAdultLike(3000, 5);
  Rng rng(6);
  const Table injected = InjectMissingMar(complete, 0.15, 0, rng);
  EXPECT_NEAR(injected.MissingRate(), 0.15, 0.02);
  for (std::size_t i = 0; i < injected.num_objects(); ++i) {
    EXPECT_FALSE(injected.IsMissing(i, 0));
  }
}

TEST(MissingnessTest, MarCorrelatesWithDriver) {
  const Table complete = MakeAdultLike(5000, 7);
  Rng rng(8);
  const Table injected = InjectMissingMar(complete, 0.15, 0, rng);
  // Split rows by driver level; high-driver rows must lose more cells.
  const Level mid = complete.schema().domain_size(0) / 2;
  double low_missing = 0.0;
  double low_rows = 0.0;
  double high_missing = 0.0;
  double high_rows = 0.0;
  for (std::size_t i = 0; i < injected.num_objects(); ++i) {
    std::size_t missing = 0;
    for (std::size_t j = 1; j < injected.num_attributes(); ++j) {
      missing += injected.IsMissing(i, j) ? 1 : 0;
    }
    if (complete.At(i, 0) >= mid) {
      high_missing += static_cast<double>(missing);
      high_rows += 1.0;
    } else {
      low_missing += static_cast<double>(missing);
      low_rows += 1.0;
    }
  }
  EXPECT_GT(high_missing / high_rows, low_missing / low_rows);
}

TEST(MissingnessTest, MnarHidesHighValues) {
  const Table complete = MakeAdultLike(5000, 9);
  Rng rng(10);
  const Table injected = InjectMissingMnar(complete, 0.15, rng);
  EXPECT_NEAR(injected.MissingRate(), 0.15, 0.02);
  // The mean *observed* value must drop below the complete mean.
  double complete_sum = 0.0;
  double observed_sum = 0.0;
  double observed_count = 0.0;
  const double total = static_cast<double>(complete.num_objects() *
                                           complete.num_attributes());
  for (std::size_t i = 0; i < complete.num_objects(); ++i) {
    for (std::size_t j = 0; j < complete.num_attributes(); ++j) {
      complete_sum += complete.At(i, j);
      if (!injected.IsMissing(i, j)) {
        observed_sum += injected.At(i, j);
        observed_count += 1.0;
      }
    }
  }
  EXPECT_LT(observed_sum / observed_count, complete_sum / total);
}

// ------------------------------------------------------------------ //
// Confidence stop
// ------------------------------------------------------------------ //

TEST(ConfidenceStopTest, StopsEarlyWhenProbabilitiesAreExtreme) {
  const Table complete = MakeNbaLike(300, 404, 8);
  Rng rng(11);
  const Table incomplete = InjectMissingUniform(complete, 0.08, rng);

  BayesCrowdOptions options;
  options.ctable.alpha = 0.1;
  options.budget = 500;  // Far more than needed.
  options.latency = 50;
  options.confidence_stop_entropy = 0.35;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  SimulatedCrowdPlatform platform(complete, {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());

  // With the stop enabled, either the run ends confident with unspent
  // budget, or every expression was exhausted before confidence hit.
  if (result->stopped_confident) {
    EXPECT_LT(result->tasks_posted, options.budget);
  }

  // And accuracy should not collapse versus the full-budget run.
  BayesCrowdOptions full = options;
  full.confidence_stop_entropy = 0.0;
  BayesCrowd full_framework(full);
  UniformPosteriorProvider posteriors2(incomplete.schema());
  SimulatedCrowdPlatform platform2(complete, {});
  const auto full_result =
      full_framework.Run(incomplete, posteriors2, platform2);
  ASSERT_TRUE(full_result.ok());
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  const double f1_stop =
      EvaluateResultSet(result->result_objects, truth.value()).f1;
  const double f1_full =
      EvaluateResultSet(full_result->result_objects, truth.value()).f1;
  EXPECT_GT(f1_stop, f1_full - 0.1);
  EXPECT_LE(result->tasks_posted, full_result->tasks_posted);
}

}  // namespace
}  // namespace bayescrowd
