// Tests for worker-quality modeling: voting rules, gold-task tracking,
// consensus estimation, the pooled platform modes, MAR/MNAR missingness
// and the framework's confidence stop.

#include <gtest/gtest.h>

#include "bayesnet/imputation.h"
#include "common/binio.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowd/quality.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/metrics.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

// ------------------------------------------------------------------ //
// Voting rules
// ------------------------------------------------------------------ //

TEST(VotingTest, MajorityPicksMode) {
  EXPECT_EQ(MajorityVote({Ordering::kLess, Ordering::kLess,
                          Ordering::kGreater}),
            Ordering::kLess);
  EXPECT_EQ(MajorityVote({Ordering::kEqual}), Ordering::kEqual);
}

TEST(VotingTest, WeightedVoteTrustsAccurateWorker) {
  // One 0.95 worker outvotes two 0.5 workers.
  const auto result = WeightedVote(
      {Ordering::kGreater, Ordering::kLess, Ordering::kLess},
      {0.95, 0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), Ordering::kGreater);
}

TEST(VotingTest, WeightedVoteEqualWeightsIsMajority) {
  const auto result = WeightedVote(
      {Ordering::kEqual, Ordering::kEqual, Ordering::kGreater},
      {0.8, 0.8, 0.8});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), Ordering::kEqual);
}

TEST(VotingTest, WeightedVoteValidatesInput) {
  EXPECT_FALSE(WeightedVote({}, {}).ok());
  EXPECT_FALSE(WeightedVote({Ordering::kLess}, {0.8, 0.9}).ok());
}

TEST(VotingTest, MajorityTieBreakIsPinned) {
  // Contract regression: both MajorityVote and the simulated platform's
  // in-house tally break ties toward the lowest Ordering value
  // (kLess < kEqual < kGreater), NOT toward the last vote seen. The two
  // implementations drifted apart once; this pins them together.
  EXPECT_EQ(MajorityVote({Ordering::kGreater, Ordering::kEqual}),
            Ordering::kEqual);
  EXPECT_EQ(MajorityVote({Ordering::kGreater, Ordering::kLess}),
            Ordering::kLess);
  EXPECT_EQ(MajorityVote({Ordering::kEqual, Ordering::kGreater,
                          Ordering::kLess}),
            Ordering::kLess);
  // Vote order must not matter.
  EXPECT_EQ(MajorityVote({Ordering::kLess, Ordering::kGreater}),
            MajorityVote({Ordering::kGreater, Ordering::kLess}));
}

TEST(VotingTest, WeightedVoteClampEdges) {
  // Accuracies outside [0.34, 0.999] clamp instead of exploding: 1.0
  // would be an infinite log-odds weight, 0.0 a negative one that
  // flips the worker into an oracle-of-wrongness. After clamping, a
  // perfect worker still outvotes any fixed number of zeros, and every
  // weight stays positive (a 0.0-accuracy solo voter still elects their
  // own answer rather than its opposite).
  const auto solo = WeightedVote({Ordering::kGreater}, {0.0});
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo.value(), Ordering::kGreater);

  const auto oracle = WeightedVote(
      {Ordering::kLess, Ordering::kEqual, Ordering::kEqual,
       Ordering::kEqual},
      {1.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.value(), Ordering::kLess);

  // Exactly at the clamp bounds: still finite, still deterministic.
  const auto bounds = WeightedVote({Ordering::kEqual, Ordering::kLess},
                                   {0.999, 0.34});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds.value(), Ordering::kEqual);
}

// ------------------------------------------------------------------ //
// WorkerQualityTracker
// ------------------------------------------------------------------ //

TEST(TrackerTest, PriorIsOptimisticButUncertain) {
  WorkerQualityTracker tracker(2);
  EXPECT_NEAR(tracker.Accuracy(0), 2.0 / 3.0, 1e-12);
}

TEST(TrackerTest, ConvergesToObservedRate) {
  WorkerQualityTracker tracker(1);
  for (int i = 0; i < 90; ++i) tracker.Record(0, true);
  for (int i = 0; i < 10; ++i) tracker.Record(0, false);
  EXPECT_NEAR(tracker.Accuracy(0), 0.9, 0.02);
  EXPECT_EQ(tracker.Accuracies().size(), 1u);
}

TEST(TrackerTest, OutOfRangeWorkerIsCountedNeverUB) {
  // A corrupt or adversarial worker id must not index past the table:
  // Record drops the observation, Accuracy answers the prior, and both
  // bump the bad-id event count (mirrored into the
  // crowd.quality.bad_worker_id counter when bound).
  obs::MetricsRegistry registry;
  WorkerQualityTracker tracker(2);
  tracker.BindMetrics(&registry);

  tracker.Record(2, true);   // One past the end.
  tracker.Record(9999, false);
  EXPECT_NEAR(tracker.Accuracy(7), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(tracker.bad_worker_events(), 3u);
  EXPECT_EQ(registry.GetCounter("crowd.quality.bad_worker_id")->value(),
            3u);

  // In-range workers are untouched by the bad traffic.
  tracker.Record(0, true);
  EXPECT_GT(tracker.Accuracy(0), 2.0 / 3.0);
  EXPECT_EQ(tracker.bad_worker_events(), 3u);
}

// ------------------------------------------------------------------ //
// Consensus (Dawid-Skene-style) estimation
// ------------------------------------------------------------------ //

TEST(ConsensusTest, SeparatesGoodFromBadWorkers) {
  // 3 workers: two accurate (0.95), one adversarially noisy (0.4), over
  // 200 simulated tasks.
  Rng rng(515);
  const double true_acc[3] = {0.95, 0.95, 0.4};
  std::vector<std::vector<Vote>> tasks(200);
  for (auto& votes : tasks) {
    const auto truth = static_cast<Ordering>(rng.NextBelow(3));
    for (std::size_t w = 0; w < 3; ++w) {
      Ordering answer = truth;
      if (!rng.NextBool(true_acc[w])) {
        answer = static_cast<Ordering>(
            (static_cast<int>(truth) + 1 + rng.NextBelow(2)) % 3);
      }
      votes.push_back({w, answer});
    }
  }
  const auto est = EstimateAccuraciesByConsensus(tasks, 3);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est.value()[0], 0.85);
  EXPECT_GT(est.value()[1], 0.85);
  EXPECT_LT(est.value()[2], 0.6);
}

TEST(ConsensusTest, ValidatesInput) {
  EXPECT_FALSE(EstimateAccuraciesByConsensus({}, 0).ok());
  EXPECT_FALSE(EstimateAccuraciesByConsensus({{{5, Ordering::kLess}}}, 2)
                   .ok());
  EXPECT_FALSE(
      EstimateAccuraciesByConsensus({{{0, Ordering::kLess}}}, 1, 0).ok());
}

// ------------------------------------------------------------------ //
// Fleiss kappa (collapse detector)
// ------------------------------------------------------------------ //

TEST(FleissKappaTest, PerfectAgreementIsOne) {
  EXPECT_DOUBLE_EQ(
      FleissKappa({{Ordering::kLess, Ordering::kLess, Ordering::kLess},
                   {Ordering::kGreater, Ordering::kGreater}}),
      1.0);
}

TEST(FleissKappaTest, ChanceLevelIsNearZero) {
  // A seeded uniform-random crowd: agreement indistinguishable from
  // chance.
  Rng rng(31);
  std::vector<std::vector<Ordering>> tasks(400);
  for (auto& votes : tasks) {
    for (int v = 0; v < 5; ++v) {
      votes.push_back(static_cast<Ordering>(rng.NextBelow(3)));
    }
  }
  EXPECT_NEAR(FleissKappa(tasks), 0.0, 0.05);
}

TEST(FleissKappaTest, SystematicDisagreementIsNegative) {
  // Every task splits evenly between two camps — less agreement than
  // chance would produce.
  std::vector<std::vector<Ordering>> tasks(
      20, {Ordering::kLess, Ordering::kGreater});
  EXPECT_LT(FleissKappa(tasks), 0.0);
}

TEST(FleissKappaTest, DegenerateInputsReadAsHealthy) {
  // No multi-vote task, or a crowd unanimous in one category (chance
  // agreement total): 1.0, never NaN — the collapse detector must not
  // trip on an empty or trivial round.
  EXPECT_DOUBLE_EQ(FleissKappa({}), 1.0);
  EXPECT_DOUBLE_EQ(FleissKappa({{Ordering::kLess}}), 1.0);
  EXPECT_DOUBLE_EQ(
      FleissKappa({{Ordering::kEqual, Ordering::kEqual},
                   {Ordering::kEqual, Ordering::kEqual}}),
      1.0);
}

// ------------------------------------------------------------------ //
// JointQualityModel (marketplace defense)
// ------------------------------------------------------------------ //

// Builds a synthetic round history: `honest` workers answering kLess
// with plausible work times, one spammer (id = honest) answering
// uniformly at implausible speed.
void FeedTasks(JointQualityModel* model, std::size_t honest,
               std::size_t tasks, Rng* rng) {
  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<VoteRecord> votes;
    for (std::uint32_t w = 0; w < honest; ++w) {
      votes.push_back({w, Ordering::kLess, 20.0 + rng->NextDouble() * 10});
    }
    votes.push_back({static_cast<std::uint32_t>(honest),
                     static_cast<Ordering>(rng->NextBelow(3)),
                     0.5 + rng->NextDouble()});
    model->AddTask(votes);
  }
}

TEST(JointQualityTest, WorkTimeGateQuarantinesAndLatches) {
  Rng rng(5);
  JointQualityModel model;
  FeedTasks(&model, 4, 12, &rng);
  EXPECT_EQ(model.Refresh(), 1u);  // The click-through spammer.
  EXPECT_TRUE(model.Quarantined(4));
  EXPECT_FALSE(model.Quarantined(0));
  EXPECT_LT(model.MeanWorkSeconds(4),
            model.options().min_work_seconds);

  // Quarantine latches: even if the worker reforms (slow, correct
  // votes from now on), the flag stays for the session.
  for (int t = 0; t < 40; ++t) {
    model.AddTask({{0, Ordering::kLess, 25.0},
                   {4, Ordering::kLess, 25.0}});
  }
  EXPECT_EQ(model.Refresh(), 0u);
  EXPECT_TRUE(model.Quarantined(4));
  EXPECT_EQ(model.quarantined_count(), 1u);
}

TEST(JointQualityTest, NewArrivalsNeverFlaggedOnFirstImpression) {
  // Fewer than min_observations votes: no gate may fire, however bad
  // the early signal looks.
  JointQualityModel model;
  for (std::size_t t = 0; t + 1 < model.options().min_observations;
       ++t) {
    model.AddTask({{0, Ordering::kLess, 30.0},
                   {1, Ordering::kLess, 30.0},
                   {2, Ordering::kGreater, 0.1}});
  }
  model.Refresh();
  EXPECT_FALSE(model.Quarantined(2));
}

TEST(JointQualityTest, GoldTasksAnchorAgainstColluderCapture) {
  // 4 coordinated colluders infiltrate a crowd of 4 honest-but-fallible
  // (75%) workers. The bloc's perfect mutual agreement beats the honest
  // workers' noisy mutual agreement, so unanchored EM can elect the
  // bloc's answer as consensus and invert the accuracy estimates. A
  // modest fraction of operator-audited (gold) tasks pins the
  // consensus at the truth and keeps the estimates upright.
  Rng rng(77);
  for (const bool gold : {false, true}) {
    JointQualityModel model;
    for (int t = 0; t < 60; ++t) {
      std::vector<VoteRecord> votes;
      for (std::uint32_t w = 0; w < 4; ++w) {  // Honest, 75% accurate.
        const bool hit = rng.NextBool(0.75);
        votes.push_back({w,
                         hit ? Ordering::kLess
                             : static_cast<Ordering>(1 + rng.NextBelow(2)),
                         30.0});
      }
      for (std::uint32_t w = 4; w < 8; ++w) {  // Colluders: same lie.
        votes.push_back({w, Ordering::kGreater, 30.0});
      }
      if (gold && t % 8 == 0) {
        model.AddGoldTask(votes, Ordering::kLess);
      } else {
        model.AddTask(votes);
      }
    }
    model.Refresh();
    if (gold) {
      EXPECT_GT(model.gold_tasks(), 0u);
      for (std::size_t w = 0; w < 4; ++w) {
        EXPECT_GT(model.Accuracy(w), 0.5) << "honest worker " << w;
        EXPECT_FALSE(model.Quarantined(w)) << "honest worker " << w;
      }
      for (std::size_t w = 4; w < 8; ++w) {
        EXPECT_LT(model.Accuracy(w), 0.3) << "colluder " << w;
        EXPECT_TRUE(model.Quarantined(w)) << "colluder " << w;
      }
    } else {
      // Unanchored: the bloc wins — every colluder outscores every
      // honest worker, the exact inversion the anchor exists to
      // prevent.
      double worst_colluder = 1.0;
      double best_honest = 0.0;
      for (std::size_t w = 0; w < 4; ++w) {
        best_honest = std::max(best_honest, model.Accuracy(w));
      }
      for (std::size_t w = 4; w < 8; ++w) {
        worst_colluder = std::min(worst_colluder, model.Accuracy(w));
      }
      EXPECT_GT(worst_colluder, best_honest);
      EXPECT_EQ(model.gold_tasks(), 0u);
    }
  }
}

TEST(JointQualityTest, SaveLoadRoundTrip) {
  Rng rng(13);
  JointQualityModel model;
  FeedTasks(&model, 3, 10, &rng);
  model.AddGoldTask({{0, Ordering::kEqual, 22.0},
                     {1, Ordering::kEqual, 28.0}},
                    Ordering::kEqual);
  model.Refresh();

  std::string blob;
  BinWriter writer(&blob);
  model.Save(&writer);

  JointQualityModel loaded;
  BinReader reader(blob);
  ASSERT_TRUE(loaded.Load(&reader).ok());
  ASSERT_EQ(loaded.num_workers(), model.num_workers());
  EXPECT_EQ(loaded.gold_tasks(), model.gold_tasks());
  EXPECT_EQ(loaded.tasks_accumulated(), model.tasks_accumulated());
  for (std::size_t w = 0; w < model.num_workers(); ++w) {
    EXPECT_DOUBLE_EQ(loaded.Accuracy(w), model.Accuracy(w));
    EXPECT_DOUBLE_EQ(loaded.ApprovalRate(w), model.ApprovalRate(w));
    EXPECT_DOUBLE_EQ(loaded.MeanWorkSeconds(w), model.MeanWorkSeconds(w));
    EXPECT_EQ(loaded.Quarantined(w), model.Quarantined(w));
  }

  // And a re-save of the loaded model is byte-identical.
  std::string again;
  BinWriter rewriter(&again);
  loaded.Save(&rewriter);
  EXPECT_EQ(blob, again);

  // Truncated blobs fail cleanly, never crash.
  for (const std::size_t cut : {std::size_t{1}, blob.size() / 2}) {
    JointQualityModel corrupt;
    BinReader bad(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(corrupt.Load(&bad).ok());
  }
}

// ------------------------------------------------------------------ //
// Pooled platform modes
// ------------------------------------------------------------------ //

std::vector<Task> OneTask() {
  std::vector<Task> tasks(1);
  tasks[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  return tasks;
}

double AnswerAccuracy(SimulatedPlatformOptions options, int trials) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedCrowdPlatform platform(gt, options);
  int correct = 0;
  for (int i = 0; i < trials; ++i) {
    const auto answers = platform.PostBatch(OneTask());
    BAYESCROWD_CHECK_OK(answers.status());
    correct += answers.value()[0].relation == Ordering::kLess ? 1 : 0;
  }
  return static_cast<double>(correct) / trials;
}

TEST(PooledPlatformTest, WeightedAggregationNeedsPool) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.aggregation = AggregationMethod::kWeightedTrue;
  SimulatedCrowdPlatform platform(gt, options);
  EXPECT_TRUE(platform.PostBatch(OneTask()).status().code() ==
              StatusCode::kFailedPrecondition);
}

TEST(PooledPlatformTest, PoolAccuraciesAssignedRoundRobin) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedPlatformOptions options;
  options.worker_pool_size = 4;
  options.accuracy_pool = {0.6, 0.9};
  SimulatedCrowdPlatform platform(gt, options);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(0), 0.6);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(1), 0.9);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(2), 0.6);
  EXPECT_DOUBLE_EQ(platform.pool_accuracy(3), 0.9);
}

TEST(PooledPlatformTest, WeightedTrueBeatsMajorityWithMixedPool) {
  // Pool: one excellent worker among mediocre ones. Weighted voting
  // should exploit the good worker; majority cannot.
  SimulatedPlatformOptions base;
  base.worker_pool_size = 3;
  base.accuracy_pool = {0.98, 0.45, 0.45};
  base.workers_per_task = 3;
  base.seed = 77;

  SimulatedPlatformOptions majority = base;
  majority.aggregation = AggregationMethod::kMajority;
  SimulatedPlatformOptions weighted = base;
  weighted.aggregation = AggregationMethod::kWeightedTrue;

  const double acc_majority = AnswerAccuracy(majority, 3000);
  const double acc_weighted = AnswerAccuracy(weighted, 3000);
  EXPECT_GT(acc_weighted, acc_majority + 0.05);
  EXPECT_GT(acc_weighted, 0.9);
}

TEST(PooledPlatformTest, EstimatedWeightsApproachTrueWeights) {
  SimulatedPlatformOptions base;
  base.worker_pool_size = 3;
  base.accuracy_pool = {0.98, 0.45, 0.45};
  base.workers_per_task = 3;
  base.gold_fraction = 0.3;
  base.seed = 99;

  SimulatedPlatformOptions estimated = base;
  estimated.aggregation = AggregationMethod::kWeightedEstimated;
  SimulatedPlatformOptions majority = base;
  majority.aggregation = AggregationMethod::kMajority;

  // After enough gold observations the estimated weights should clearly
  // beat majority voting.
  const double acc_estimated = AnswerAccuracy(estimated, 4000);
  const double acc_majority = AnswerAccuracy(majority, 4000);
  EXPECT_GT(acc_estimated, acc_majority + 0.03);
}

// ------------------------------------------------------------------ //
// MAR / MNAR injection
// ------------------------------------------------------------------ //

TEST(MissingnessTest, MarHitsExpectedRateAndSparesDriver) {
  const Table complete = MakeAdultLike(3000, 5);
  Rng rng(6);
  const Table injected = InjectMissingMar(complete, 0.15, 0, rng);
  EXPECT_NEAR(injected.MissingRate(), 0.15, 0.02);
  for (std::size_t i = 0; i < injected.num_objects(); ++i) {
    EXPECT_FALSE(injected.IsMissing(i, 0));
  }
}

TEST(MissingnessTest, MarCorrelatesWithDriver) {
  const Table complete = MakeAdultLike(5000, 7);
  Rng rng(8);
  const Table injected = InjectMissingMar(complete, 0.15, 0, rng);
  // Split rows by driver level; high-driver rows must lose more cells.
  const Level mid = complete.schema().domain_size(0) / 2;
  double low_missing = 0.0;
  double low_rows = 0.0;
  double high_missing = 0.0;
  double high_rows = 0.0;
  for (std::size_t i = 0; i < injected.num_objects(); ++i) {
    std::size_t missing = 0;
    for (std::size_t j = 1; j < injected.num_attributes(); ++j) {
      missing += injected.IsMissing(i, j) ? 1 : 0;
    }
    if (complete.At(i, 0) >= mid) {
      high_missing += static_cast<double>(missing);
      high_rows += 1.0;
    } else {
      low_missing += static_cast<double>(missing);
      low_rows += 1.0;
    }
  }
  EXPECT_GT(high_missing / high_rows, low_missing / low_rows);
}

TEST(MissingnessTest, MnarHidesHighValues) {
  const Table complete = MakeAdultLike(5000, 9);
  Rng rng(10);
  const Table injected = InjectMissingMnar(complete, 0.15, rng);
  EXPECT_NEAR(injected.MissingRate(), 0.15, 0.02);
  // The mean *observed* value must drop below the complete mean.
  double complete_sum = 0.0;
  double observed_sum = 0.0;
  double observed_count = 0.0;
  const double total = static_cast<double>(complete.num_objects() *
                                           complete.num_attributes());
  for (std::size_t i = 0; i < complete.num_objects(); ++i) {
    for (std::size_t j = 0; j < complete.num_attributes(); ++j) {
      complete_sum += complete.At(i, j);
      if (!injected.IsMissing(i, j)) {
        observed_sum += injected.At(i, j);
        observed_count += 1.0;
      }
    }
  }
  EXPECT_LT(observed_sum / observed_count, complete_sum / total);
}

// ------------------------------------------------------------------ //
// Confidence stop
// ------------------------------------------------------------------ //

TEST(ConfidenceStopTest, StopsEarlyWhenProbabilitiesAreExtreme) {
  const Table complete = MakeNbaLike(300, 404, 8);
  Rng rng(11);
  const Table incomplete = InjectMissingUniform(complete, 0.08, rng);

  BayesCrowdOptions options;
  options.ctable.alpha = 0.1;
  options.budget = 500;  // Far more than needed.
  options.latency = 50;
  options.confidence_stop_entropy = 0.35;
  BayesCrowd framework(options);
  UniformPosteriorProvider posteriors(incomplete.schema());
  SimulatedCrowdPlatform platform(complete, {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());

  // With the stop enabled, either the run ends confident with unspent
  // budget, or every expression was exhausted before confidence hit.
  if (result->stopped_confident) {
    EXPECT_LT(result->tasks_posted, options.budget);
  }

  // And accuracy should not collapse versus the full-budget run.
  BayesCrowdOptions full = options;
  full.confidence_stop_entropy = 0.0;
  BayesCrowd full_framework(full);
  UniformPosteriorProvider posteriors2(incomplete.schema());
  SimulatedCrowdPlatform platform2(complete, {});
  const auto full_result =
      full_framework.Run(incomplete, posteriors2, platform2);
  ASSERT_TRUE(full_result.ok());
  const auto truth = SkylineBnl(complete);
  ASSERT_TRUE(truth.ok());
  const double f1_stop =
      EvaluateResultSet(result->result_objects, truth.value()).f1;
  const double f1_full =
      EvaluateResultSet(full_result->result_objects, truth.value()).f1;
  EXPECT_GT(f1_stop, f1_full - 0.1);
  EXPECT_LE(result->tasks_posted, full_result->tasks_posted);
}

}  // namespace
}  // namespace bayescrowd
