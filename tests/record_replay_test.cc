// Tests for crowd answer recording/replay — pause/resume of a
// deterministic crowd query.

#include <gtest/gtest.h>

#include <filesystem>

#include "bayesnet/imputation.h"
#include "common/fileio.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

CellRef V(std::size_t o, std::size_t a) { return {o, a}; }

AnswerLog SampleLog() {
  AnswerLog log;
  AnswerLogEntry a;
  a.expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  a.relation = Ordering::kLess;
  a.round = 1;
  AnswerLogEntry b;
  b.expression = Expression::VarVar(V(4, 1), CmpOp::kGreater, V(1, 1));
  b.relation = Ordering::kGreater;
  b.round = 1;
  log.entries = {a, b};
  return log;
}

TEST(AnswerLogTest, SerializationRoundTrip) {
  const AnswerLog log = SampleLog();
  const auto parsed = ParseAnswerLog(SerializeAnswerLog(log));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), log.entries.size());
  for (std::size_t i = 0; i < log.entries.size(); ++i) {
    EXPECT_TRUE(parsed->entries[i].expression == log.entries[i].expression);
    EXPECT_EQ(parsed->entries[i].relation, log.entries[i].relation);
    EXPECT_EQ(parsed->entries[i].round, log.entries[i].round);
  }
}

TEST(AnswerLogTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bc_answers.log";
  ASSERT_TRUE(SaveAnswerLog(SampleLog(), path).ok());
  const auto loaded = LoadAnswerLog(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries.size(), 2u);
}

TEST(AnswerLogTest, V2EventsSurviveSerialization) {
  // Abstains and whole-batch failure markers (log format v2) must
  // round-trip: replaying a faulted session depends on them.
  AnswerLog log = SampleLog();
  AnswerLogEntry abstain;
  abstain.kind = AnswerLogEntry::Kind::kAbstain;
  abstain.expression = Expression::VarConst(V(2, 0), CmpOp::kGreater, 1);
  abstain.round = 2;
  AnswerLogEntry failure;
  failure.kind = AnswerLogEntry::Kind::kFailure;
  failure.round = 3;
  log.entries.push_back(abstain);
  log.entries.push_back(failure);

  const std::string text = SerializeAnswerLog(log);
  EXPECT_NE(text.find(" a 2\n"), std::string::npos);
  EXPECT_NE(text.find("fail 3\n"), std::string::npos);

  const auto parsed = ParseAnswerLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 4u);
  EXPECT_EQ(parsed->entries[0].kind, AnswerLogEntry::Kind::kAnswer);
  EXPECT_EQ(parsed->entries[2].kind, AnswerLogEntry::Kind::kAbstain);
  EXPECT_TRUE(parsed->entries[2].expression == abstain.expression);
  EXPECT_EQ(parsed->entries[2].round, 2u);
  EXPECT_EQ(parsed->entries[3].kind, AnswerLogEntry::Kind::kFailure);
  EXPECT_EQ(parsed->entries[3].round, 3u);
}

TEST(AnswerLogTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseAnswerLog("vc 1 2\n").ok());           // Truncated.
  EXPECT_FALSE(ParseAnswerLog("vx 1 2 < 3 l 1\n").ok());   // Bad kind.
  EXPECT_FALSE(ParseAnswerLog("vc 1 2 = 3 l 1\n").ok());   // Bad op.
  EXPECT_FALSE(ParseAnswerLog("vc 1 2 < 3 q 1\n").ok());   // Bad relation.
  EXPECT_TRUE(ParseAnswerLog("# comment\n\n").ok());       // Empty ok.
}

TEST(AnswerLogTest, V3VoteTokensRoundTrip) {
  // Per-vote provenance (format v3): worker id, raw answer, and
  // ms-quantized work time trail the aggregate. The marketplace's
  // replay determinism — adaptive charging included — rides on these
  // surviving a serialize/parse cycle byte-exactly.
  AnswerLog log = SampleLog();
  log.entries[0].votes = {{7, Ordering::kLess, 31.25},
                          {2, Ordering::kEqual, 0.004},
                          {19, Ordering::kGreater, 3600.0}};

  const std::string text = SerializeAnswerLog(log);
  EXPECT_NE(text.find(" 7:l:31250"), std::string::npos);
  EXPECT_NE(text.find(" 2:e:4"), std::string::npos);
  EXPECT_NE(text.find(" 19:g:3600000"), std::string::npos);

  const auto parsed = ParseAnswerLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries[0].votes.size(), 3u);
  EXPECT_EQ(parsed->entries[0].votes[0].worker, 7u);
  EXPECT_EQ(parsed->entries[0].votes[0].answer, Ordering::kLess);
  EXPECT_DOUBLE_EQ(parsed->entries[0].votes[0].work_seconds, 31.25);
  EXPECT_EQ(parsed->entries[0].votes[2].worker, 19u);
  EXPECT_TRUE(parsed->entries[1].votes.empty());

  // The quantization is stable: a reparse of the reserialized text is
  // byte-identical (the property the thread-invariance contract uses).
  EXPECT_EQ(SerializeAnswerLog(parsed.value()), text);
}

TEST(AnswerLogTest, V2LogsWithoutVoteTokensStillLoad) {
  // Logs recorded before vote provenance existed (v1/v2 headers, no
  // trailing tokens) must keep loading: replaying an old session is a
  // compatibility promise.
  const std::string v2 =
      "# bayescrowd answer log v2\n"
      "vc 4 3 < 4 l 1\n"
      "vv 4 1 > 1 1 g 1\n"
      "vc 2 0 > 1 a 2\n"
      "fail 3\n";
  const auto parsed = ParseAnswerLog(v2);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 4u);
  for (const AnswerLogEntry& entry : parsed->entries) {
    EXPECT_TRUE(entry.votes.empty());
  }
  EXPECT_EQ(parsed->entries[0].relation, Ordering::kLess);
  EXPECT_EQ(parsed->entries[2].kind, AnswerLogEntry::Kind::kAbstain);
  EXPECT_EQ(parsed->entries[3].kind, AnswerLogEntry::Kind::kFailure);
}

TEST(AnswerLogTest, RejectsMalformedVoteTokens) {
  EXPECT_FALSE(ParseAnswerLog("vc 1 2 < 3 l 1 7:q:30\n").ok());  // Answer.
  EXPECT_FALSE(ParseAnswerLog("vc 1 2 < 3 l 1 7:l\n").ok());     // Field.
  EXPECT_FALSE(ParseAnswerLog("vc 1 2 < 3 l 1 x:l:30\n").ok());  // Worker.
  EXPECT_TRUE(ParseAnswerLog("vc 1 2 < 3 l 1 7:l:30\n").ok());
}

TEST(RecordReplayTest, RecordingCapturesTranscript) {
  const Table gt = MakeSampleMovieGroundTruth();
  SimulatedCrowdPlatform live(gt, {});
  RecordingPlatform recorder(live);

  std::vector<Task> batch(2);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  batch[1].expression = Expression::VarConst(V(4, 1), CmpOp::kGreater, 2);
  ASSERT_TRUE(recorder.PostBatch(batch).ok());
  ASSERT_EQ(recorder.log().entries.size(), 2u);
  EXPECT_EQ(recorder.log().entries[0].relation, Ordering::kLess);
  EXPECT_EQ(recorder.log().entries[0].round, 1u);
}

TEST(RecordReplayTest, ReplayServesWithoutLivePlatform) {
  ReplayingPlatform replay(SampleLog(), /*fallback=*/nullptr);
  std::vector<Task> batch(2);
  batch[0].expression = Expression::VarConst(V(4, 3), CmpOp::kLess, 4);
  batch[1].expression = Expression::VarVar(V(4, 1), CmpOp::kGreater,
                                           V(1, 1));
  const auto answers = replay.PostBatch(batch);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers.value()[0].relation, Ordering::kLess);
  EXPECT_EQ(answers.value()[1].relation, Ordering::kGreater);
  EXPECT_EQ(replay.replayed(), 2u);
  // Log exhausted, no fallback: next batch fails.
  EXPECT_EQ(replay.PostBatch(batch).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecordReplayTest, DivergentBatchDetected) {
  ReplayingPlatform replay(SampleLog(), nullptr);
  std::vector<Task> batch(1);
  batch[0].expression = Expression::VarConst(V(0, 0), CmpOp::kLess, 1);
  EXPECT_EQ(replay.PostBatch(batch).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecordReplayTest, ResumedQueryMatchesUninterruptedRun) {
  // Run the same query (i) straight with budget 60, and (ii) in two
  // sessions: budget 24 recorded, then budget 60 resuming from the log.
  // The deterministic framework must produce identical results and the
  // live platform must only be asked for the post-resume tasks.
  const Table complete = MakeNbaLike(250, 404, 8);
  Rng rng(9);
  const Table incomplete = InjectMissingUniform(complete, 0.1, rng);

  BayesCrowdOptions base;
  base.ctable.alpha = 0.1;
  base.latency = 12;  // ceil(B/L) = 5 tasks per round for B=60.
  UniformPosteriorProvider posteriors(incomplete.schema());

  // (i) Uninterrupted reference run.
  base.budget = 60;
  std::vector<std::size_t> reference;
  std::size_t reference_tasks = 0;
  {
    SimulatedCrowdPlatform live(complete, {});
    BayesCrowd framework(base);
    const auto result = framework.Run(incomplete, posteriors, live);
    ASSERT_TRUE(result.ok());
    reference = result->result_objects;
    reference_tasks = result->tasks_posted;
  }

  // (ii-a) First session: budget 24, recorded.
  AnswerLog log;
  {
    BayesCrowdOptions first = base;
    first.budget = 24;
    // Keep the same per-round batch size as the reference run, so the
    // replayed batch boundaries line up: ceil(24/L)=5 needs L=5.
    first.latency = 5;
    SimulatedCrowdPlatform live(complete, {});
    RecordingPlatform recorder(live);
    BayesCrowd framework(first);
    const auto result = framework.Run(incomplete, posteriors, recorder);
    ASSERT_TRUE(result.ok());
    log = recorder.log();
  }
  ASSERT_FALSE(log.entries.empty());

  // (ii-b) Second session: full budget, replaying then going live.
  {
    SimulatedCrowdPlatform live(complete, {});
    ReplayingPlatform replay(log, &live);
    BayesCrowd framework(base);
    const auto result = framework.Run(incomplete, posteriors, replay);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->result_objects, reference);
    EXPECT_EQ(result->tasks_posted, reference_tasks);
    EXPECT_EQ(replay.replayed(), log.entries.size());
    // The replayed prefix is mirrored into the live platform
    // (SyncReplayed posts and discards) so its RNG stream and totals
    // match the uninterrupted run exactly.
    EXPECT_EQ(live.total_tasks(), reference_tasks);
  }
}

TEST(FileAnswerLogSinkTest, InjectedAppendFailureIsCleanIOErrorWithPath) {
  const std::string path =
      ::testing::TempDir() + "/bc_sink_enospc.log";
  std::filesystem::remove(path);

  // Opening succeeds (the header write passes: the first Bernoulli draw
  // with this seed passes at rate 0.0 — use a plan that only fails
  // *appends* by flipping the rate after Open).
  FaultPlan plan;
  FaultInjectingFileIo io(plan);
  auto opened = FileAnswerLogSink::Open(path, 0, /*truncate=*/true, &io);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  // Now a broken-disk sink on the same file: every append tears.
  FaultPlan broken;
  broken.write_fail_rate = 1.0;
  FaultInjectingFileIo broken_io(broken);
  auto sink = FileAnswerLogSink::Open(path, 0, /*truncate=*/false,
                                      &broken_io);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  AnswerLogEntry entry;
  entry.kind = AnswerLogEntry::Kind::kFailure;
  entry.round = 1;
  const Status appended = sink.value()->Append({entry});
  EXPECT_TRUE(appended.IsIOError()) << appended.ToString();
  EXPECT_NE(appended.message().find(path), std::string::npos)
      << appended.ToString();
  EXPECT_GE(broken_io.stats().writes_failed, 1u);

  // An injected short write leaves a torn tail, exactly what the
  // tolerant loader is built for: the prefix survives, the tail drops.
  // (Close the sink first so the torn bytes leave the stdio buffer.)
  sink.value().reset();
  bool dropped = false;
  const auto loaded = LoadAnswerLogTolerant(path, &dropped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(loaded->entries.empty());  // Only the header was durable.
}

TEST(FileAnswerLogSinkTest, InjectedSyncFailureFailsTheBatch) {
  const std::string path = ::testing::TempDir() + "/bc_sink_esync.log";
  std::filesystem::remove(path);

  FaultPlan plan;
  plan.sync_fail_rate = 1.0;
  FaultInjectingFileIo io(plan);
  // Open itself syncs the fresh header, so with sync failing at rate 1
  // the failure surfaces immediately — with the path in the message.
  auto sink = FileAnswerLogSink::Open(path, 0, /*truncate=*/true, &io);
  ASSERT_FALSE(sink.ok());
  EXPECT_TRUE(sink.status().IsIOError()) << sink.status().ToString();
  EXPECT_GE(io.stats().syncs_failed, 1u);
}

}  // namespace
}  // namespace bayescrowd
