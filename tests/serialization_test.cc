// Tests for Bayesian-network persistence and the variable-cost budget
// extension.

#include <gtest/gtest.h>

#include "bayesnet/imputation.h"
#include "bayesnet/inference.h"
#include "bayesnet/serialization.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/cost.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"

namespace bayescrowd {
namespace {

BayesianNetwork TrainedNetwork() {
  const Table data = MakeAdultLike(1500, 21);
  auto dag = HillClimbStructure(data);
  BAYESCROWD_CHECK_OK(dag.status());
  auto net = BayesianNetwork::Create(data.schema(), dag.value());
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(data));
  return std::move(net).value();
}

TEST(SerializationTest, RoundTripPreservesStructureAndParameters) {
  const BayesianNetwork original = TrainedNetwork();
  const std::string text = SerializeNetwork(original);
  const auto loaded = DeserializeNetwork(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_TRUE(loaded->schema() == original.schema());
  EXPECT_EQ(loaded->structure().Edges(), original.structure().Edges());
  for (std::size_t v = 0; v < original.num_nodes(); ++v) {
    const Cpt& a = original.cpt(v);
    const Cpt& b = loaded->cpt(v);
    ASSERT_EQ(a.num_parent_configs(), b.num_parent_configs());
    for (std::size_t c = 0; c < a.num_parent_configs(); ++c) {
      for (Level value = 0; value < a.cardinality(); ++value) {
        EXPECT_NEAR(a.Prob(value, c), b.Prob(value, c), 1e-15);
      }
    }
  }
}

TEST(SerializationTest, RoundTripPreservesInference) {
  const BayesianNetwork original = TrainedNetwork();
  const auto loaded = DeserializeNetwork(SerializeNetwork(original));
  ASSERT_TRUE(loaded.ok());
  const Evidence evidence = {{0, 3}, {2, 1}};
  const auto p1 = VariableElimination(original, evidence, 4);
  const auto p2 = VariableElimination(loaded.value(), evidence, 4);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  for (std::size_t v = 0; v < p1->size(); ++v) {
    EXPECT_NEAR(p1.value()[v], p2.value()[v], 1e-12);
  }
}

TEST(SerializationTest, FileRoundTrip) {
  const BayesianNetwork original = TrainedNetwork();
  const std::string path = ::testing::TempDir() + "/bc_net.txt";
  ASSERT_TRUE(SaveNetwork(original, path).ok());
  const auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->structure().num_edges(),
            original.structure().num_edges());
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeNetwork("").ok());
  EXPECT_FALSE(DeserializeNetwork("bayesnet v2\n").ok());
  EXPECT_FALSE(DeserializeNetwork("bayesnet v1\nnodes 0\n").ok());
  EXPECT_FALSE(
      DeserializeNetwork("bayesnet v1\nnodes 1\nnode 0 a 2\nedges 1\n"
                         "edge 0 0\n")
          .ok());  // Self-loop.
  EXPECT_FALSE(
      DeserializeNetwork("bayesnet v1\nnodes 1\nnode 0 a 2\nedges 0\n"
                         "cpt 0 0.5 0.4\nend\n")
          .ok());  // Unnormalized CPT.
  // Comments and blank lines are fine.
  EXPECT_TRUE(
      DeserializeNetwork("# trained model\nbayesnet v1\n\nnodes 1\n"
                         "node 0 a 2\nedges 0\ncpt 0 0.5 0.5\nend\n")
          .ok());
}

// ------------------------------------------------------------------ //
// Variable task costs
// ------------------------------------------------------------------ //

TEST(CostModelTest, UniformAndOperandCosts) {
  Task var_const;
  var_const.expression =
      Expression::VarConst({4, 3}, CmpOp::kLess, 4);
  Task var_var;
  var_var.expression =
      Expression::VarVar({4, 1}, CmpOp::kGreater, {1, 1});
  const UniformCostModel uniform(2.0);
  EXPECT_DOUBLE_EQ(uniform.Cost(var_const), 2.0);
  EXPECT_DOUBLE_EQ(uniform.Cost(var_var), 2.0);
  const OperandCountCostModel operand(1.0, 3.0);
  EXPECT_DOUBLE_EQ(operand.Cost(var_const), 1.0);
  EXPECT_DOUBLE_EQ(operand.Cost(var_var), 3.0);
}

TEST(CostModelTest, FrameworkChargesVariableCosts) {
  const Table incomplete = MakeSampleMovieDataset();
  const Table ground_truth = MakeSampleMovieGroundTruth();
  const OperandCountCostModel cost_model(1.0, 2.5);

  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 8;
  options.latency = 4;
  options.cost_model = &cost_model;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(ground_truth, {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->cost_spent, 8.0 + 1e-9);
  EXPECT_GE(result->cost_spent,
            static_cast<double>(result->tasks_posted));  // >= 1 each.
}

TEST(CostModelTest, DefaultCostEqualsTaskCount) {
  const Table incomplete = MakeSampleMovieDataset();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 6;
  options.latency = 3;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost_spent,
                   static_cast<double>(result->tasks_posted));
}

TEST(CostModelTest, ExpensiveTasksShrinkTheBatch) {
  // Every task costs 3; budget 7 affords at most 2 tasks in total.
  const Table incomplete = MakeSampleMovieDataset();
  const UniformCostModel expensive(3.0);
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 7;
  options.latency = 1;
  options.cost_model = &expensive;
  BayesCrowd framework(options);
  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(MakeSampleMovieGroundTruth(), {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tasks_posted, 2u);
  EXPECT_LE(result->cost_spent, 7.0);
}

}  // namespace
}  // namespace bayescrowd
