// Serve-level kill-point harness: a scripted multi-session serving
// workload is killed at every manifest-event boundary (the manager is
// dropped with no teardown, exactly what SIGKILL leaves behind), then a
// fresh manager runs Recover() in the same state directory and drives
// every surviving session to completion. The recovered sessions'
// normalized telemetry must byte-match uninterrupted solo references —
// at 1 and at 8 worker lanes, with a clean journal, with a torn journal
// tail, and with the newest checkpoint generation corrupted (PR 4
// fallback semantics). Plus fuzz pins on the tolerant manifest reader.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/telemetry.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/normalize.h"
#include "serve/manager.h"
#include "serve/manifest.h"

namespace bayescrowd {
namespace {

namespace fs = std::filesystem;

using serve::AdvanceOutcome;
using serve::ManifestEvent;
using serve::ManifestEventKind;
using serve::ManifestLoad;
using serve::RecoveryReport;
using serve::SessionInfo;
using serve::SessionManager;
using serve::SessionSpec;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Session specs sized so each query crowdsources a handful of rounds.
SessionSpec KillSpec(const std::string& id, const std::string& tenant,
                     std::uint64_t data_seed) {
  SessionSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.ground_truth = MakeNbaLike(120, data_seed);
  Rng rng(5);
  spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.15, rng);
  spec.cache_key = StrFormat("kill-%llu",
                             static_cast<unsigned long long>(data_seed));
  spec.options.ctable.alpha = 0.01;
  spec.options.budget = 12;
  spec.options.latency = 4;
  spec.options.strategy.m = 5;
  return spec;
}

struct SessionIdentity {
  std::string tenant;
  std::uint64_t data_seed = 0;
};

const std::map<std::string, SessionIdentity>& Fixture() {
  static const std::map<std::string, SessionIdentity> fixture = {
      {"k0", {"acme", 9}},
      {"k1", {"bravo", 10}},
      {"k2", {"acme", 11}},
  };
  return fixture;
}

std::string Normalized(const BayesCrowdOptions& options,
                       const BayesCrowdResult& result) {
  obs::NormalizeOptions normalize;
  normalize.strip_lane_usage = true;
  normalize.strip_resume_markers = true;
  return obs::NormalizeTelemetry(
             RunTelemetryJson("serve", options, result), normalize)
      .Dump(2);
}

/// Uninterrupted solo reference per session at a given lane count.
std::map<std::string, std::string> SoloReferences(std::size_t threads) {
  std::map<std::string, std::string> refs;
  for (const auto& [id, identity] : Fixture()) {
    SessionManager manager({.threads = threads});
    SessionSpec spec = KillSpec(id, identity.tenant, identity.data_seed);
    const BayesCrowdOptions options = spec.options;
    EXPECT_TRUE(manager.Create(std::move(spec)).ok());
    EXPECT_TRUE(manager.Advance(id, 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish(id);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    refs[id] = Normalized(options, result.value());
  }
  return refs;
}

// ------------------------------------------------------------------ //
// The scripted workload
// ------------------------------------------------------------------ //

enum class Verb { kCreate, kAdvance, kCheckpoint, kFinish, kEvict };

struct ScriptStep {
  Verb verb;
  std::string id;
  std::size_t rounds = 0;
};

/// One lifecycle verb per manifest record: killing after step k is a
/// kill at manifest-event boundary k. The script exercises every event
/// kind the journal can hold (quarantine is pinned separately in
/// serve_test — it needs a poisoned store, not a script).
std::vector<ScriptStep> Script() {
  return {
      {Verb::kCreate, "k0"},          {Verb::kCreate, "k1"},
      {Verb::kCreate, "k2"},          {Verb::kAdvance, "k0", 1},
      {Verb::kAdvance, "k1", 1},      {Verb::kCheckpoint, "k0"},
      {Verb::kAdvance, "k2", 1},      {Verb::kAdvance, "k0", 100000},
      {Verb::kFinish, "k0"},          {Verb::kAdvance, "k1", 100000},
      {Verb::kEvict, "k1"},           {Verb::kAdvance, "k2", 100000},
      {Verb::kFinish, "k2"},
  };
}

SessionManager::Options ServerOptions(const std::string& state_dir,
                                      std::size_t threads) {
  SessionManager::Options options;
  options.threads = threads;
  options.state_dir = state_dir;
  return options;
}

SessionSpec SpecFor(const std::string& id, const std::string& state_dir) {
  const SessionIdentity& identity = Fixture().at(id);
  SessionSpec spec = KillSpec(id, identity.tenant, identity.data_seed);
  spec.checkpoint_dir = state_dir + "/ckpt";
  spec.options.checkpoint_every = 1;
  return spec;
}

/// Runs the first `steps` script verbs against a manager rooted at
/// `state_dir`, then drops the manager cold. Returns the ids expected
/// to be live (created, not finished, not evicted) at the kill point.
std::set<std::string> RunPrefixAndKill(const std::string& state_dir,
                                       std::size_t threads,
                                       std::size_t steps) {
  std::set<std::string> live;
  SessionManager manager(ServerOptions(state_dir, threads));
  const std::vector<ScriptStep> script = Script();
  for (std::size_t i = 0; i < steps; ++i) {
    const ScriptStep& step = script[i];
    switch (step.verb) {
      case Verb::kCreate:
        EXPECT_TRUE(manager.Create(SpecFor(step.id, state_dir)).ok());
        live.insert(step.id);
        break;
      case Verb::kAdvance: {
        Result<AdvanceOutcome> advanced =
            manager.Advance(step.id, step.rounds);
        EXPECT_TRUE(advanced.ok()) << advanced.status().ToString();
        break;
      }
      case Verb::kCheckpoint:
        EXPECT_TRUE(manager.Checkpoint(step.id).ok());
        break;
      case Verb::kFinish:
        EXPECT_TRUE(manager.Finish(step.id).ok());
        live.erase(step.id);
        break;
      case Verb::kEvict:
        EXPECT_TRUE(manager.Evict(step.id).ok());
        live.erase(step.id);
        break;
    }
  }
  return live;  // The manager dies here, mid-flight state and all.
}

/// The resolver a real server implements by re-parsing the journaled
/// create request; the fixture rebuilds the spec from the session id.
SessionManager::SpecResolver FixtureResolver() {
  return [](const ManifestEvent& event) -> Result<SessionSpec> {
    const auto it = Fixture().find(event.session_id);
    if (it == Fixture().end()) {
      return Status::NotFound("unknown fixture session '" +
                              event.session_id + "'");
    }
    return KillSpec(event.session_id, it->second.tenant,
                    it->second.data_seed);
  };
}

enum class Scenario { kClean, kTornTail, kCorruptNewestCheckpoint };

/// Appends half an encoded record to the journal — the torn tail an
/// interrupted append leaves.
void TearManifestTail(const std::string& state_dir) {
  const std::string path = state_dir + "/serve-manifest.bin";
  ManifestEvent torn;
  torn.kind = ManifestEventKind::kAdvance;
  torn.session_id = "k0";
  torn.tenant = "acme";
  const std::string record = serve::EncodeManifestRecord(torn);
  Result<std::string> existing = RealFileIo()->ReadFile(path);
  std::string bytes =
      existing.ok() ? std::move(existing).value() : serve::ManifestHeader();
  bytes.append(record.substr(0, record.size() / 2));
  ASSERT_TRUE(RealFileIo()->WriteFileDurable(path, bytes).ok());
}

/// Flips bytes in the middle of the newest checkpoint generation of any
/// live session, so recovery must fall back to an older one (or re-run
/// fresh when only one generation existed).
void CorruptNewestCheckpoint(const std::string& state_dir) {
  const std::string dir = state_dir + "/ckpt";
  std::string newest;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ckpt-", 0) == 0 &&
          (newest.empty() || name > newest)) {
        newest = name;
      }
    }
  }
  if (newest.empty()) return;  // Killed before any checkpoint: no-op.
  const std::string path = dir + "/" + newest;
  Result<std::string> bytes = RealFileIo()->ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = std::move(bytes).value();
  for (std::size_t i = damaged.size() / 2;
       i < damaged.size() / 2 + 8 && i < damaged.size(); ++i) {
    damaged[i] = static_cast<char>(~damaged[i]);
  }
  ASSERT_TRUE(RealFileIo()->WriteFileDurable(path, damaged).ok());
}

void RunKillpointMatrix(std::size_t threads, Scenario scenario,
                        const std::map<std::string, std::string>& refs) {
  const std::vector<ScriptStep> script = Script();
  for (std::size_t kill = 0; kill <= script.size(); ++kill) {
    SCOPED_TRACE(StrFormat("threads=%zu scenario=%d kill=%zu", threads,
                           static_cast<int>(scenario), kill));
    const std::string state_dir = FreshDir(
        StrFormat("bc_serve_kill_t%zu_s%d_k%zu", threads,
                  static_cast<int>(scenario), kill));
    const std::set<std::string> expected_live =
        RunPrefixAndKill(state_dir, threads, kill);
    if (scenario == Scenario::kTornTail) {
      TearManifestTail(state_dir);
    } else if (scenario == Scenario::kCorruptNewestCheckpoint) {
      CorruptNewestCheckpoint(state_dir);
    }

    SessionManager recovered(ServerOptions(state_dir, threads));
    Result<RecoveryReport> report = recovered.Recover(FixtureResolver());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->sessions_failed, 0u);
    if (scenario == Scenario::kTornTail) {
      EXPECT_GE(report->torn_tail_records, 1u);
    }

    std::set<std::string> live;
    for (const SessionInfo& info : recovered.List()) {
      live.insert(info.id);
    }
    EXPECT_EQ(live, expected_live);
    EXPECT_EQ(report->sessions_resumed + report->sessions_fresh,
              expected_live.size());

    // Drive every survivor to completion: byte-identical telemetry to
    // the uninterrupted solo reference, whatever the kill point did.
    while (true) {
      Result<std::size_t> active = recovered.AdvanceAll(1);
      ASSERT_TRUE(active.ok()) << active.status().ToString();
      if (active.value() == 0) break;
    }
    for (const std::string& id : expected_live) {
      Result<BayesCrowdResult> result = recovered.Finish(id);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Normalized(SpecFor(id, state_dir).options,
                           result.value()),
                refs.at(id))
          << "session " << id << " diverged after recovery";
    }
  }
}

TEST(ServeKillpointTest, EveryBoundaryCleanJournalSingleLane) {
  RunKillpointMatrix(1, Scenario::kClean, SoloReferences(1));
}

TEST(ServeKillpointTest, EveryBoundaryCleanJournalEightLanes) {
  RunKillpointMatrix(8, Scenario::kClean, SoloReferences(8));
}

TEST(ServeKillpointTest, EveryBoundaryTornTailSingleLane) {
  RunKillpointMatrix(1, Scenario::kTornTail, SoloReferences(1));
}

TEST(ServeKillpointTest, EveryBoundaryTornTailEightLanes) {
  RunKillpointMatrix(8, Scenario::kTornTail, SoloReferences(8));
}

TEST(ServeKillpointTest, EveryBoundaryCorruptNewestCheckpointSingleLane) {
  RunKillpointMatrix(1, Scenario::kCorruptNewestCheckpoint,
                     SoloReferences(1));
}

TEST(ServeKillpointTest, EveryBoundaryCorruptNewestCheckpointEightLanes) {
  RunKillpointMatrix(8, Scenario::kCorruptNewestCheckpoint,
                     SoloReferences(8));
}

// ------------------------------------------------------------------ //
// Manifest reader fuzz pins
// ------------------------------------------------------------------ //

ManifestEvent FuzzEvent(const std::string& id, ManifestEventKind kind) {
  ManifestEvent event;
  event.kind = kind;
  event.session_id = id;
  event.tenant = "acme";
  event.rounds = 2;
  event.spec_fingerprint = 7;
  event.checkpoint_dir = "/tmp/ck";
  event.checkpoint_keep = 3;
  event.spec_blob = "{\"op\":\"create\"}";
  event.detail = "d";
  return event;
}

TEST(ManifestFuzzTest, TornTailStopsScanAndKeepsPrefix) {
  std::string bytes = serve::ManifestHeader();
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("a", ManifestEventKind::kCreate));
  const std::string second = serve::EncodeManifestRecord(
      FuzzEvent("b", ManifestEventKind::kCreate));
  bytes += second.substr(0, second.size() - 3);  // Torn mid-CRC.
  const ManifestLoad load = serve::ParseManifest(bytes);
  ASSERT_EQ(load.events.size(), 1u);
  EXPECT_EQ(load.events[0].session_id, "a");
  EXPECT_EQ(load.torn_tail_records, 1u);
  EXPECT_EQ(load.unknown_kind_records, 0u);
}

TEST(ManifestFuzzTest, CorruptPayloadMidFileDropsTheTail) {
  std::string bytes = serve::ManifestHeader();
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("a", ManifestEventKind::kCreate));
  const std::size_t corrupt_at = bytes.size() + 10;
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("b", ManifestEventKind::kAdvance));
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("c", ManifestEventKind::kCreate));
  bytes[corrupt_at] = static_cast<char>(bytes[corrupt_at] ^ 0x5A);
  const ManifestLoad load = serve::ParseManifest(bytes);
  // Everything before the CRC failure is trusted; nothing after it is.
  ASSERT_EQ(load.events.size(), 1u);
  EXPECT_EQ(load.events[0].session_id, "a");
  EXPECT_GE(load.torn_tail_records, 1u);
}

TEST(ManifestFuzzTest, UnknownKindIsSkippedWithCounterFramingIntact) {
  std::string bytes = serve::ManifestHeader();
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("a", ManifestEventKind::kCreate));
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("x", static_cast<ManifestEventKind>(99)));
  bytes += serve::EncodeManifestRecord(
      FuzzEvent("b", ManifestEventKind::kCreate));
  const ManifestLoad load = serve::ParseManifest(bytes);
  ASSERT_EQ(load.events.size(), 2u);
  EXPECT_EQ(load.events[0].session_id, "a");
  EXPECT_EQ(load.events[1].session_id, "b");
  EXPECT_EQ(load.unknown_kind_records, 1u);
  EXPECT_EQ(load.torn_tail_records, 0u);
}

TEST(ManifestFuzzTest, DuplicateCreateIsCountedNewestWins) {
  const std::string state_dir = FreshDir("bc_serve_dup_create");
  {
    serve::ServeManifest manifest(
        {.path = state_dir + "/serve-manifest.bin"});
    ManifestEvent first = FuzzEvent("k0", ManifestEventKind::kCreate);
    // A real fingerprint so recovery re-admits it: chained spec hash.
    SessionSpec probe = KillSpec("k0", "acme", 9);
    first.tenant = "acme";
    first.rounds = 0;
    first.spec_fingerprint = SessionManager::SpecFingerprint(probe);
    first.checkpoint_dir = "";
    ASSERT_TRUE(manifest.Append(first).ok());
    ASSERT_TRUE(manifest.Append(first).ok());  // Replayed duplicate.
  }
  SessionManager manager(ServerOptions(state_dir, 2));
  Result<RecoveryReport> report = manager.Recover(FixtureResolver());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->duplicate_events, 1u);
  EXPECT_EQ(report->sessions_resumed + report->sessions_fresh, 1u);
  EXPECT_EQ(manager.resident(), 1u);
}

TEST(ManifestFuzzTest, BadHeaderLoadsEmptyWithTornRecord) {
  const ManifestLoad load = serve::ParseManifest("garbage header bytes");
  EXPECT_TRUE(load.events.empty());
  EXPECT_GE(load.torn_tail_records, 1u);
}

}  // namespace
}  // namespace bayescrowd
