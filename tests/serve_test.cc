// Serving-layer tests: shared-cache scoping and LRU bounds, session
// lifecycle, admission control, per-tenant QoS degradation, checkpoint/
// evict/resume through the manager, and the multiplexing determinism
// contract — N interleaved sessions byte-match N sequential runs of the
// same specs, at 1 and at 8 worker lanes.

#include "serve/manager.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fileio.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/telemetry.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/normalize.h"
#include "serve/cache.h"
#include "serve/manifest.h"

namespace bayescrowd {
namespace {

using serve::AdvanceOutcome;
using serve::SessionInfo;
using serve::SessionManager;
using serve::SessionSpec;
using serve::SharedQueryCache;
using serve::TenantQos;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A spec whose query actually crowdsources: NBA-like data at this
/// shape leaves ~15 objects undecided after modeling, so a session
/// runs several rounds before its budget ends.
SessionSpec MakeSpec(const std::string& id, const std::string& tenant,
                     std::uint64_t data_seed, std::size_t budget = 24) {
  SessionSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.ground_truth = MakeNbaLike(120, data_seed);
  Rng rng(5);
  spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.15, rng);
  spec.cache_key = StrFormat("nba-%llu",
                             static_cast<unsigned long long>(data_seed));
  spec.options.ctable.alpha = 0.01;
  spec.options.budget = budget;
  spec.options.latency = 4;
  spec.options.strategy.m = 5;
  return spec;
}

std::string Normalized(const BayesCrowdOptions& options,
                       const BayesCrowdResult& result) {
  obs::NormalizeOptions normalize;
  normalize.strip_lane_usage = true;
  normalize.strip_resume_markers = true;
  return obs::NormalizeTelemetry(
             RunTelemetryJson("serve", options, result), normalize)
      .Dump(2);
}

// ------------------------------------------------------------------ //
// SharedQueryCache
// ------------------------------------------------------------------ //

TEST(SharedQueryCacheTest, LruEvictsPastEntryAndByteBudgets) {
  SharedQueryCache cache({.max_bytes = 100, .max_entries = 2});
  cache.Put(1, std::string(40, 'a'));
  cache.Put(2, std::string(40, 'b'));
  std::string blob;
  ASSERT_TRUE(cache.Get(1, &blob));  // 1 is now MRU, 2 is LRU.
  cache.Put(3, std::string(40, 'c'));
  EXPECT_FALSE(cache.Get(2, &blob));  // Evicted by the entry cap.
  EXPECT_TRUE(cache.Get(1, &blob));
  EXPECT_TRUE(cache.Get(3, &blob));
  const SharedQueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // A blob above the byte budget is refused outright...
  cache.Put(4, std::string(200, 'd'));
  EXPECT_FALSE(cache.Get(4, &blob));
  EXPECT_EQ(cache.stats().rejected, 1u);

  // ...and one that fits evicts the LRU tail down to the byte budget.
  cache.Put(5, std::string(90, 'e'));
  EXPECT_TRUE(cache.Get(5, &blob));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_LE(cache.stats().bytes, 100u);
}

TEST(SharedQueryCacheTest, ScopeKeysSeparateTenantsAndDatasets) {
  const std::uint64_t a1 = SessionManager::CacheScope("acme", "ds1");
  EXPECT_NE(a1, 0u);
  EXPECT_EQ(a1, SessionManager::CacheScope("acme", "ds1"));
  EXPECT_NE(a1, SessionManager::CacheScope("bravo", "ds1"));
  EXPECT_NE(a1, SessionManager::CacheScope("acme", "ds2"));
  // Chained, not XORed: swapping tenant and key must not collide.
  EXPECT_NE(SessionManager::CacheScope("acme", "bravo"),
            SessionManager::CacheScope("bravo", "acme"));
}

// ------------------------------------------------------------------ //
// Lifecycle
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, LifecycleCreateAdvanceFinishEvict) {
  SessionManager manager({.threads = 2});
  ASSERT_TRUE(manager.Create(MakeSpec("s1", "acme", 9)).ok());
  EXPECT_EQ(manager.resident(), 1u);

  Result<SessionInfo> info = manager.Info("s1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->rounds, 0u);
  EXPECT_FALSE(info->done);

  Result<AdvanceOutcome> one = manager.Advance("s1", 1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one->rounds_run, 1u);

  Result<AdvanceOutcome> rest = manager.Advance("s1", 1000);
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->done);

  Result<BayesCrowdResult> result = manager.Finish("s1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->result_objects.empty());
  EXPECT_GT(result->rounds, 0u);

  // Finished sessions stay resident for inspection but cannot step.
  EXPECT_TRUE(manager.Advance("s1", 1).status().IsFailedPrecondition());
  EXPECT_TRUE(manager.Finish("s1").status().IsFailedPrecondition());
  info = manager.Info("s1");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->finished);

  ASSERT_TRUE(manager.Evict("s1").ok());
  EXPECT_EQ(manager.resident(), 0u);
  EXPECT_TRUE(manager.Info("s1").status().IsNotFound());
  EXPECT_TRUE(manager.Advance("s1", 1).status().IsNotFound());
}

TEST(SessionManagerTest, AdmissionRejectsAtCapsWithLabeledTelemetry) {
  SessionManager::Options options;
  options.threads = 1;
  options.max_resident_sessions = 2;
  options.max_sessions_per_tenant = 1;
  SessionManager manager(options);

  ASSERT_TRUE(manager.Create(MakeSpec("a1", "acme", 9)).ok());
  // Same tenant again: per-tenant cap.
  EXPECT_EQ(manager.Create(MakeSpec("a2", "acme", 9)).code(),
            StatusCode::kResourceExhausted);
  // Another tenant fits...
  ASSERT_TRUE(manager.Create(MakeSpec("b1", "bravo", 9)).ok());
  // ...but the global cap now rejects a third tenant outright.
  EXPECT_EQ(manager.Create(MakeSpec("c1", "carol", 9)).code(),
            StatusCode::kResourceExhausted);
  // Duplicate ids are AlreadyExists, not a capacity signal.
  EXPECT_EQ(manager.Create(MakeSpec("a1", "delta", 9)).code(),
            StatusCode::kAlreadyExists);

  const obs::MetricsSnapshot snapshot = manager.MetricsSnapshot();
  const auto counter = [&](const std::string& key) -> std::uint64_t {
    const auto it = snapshot.counters.find(key);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("serve.admission.rejected{tenant=\"acme\"}"), 1u);
  EXPECT_EQ(counter("serve.admission.rejected{tenant=\"carol\"}"), 1u);
  EXPECT_EQ(counter("serve.admission.admitted{tenant=\"acme\"}"), 1u);
  EXPECT_EQ(counter("serve.admission.admitted{tenant=\"bravo\"}"), 1u);

  // Rejections are in the flight ring too (value 0 = rejected).
  std::size_t rejections = 0;
  for (const obs::FlightEvent& event : manager.flight()->Events()) {
    if (event.kind == obs::FlightEventKind::kAdmission &&
        event.value == 0.0) {
      ++rejections;
      EXPECT_NE(event.detail.find("tenant="), std::string::npos);
    }
  }
  EXPECT_EQ(rejections, 2u);

  // Eviction frees tenant capacity.
  ASSERT_TRUE(manager.Evict("a1").ok());
  EXPECT_TRUE(manager.Create(MakeSpec("a2", "acme", 9)).ok());
}

// ------------------------------------------------------------------ //
// Multiplexing determinism
// ------------------------------------------------------------------ //

std::vector<SessionSpec> HarnessSpecs() {
  std::vector<SessionSpec> specs;
  specs.push_back(MakeSpec("q0", "t0", 9));
  specs.push_back(MakeSpec("q1", "t1", 10));
  specs.push_back(MakeSpec("q2", "t2", 11));
  return specs;
}

/// Runs the three harness specs to completion and returns their
/// normalized telemetry by id. Sequential mode runs each session to
/// completion before creating the next; interleaved mode creates all
/// three and fair-schedules one round at a time.
std::map<std::string, std::string> RunHarness(std::size_t threads,
                                              bool interleaved) {
  SessionManager manager({.threads = threads});
  std::map<std::string, std::string> out;
  if (interleaved) {
    for (SessionSpec& spec : HarnessSpecs()) {
      EXPECT_TRUE(manager.Create(std::move(spec)).ok());
    }
    while (true) {
      Result<std::size_t> active = manager.AdvanceAll(1);
      EXPECT_TRUE(active.ok()) << active.status().ToString();
      if (!active.ok() || active.value() == 0) break;
    }
    for (SessionSpec& spec : HarnessSpecs()) {
      Result<BayesCrowdResult> result = manager.Finish(spec.id);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      out[spec.id] = Normalized(spec.options, result.value());
    }
  } else {
    for (SessionSpec& spec : HarnessSpecs()) {
      const BayesCrowdOptions options = spec.options;
      const std::string id = spec.id;
      EXPECT_TRUE(manager.Create(std::move(spec)).ok());
      Result<AdvanceOutcome> advanced = manager.Advance(id, 100000);
      EXPECT_TRUE(advanced.ok());
      Result<BayesCrowdResult> result = manager.Finish(id);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      out[id] = Normalized(options, result.value());
    }
  }
  return out;
}

/// Projects a normalized telemetry envelope down to its result payload
/// (answers, probabilities, round log, solver tallies). Used for the
/// cross-thread-count comparison: HHS scores candidates in waves sized
/// to the pool (strategy.cc), so batch-instrumentation *shapes* are
/// lane-dependent even though every value the query produces is not.
std::string ResultPayload(const std::string& normalized) {
  Result<obs::JsonValue> doc = obs::JsonValue::Parse(normalized);
  if (!doc.ok()) return "unparseable: " + normalized;
  const obs::JsonValue* payload = doc->Find("payload");
  if (payload == nullptr) return "no payload";
  const obs::JsonValue* result = payload->Find("result");
  if (result == nullptr) return "no result";
  return result->Dump(2);
}

std::map<std::string, std::string> ResultsOnly(
    const std::map<std::string, std::string>& telemetry) {
  std::map<std::string, std::string> out;
  for (const auto& [id, normalized] : telemetry) {
    out[id] = ResultPayload(normalized);
  }
  return out;
}

TEST(SessionManagerTest, InterleavedMatchesSequentialAt1And8Threads) {
  const auto sequential_1 = RunHarness(1, /*interleaved=*/false);
  const auto interleaved_1 = RunHarness(1, /*interleaved=*/true);
  const auto sequential_8 = RunHarness(8, /*interleaved=*/false);
  const auto interleaved_8 = RunHarness(8, /*interleaved=*/true);

  ASSERT_EQ(sequential_1.size(), 3u);
  // Interleaving must be invisible: same normalized telemetry bytes per
  // session — full metrics included — at each lane count.
  EXPECT_EQ(sequential_1, interleaved_1);
  EXPECT_EQ(sequential_8, interleaved_8);
  // Across lane counts the contract is on values: identical answers,
  // probabilities, round logs and solver tallies (batch-shape
  // instrumentation legitimately follows the pool's wave size).
  EXPECT_EQ(ResultsOnly(sequential_1), ResultsOnly(sequential_8));
  EXPECT_EQ(ResultsOnly(sequential_1), ResultsOnly(interleaved_8));
}

TEST(SessionManagerTest, ConcurrentClientsMatchSequentialBaseline) {
  const auto baseline = RunHarness(2, /*interleaved=*/false);

  // Three client threads drive three sessions against one manager at
  // once (the TSan target: every verb from any thread).
  SessionManager manager({.threads = 2});
  for (SessionSpec& spec : HarnessSpecs()) {
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }
  std::map<std::string, std::string> results;
  std::mutex results_mu;
  std::vector<std::thread> clients;
  for (SessionSpec& spec : HarnessSpecs()) {
    clients.emplace_back([&manager, &results, &results_mu, spec]() {
      while (true) {
        Result<AdvanceOutcome> advanced = manager.Advance(spec.id, 1);
        if (!advanced.ok() || advanced->done) break;
      }
      Result<BayesCrowdResult> result = manager.Finish(spec.id);
      if (!result.ok()) return;
      const std::string normalized =
          Normalized(spec.options, result.value());
      std::lock_guard<std::mutex> lock(results_mu);
      results[spec.id] = normalized;
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(results, baseline);
}

// ------------------------------------------------------------------ //
// Shared cache warm starts
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, WarmStartHitsOwnScopeOnlyAndKeepsAnswers) {
  SessionManager manager({.threads = 2});

  // Cold run; Finish donates its memo state for scope (acme, nba-9).
  {
    SessionSpec spec = MakeSpec("cold", "acme", 9);
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
    ASSERT_TRUE(manager.Advance("cold", 100000).ok());
    ASSERT_TRUE(manager.Finish("cold").ok());
  }
  EXPECT_EQ(manager.cache_stats().donations, 1u);
  const auto cold = manager.Finish("cold");  // Already finished.
  EXPECT_TRUE(cold.status().IsFailedPrecondition());
  ASSERT_TRUE(manager.Evict("cold").ok());

  // Re-run the identical query cold to capture the reference answers.
  std::vector<std::size_t> reference_objects;
  std::vector<double> reference_probabilities;
  {
    SessionSpec spec = MakeSpec("ref", "acme", 9);
    spec.warm_start = false;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
    ASSERT_TRUE(manager.Advance("ref", 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish("ref");
    ASSERT_TRUE(result.ok());
    reference_objects = result->result_objects;
    reference_probabilities = result->probabilities;
    ASSERT_TRUE(manager.Evict("ref").ok());
  }

  // Same tenant + dataset warm-starts from the donated blob, and the
  // answers are unchanged — imported entries are just early hits.
  {
    SessionSpec spec = MakeSpec("warm", "acme", 9);
    spec.warm_start = true;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
    ASSERT_TRUE(manager.Advance("warm", 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish("warm");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result_objects, reference_objects);
    EXPECT_EQ(result->probabilities, reference_probabilities);
    ASSERT_TRUE(manager.Evict("warm").ok());
  }

  // A different tenant over the same dataset must MISS: the scope key
  // partitions the shared cache per tenant.
  {
    SessionSpec spec = MakeSpec("other", "bravo", 9);
    spec.warm_start = true;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }

  const obs::MetricsSnapshot snapshot = manager.MetricsSnapshot();
  const auto counter = [&](const std::string& key) -> std::uint64_t {
    const auto it = snapshot.counters.find(key);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("serve.cache.warm_start.hit{tenant=\"acme\"}"), 1u);
  EXPECT_EQ(counter("serve.cache.warm_start.miss{tenant=\"bravo\"}"), 1u);
  EXPECT_GT(counter("serve.cache.imported_entries{tenant=\"acme\"}"), 0u);
}

// ------------------------------------------------------------------ //
// Per-tenant QoS
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, HeavyTenantDegradesDownLadderLightStaysExact) {
  SessionManager::Options options;
  options.threads = 2;
  TenantQos heavy;
  heavy.degrade_after_rounds = 1;
  heavy.degrade_every_rounds = 1;
  GovernorOptions tight;
  tight.max_nodes = 8;
  GovernorOptions tighter;
  tighter.max_nodes = 1;
  heavy.ladder = {tight, tighter};
  options.qos["heavy"] = heavy;
  SessionManager manager(options);

  // A small crowd budget leaves conditions undecided at Finish, so the
  // governed solver actually answers them; compilation is off because
  // circuit replays are exact at any node budget and would (soundly)
  // hide the degradation this test needs to observe.
  const auto spec_for = [](const std::string& id, const std::string& tenant) {
    SessionSpec spec;
    spec.id = id;
    spec.tenant = tenant;
    // Denser missingness than the harness default: conditions mention
    // enough unknown cells that a 1-node ADPLL budget cannot finish
    // them exactly.
    spec.ground_truth = MakeNbaLike(60, 9);
    Rng rng(5);
    spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.2, rng);
    // Disable the certainty band (the governor_test idiom): every
    // uncertain object keeps its full condition alive, so the governed
    // solver faces formulas a 1-node budget cannot finish exactly.
    spec.options.ctable.alpha = -1.0;
    spec.options.budget = 4;
    spec.options.latency = 4;
    spec.options.strategy.m = 5;
    spec.options.probability.compile.mode = CompileMode::kOff;
    return spec;
  };
  ASSERT_TRUE(manager.Create(spec_for("h1", "heavy")).ok());
  ASSERT_TRUE(manager.Create(spec_for("l1", "light")).ok());

  Result<AdvanceOutcome> heavy_run = manager.Advance("h1", 100000);
  ASSERT_TRUE(heavy_run.ok()) << heavy_run.status().ToString();
  EXPECT_GE(heavy_run->qos_level, 1u);
  ASSERT_TRUE(manager.Advance("l1", 100000).ok());

  Result<BayesCrowdResult> heavy_result = manager.Finish("h1");
  ASSERT_TRUE(heavy_result.ok());
  Result<BayesCrowdResult> light_result = manager.Finish("l1");
  ASSERT_TRUE(light_result.ok());

  // The heavy tenant ran (and answered) under a starved solver: its
  // final probabilities carry degraded ProbQuality grades. The light
  // tenant shared the server and still got exact answers.
  EXPECT_FALSE(heavy_result->degraded_objects.empty());
  EXPECT_GT(heavy_result->solver.budget_exhausted, 0u);
  EXPECT_TRUE(light_result->degraded_objects.empty());
  EXPECT_EQ(light_result->solver.budget_exhausted, 0u);

  // The steps are visible in tenant=/session=-labeled serve metrics
  // and the flight ring.
  const obs::MetricsSnapshot snapshot = manager.MetricsSnapshot();
  const auto it = snapshot.counters.find(
      "serve.qos.degrades{session=\"h1\",tenant=\"heavy\"}");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_GE(it->second, 2u);  // Walked to level 2, one event per step.
  EXPECT_EQ(snapshot.counters.count(
                "serve.qos.degrades{session=\"l1\",tenant=\"light\"}"),
            0u);
  bool saw_qos_event = false;
  for (const obs::FlightEvent& event : manager.flight()->Events()) {
    if (event.kind == obs::FlightEventKind::kQosDegrade) {
      saw_qos_event = true;
      EXPECT_NE(event.detail.find("tenant=heavy"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_qos_event);
}

// ------------------------------------------------------------------ //
// Checkpoint / evict / resume
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, EvictThenResumeContinuesTheSameQuery) {
  const std::string dir = FreshDir("bc_serve_resume");

  // Uninterrupted reference (same spec, no checkpointing).
  std::vector<std::size_t> reference_objects;
  std::vector<double> reference_probabilities;
  std::size_t reference_rounds = 0;
  {
    SessionManager manager({.threads = 2});
    ASSERT_TRUE(manager.Create(MakeSpec("ref", "acme", 9)).ok());
    ASSERT_TRUE(manager.Advance("ref", 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish("ref");
    ASSERT_TRUE(result.ok());
    reference_objects = result->result_objects;
    reference_probabilities = result->probabilities;
    reference_rounds = result->rounds;
  }

  SessionManager manager({.threads = 2});
  {
    SessionSpec spec = MakeSpec("s1", "acme", 9);
    spec.checkpoint_dir = dir;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }
  ASSERT_TRUE(manager.Advance("s1", 2).ok());
  ASSERT_TRUE(manager.Checkpoint("s1").ok());
  // Eviction snapshots unfinished sessions automatically.
  ASSERT_TRUE(manager.Evict("s1").ok());
  ASSERT_FALSE(CheckpointStore({.dir = dir, .session_id = "s1"})
                   .ListGenerations()
                   .empty());

  {
    SessionSpec spec = MakeSpec("s1", "acme", 9);
    spec.checkpoint_dir = dir;
    spec.resume = true;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }
  Result<SessionInfo> info = manager.Info("s1");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->resumed);
  EXPECT_EQ(info->rounds, 2u);

  ASSERT_TRUE(manager.Advance("s1", 100000).ok());
  Result<BayesCrowdResult> result = manager.Finish("s1");
  ASSERT_TRUE(result.ok());
  // The resumed session answers exactly what the uninterrupted one did.
  EXPECT_EQ(result->result_objects, reference_objects);
  EXPECT_EQ(result->probabilities, reference_probabilities);
  EXPECT_EQ(result->rounds, reference_rounds);
}

TEST(SessionManagerTest, MarketplaceSessionResumesWithReputations) {
  // A marketplace-crowd session under a spam storm: the learned worker
  // reputations (and latched quarantines) ride the checkpoint, so an
  // evict + resume must replay to exactly the uninterrupted answer.
  const std::string dir = FreshDir("bc_serve_market_resume");
  auto make_spec = [](const std::string& id) {
    SessionSpec spec;
    spec.id = id;
    spec.tenant = "acme";
    spec.ground_truth = MakeAnticorrelated(60, 4, 6, 5);
    Rng rng(5);
    spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.3, rng);
    spec.cache_key = "market-anti";
    spec.options.ctable.alpha = -1.0;
    spec.options.budget = 300;
    spec.options.latency = 3;
    spec.options.adaptive.enabled = true;
    spec.options.adaptive.base_votes = 3;
    spec.options.adaptive.max_votes = 5;
    spec.use_marketplace = true;
    spec.marketplace.pool_size = 20;
    spec.marketplace.spam_rate = 0.3;
    spec.marketplace.max_votes = 5;
    spec.marketplace.seed = 99;
    return spec;
  };

  std::vector<std::size_t> reference_objects;
  std::size_t reference_rounds = 0;
  {
    SessionManager manager({.threads = 2});
    ASSERT_TRUE(manager.Create(make_spec("ref")).ok());
    ASSERT_TRUE(manager.Advance("ref", 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish("ref");
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->extra_votes, 0u);
    reference_objects = result->result_objects;
    reference_rounds = result->rounds;
  }

  SessionManager manager({.threads = 2});
  {
    SessionSpec spec = make_spec("m1");
    spec.checkpoint_dir = dir;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }
  ASSERT_TRUE(manager.Advance("m1", 3).ok());
  ASSERT_TRUE(manager.Checkpoint("m1").ok());
  ASSERT_TRUE(manager.Evict("m1").ok());

  {
    SessionSpec spec = make_spec("m1");
    spec.checkpoint_dir = dir;
    spec.resume = true;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  }
  ASSERT_TRUE(manager.Advance("m1", 100000).ok());
  Result<BayesCrowdResult> result = manager.Finish("m1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_objects, reference_objects);
  EXPECT_EQ(result->rounds, reference_rounds);
}

TEST(SessionManagerTest, ResumeWithoutDirOrSnapshotsFailsCleanly) {
  SessionManager manager({.threads = 1});
  SessionSpec no_dir = MakeSpec("x", "acme", 9);
  no_dir.resume = true;
  EXPECT_TRUE(manager.Create(std::move(no_dir)).IsInvalidArgument());

  SessionSpec empty_dir = MakeSpec("y", "acme", 9);
  empty_dir.checkpoint_dir = FreshDir("bc_serve_resume_empty");
  empty_dir.resume = true;
  EXPECT_TRUE(manager.Create(std::move(empty_dir)).IsNotFound());
  EXPECT_EQ(manager.resident(), 0u);
}

// ------------------------------------------------------------------ //
// Poison-session quarantine
// ------------------------------------------------------------------ //

/// One tenant's session sits on a broken disk (every checkpoint write
/// fails); a co-resident tenant must complete bit-identically to its
/// solo run, and the poisoned session must end up quarantined — not
/// latched into the shared pool as a wedge.
TEST(SessionManagerTest, PoisonedSessionQuarantinesHealthyTenantExact) {
  // Solo reference for the healthy session.
  std::string reference;
  {
    SessionManager manager({.threads = 2});
    SessionSpec spec = MakeSpec("healthy", "bravo", 10);
    const BayesCrowdOptions options = spec.options;
    ASSERT_TRUE(manager.Create(std::move(spec)).ok());
    ASSERT_TRUE(manager.Advance("healthy", 100000).ok());
    Result<BayesCrowdResult> result = manager.Finish("healthy");
    ASSERT_TRUE(result.ok());
    reference = Normalized(options, result.value());
  }

  SessionManager::Options options;
  options.threads = 2;
  options.quarantine_after_failures = 2;
  SessionManager manager(options);

  FaultPlan plan;
  plan.write_fail_rate = 1.0;  // Every checkpoint write fails.
  FaultInjectingFileIo broken_disk(plan);
  {
    SessionSpec poisoned = MakeSpec("poisoned", "acme", 9);
    poisoned.checkpoint_dir = FreshDir("bc_serve_poisoned_ckpt");
    poisoned.options.checkpoint_every = 1;
    poisoned.io = &broken_disk;
    ASSERT_TRUE(manager.Create(std::move(poisoned)).ok());
  }
  BayesCrowdOptions healthy_options;
  {
    SessionSpec healthy = MakeSpec("healthy", "bravo", 10);
    healthy_options = healthy.options;
    ASSERT_TRUE(manager.Create(std::move(healthy)).ok());
  }

  // Each poisoned advance fails its round-boundary checkpoint; at the
  // threshold the session moves to quarantine instead of failing a
  // third time.
  EXPECT_TRUE(manager.Advance("poisoned", 1).status().IsIOError());
  EXPECT_TRUE(manager.Advance("poisoned", 1).status().IsIOError());
  Result<SessionInfo> info = manager.Info("poisoned");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->quarantined);
  EXPECT_TRUE(info->done);
  EXPECT_TRUE(
      manager.Advance("poisoned", 1).status().IsFailedPrecondition());

  // The quarantine record shows up in List alongside live sessions.
  bool listed_quarantined = false;
  for (const SessionInfo& listed : manager.List()) {
    if (listed.id == "poisoned") listed_quarantined = listed.quarantined;
  }
  EXPECT_TRUE(listed_quarantined);
  EXPECT_EQ(manager.resident(), 1u);

  // A sweep keeps working, and the healthy tenant is bit-exact.
  while (true) {
    Result<std::size_t> active = manager.AdvanceAll(1);
    ASSERT_TRUE(active.ok()) << active.status().ToString();
    if (active.value() == 0) break;
  }
  Result<BayesCrowdResult> result = manager.Finish("healthy");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Normalized(healthy_options, result.value()), reference);

  // Quarantine is visible in telemetry: labeled counter + flight event.
  const obs::MetricsSnapshot snapshot = manager.MetricsSnapshot();
  const auto quarantines = snapshot.counters.find(
      "serve.quarantine.sessions{session=\"poisoned\",tenant=\"acme\"}");
  ASSERT_NE(quarantines, snapshot.counters.end());
  EXPECT_EQ(quarantines->second, 1u);
  bool flight_seen = false;
  for (const obs::FlightEvent& event : manager.flight()->Events()) {
    if (event.kind == obs::FlightEventKind::kQuarantine) {
      flight_seen = true;
      EXPECT_NE(event.detail.find("poisoned"), std::string::npos);
    }
  }
  EXPECT_TRUE(flight_seen);

  // Evicting the quarantine record clears it for a fresh re-admission.
  ASSERT_TRUE(manager.Evict("poisoned").ok());
  EXPECT_FALSE(manager.Info("poisoned").ok());
}

// ------------------------------------------------------------------ //
// Overload shedding
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, DebugShedPathIsDeterministicAndLabeled) {
  SessionManager::Options options;
  options.threads = 1;
  options.debug_shed_every = 3;
  options.retry_after_ms = 75;
  SessionManager manager(options);
  ASSERT_TRUE(manager.Create(MakeSpec("s1", "acme", 9)).ok());

  // Stepping requests 3, 6, ... shed through the real overload path.
  EXPECT_TRUE(manager.Advance("s1", 1).ok());
  EXPECT_TRUE(manager.Advance("s1", 1).ok());
  const Status shed = manager.Advance("s1", 1).status();
  EXPECT_TRUE(shed.IsUnavailable()) << shed.ToString();
  EXPECT_NE(shed.message().find("overloaded"), std::string::npos);
  EXPECT_NE(shed.message().find("retry_after_ms=75"), std::string::npos);
  EXPECT_TRUE(manager.Advance("s1", 1).ok());

  const obs::MetricsSnapshot snapshot = manager.MetricsSnapshot();
  const auto sheds =
      snapshot.counters.find("serve.shed.requests{verb=\"advance\"}");
  ASSERT_NE(sheds, snapshot.counters.end());
  EXPECT_EQ(sheds->second, 1u);
  bool overload_seen = false;
  for (const obs::FlightEvent& event : manager.flight()->Events()) {
    if (event.kind == obs::FlightEventKind::kOverload) {
      overload_seen = true;
      EXPECT_EQ(event.value, 75.0);
    }
  }
  EXPECT_TRUE(overload_seen);
}

TEST(SessionManagerTest, ShedRequestsNeverLatchLaterOnesSucceed) {
  SessionManager::Options options;
  options.threads = 1;
  options.debug_shed_every = 2;  // Every other request sheds.
  SessionManager manager(options);
  ASSERT_TRUE(manager.Create(MakeSpec("s1", "acme", 9)).ok());
  std::size_t ok_advances = 0;
  for (int i = 0; i < 20; ++i) {
    Result<AdvanceOutcome> advanced = manager.Advance("s1", 1);
    if (advanced.ok()) {
      ++ok_advances;
      if (advanced->done) break;
    } else {
      EXPECT_TRUE(advanced.status().IsUnavailable());
    }
  }
  EXPECT_GT(ok_advances, 0u);
  // The session is still healthy: finish works (request 21+ may shed;
  // retry once).
  Result<BayesCrowdResult> result = manager.Finish("s1");
  if (!result.ok()) result = manager.Finish("s1");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

// ------------------------------------------------------------------ //
// Request deadlines
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, GenerousDeadlineLeavesTelemetryByteIdentical) {
  const auto run = [](std::int64_t deadline_ms) {
    SessionManager manager({.threads = 2});
    SessionSpec spec = MakeSpec("s1", "acme", 9);
    // The base governor is active in both runs (a huge budget that
    // never trips), so the request deadline is the only delta — merely
    // activating governed evaluation changes instrumentation shape,
    // which is not what this test pins.
    spec.options.probability.governor.max_nodes = 1'000'000'000ull;
    const BayesCrowdOptions options = spec.options;
    EXPECT_TRUE(manager.Create(std::move(spec)).ok());
    EXPECT_TRUE(manager.Advance("s1", 100000, deadline_ms).ok());
    Result<BayesCrowdResult> result = manager.Finish("s1");
    EXPECT_TRUE(result.ok());
    return Normalized(options, result.value());
  };
  // A deadline no round comes near is invisible: bit-identical bytes.
  EXPECT_EQ(run(0), run(1'000'000'000));
}

TEST(SessionManagerTest, TightDeadlineDegradesButCompletesCorrectly) {
  SessionManager manager({.threads = 2});
  SessionSpec spec = MakeSpec("s1", "acme", 9);
  ASSERT_TRUE(manager.Create(std::move(spec)).ok());
  // 1ms per evaluation is brutal; degrade-only semantics mean the
  // request still succeeds — sub-evaluations grade instead of erroring.
  Result<AdvanceOutcome> advanced = manager.Advance("s1", 100000, 1);
  ASSERT_TRUE(advanced.ok()) << advanced.status().ToString();
  EXPECT_TRUE(advanced->done);
  Result<BayesCrowdResult> result = manager.Finish("s1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->result_objects.empty());
}

// ------------------------------------------------------------------ //
// Recover preconditions
// ------------------------------------------------------------------ //

TEST(SessionManagerTest, RecoverPreconditionsAndEmptyStateDir) {
  const SessionManager::SpecResolver resolver =
      [](const serve::ManifestEvent&) -> Result<SessionSpec> {
    return Status::NotFound("no fixtures here");
  };

  // No state_dir: nothing to replay from.
  SessionManager stateless({.threads = 1});
  EXPECT_TRUE(
      stateless.Recover(resolver).status().IsFailedPrecondition());

  // Recovery must run before traffic, never mid-flight.
  SessionManager::Options options;
  options.threads = 1;
  options.state_dir = FreshDir("bc_serve_recover_pre");
  SessionManager manager(options);
  ASSERT_TRUE(manager.Create(MakeSpec("s1", "acme", 9)).ok());
  EXPECT_TRUE(manager.Recover(resolver).status().IsFailedPrecondition());

  // A state_dir with no manifest yet recovers an empty server.
  SessionManager::Options empty_options;
  empty_options.threads = 1;
  empty_options.state_dir = FreshDir("bc_serve_recover_empty");
  SessionManager empty(empty_options);
  Result<serve::RecoveryReport> report = empty.Recover(resolver);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->events_replayed, 0u);
  EXPECT_EQ(report->sessions_resumed, 0u);
  EXPECT_EQ(empty.resident(), 0u);
}

}  // namespace
}  // namespace bayescrowd
