// Tests for complete-data skyline algorithms and result metrics.

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

Table MoviesExample() {
  // The paper's intro example: m1=(3,2,1), m2=(4,2,3), m3=(2,3,2);
  // skyline = {m2, m3}.
  Schema schema;
  schema.AddAttribute("r1", 6);
  schema.AddAttribute("r2", 6);
  schema.AddAttribute("r3", 6);
  Table t(schema);
  BAYESCROWD_CHECK_OK(t.AppendRow("m1", {3, 2, 1}));
  BAYESCROWD_CHECK_OK(t.AppendRow("m2", {4, 2, 3}));
  BAYESCROWD_CHECK_OK(t.AppendRow("m3", {2, 3, 2}));
  return t;
}

TEST(DominanceTest, IntroExample) {
  const Table t = MoviesExample();
  EXPECT_TRUE(Dominates(t, 1, 0));   // m2 dominates m1.
  EXPECT_FALSE(Dominates(t, 0, 1));
  EXPECT_FALSE(Dominates(t, 1, 2));
  EXPECT_FALSE(Dominates(t, 2, 1));
}

TEST(DominanceTest, EqualRowsDoNotDominate) {
  EXPECT_FALSE(Dominates({1, 2, 3}, {1, 2, 3}));
  EXPECT_TRUE(Dominates({1, 2, 4}, {1, 2, 3}));
  EXPECT_FALSE(Dominates({1, 2, 3}, {0, 4, 0}));
}

TEST(SkylineTest, IntroExampleSkyline) {
  const auto bnl = SkylineBnl(MoviesExample());
  ASSERT_TRUE(bnl.ok());
  EXPECT_EQ(bnl.value(), (std::vector<std::size_t>{1, 2}));
}

TEST(SkylineTest, BnlAndSfsAgreeOnRandomData) {
  for (int round = 0; round < 8; ++round) {
    for (const Table& t :
         {MakeIndependent(300, 4, 8, 100 + round),
          MakeCorrelated(300, 4, 8, 200 + round),
          MakeAnticorrelated(300, 4, 8, 300 + round)}) {
      const auto bnl = SkylineBnl(t);
      const auto sfs = SkylineSfs(t);
      ASSERT_TRUE(bnl.ok());
      ASSERT_TRUE(sfs.ok());
      EXPECT_EQ(bnl.value(), sfs.value());
    }
  }
}

TEST(SkylineTest, SkylineMembersAreNotDominated) {
  const Table t = MakeIndependent(400, 3, 10, 9);
  const auto skyline = SkylineBnl(t);
  ASSERT_TRUE(skyline.ok());
  for (std::size_t s : skyline.value()) {
    for (std::size_t p = 0; p < t.num_objects(); ++p) {
      EXPECT_FALSE(Dominates(t, p, s));
    }
  }
  // And every non-member is dominated by someone.
  std::vector<bool> in_skyline(t.num_objects(), false);
  for (std::size_t s : skyline.value()) in_skyline[s] = true;
  for (std::size_t o = 0; o < t.num_objects(); ++o) {
    if (in_skyline[o]) continue;
    bool dominated = false;
    for (std::size_t p = 0; p < t.num_objects() && !dominated; ++p) {
      dominated = Dominates(t, p, o);
    }
    EXPECT_TRUE(dominated) << "object " << o;
  }
}

TEST(SkylineTest, AnticorrelatedHasMoreSkylinePointsThanCorrelated) {
  const auto corr = SkylineBnl(MakeCorrelated(1000, 5, 10, 11));
  const auto anti = SkylineBnl(MakeAnticorrelated(1000, 5, 10, 11));
  ASSERT_TRUE(corr.ok());
  ASSERT_TRUE(anti.ok());
  EXPECT_GT(anti->size(), corr->size());
}

TEST(SkylineTest, RejectsIncompleteTable) {
  EXPECT_FALSE(SkylineBnl(MakeSampleMovieDataset()).ok());
  EXPECT_FALSE(SkylineSfs(MakeSampleMovieDataset()).ok());
}

TEST(SkylineLayersTest, LayersPartitionAndPeel) {
  const Table t = MakeIndependent(200, 3, 8, 21);
  std::vector<std::size_t> attrs = {0, 1, 2};
  const auto layers = SkylineLayers(t, attrs);
  ASSERT_TRUE(layers.ok());
  // Layer 0 is the skyline.
  const auto skyline = SkylineBnl(t);
  ASSERT_TRUE(skyline.ok());
  auto layer0 = layers.value()[0];
  std::sort(layer0.begin(), layer0.end());
  EXPECT_EQ(layer0, skyline.value());
  // Layers partition all objects.
  std::size_t total = 0;
  for (const auto& layer : layers.value()) total += layer.size();
  EXPECT_EQ(total, t.num_objects());
}

TEST(SkylineLayersTest, SubsetAttributesOnly) {
  const Table t = MoviesExample();
  const auto layers = SkylineLayers(t, {0});
  ASSERT_TRUE(layers.ok());
  // On attribute r1 alone: m2 (4) > m1 (3) > m3 (2).
  EXPECT_EQ(layers.value()[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(layers.value()[1], (std::vector<std::size_t>{0}));
  EXPECT_EQ(layers.value()[2], (std::vector<std::size_t>{2}));
}

TEST(MetricsTest, PerfectMatch) {
  const auto m = EvaluateResultSet({1, 2, 3}, {3, 2, 1});
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.true_positives, 3u);
}

TEST(MetricsTest, PartialOverlap) {
  const auto m = EvaluateResultSet({1, 2}, {2, 3});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
}

TEST(MetricsTest, EmptySets) {
  EXPECT_DOUBLE_EQ(EvaluateResultSet({}, {}).f1, 1.0);
  EXPECT_DOUBLE_EQ(EvaluateResultSet({}, {1}).f1, 0.0);
  EXPECT_DOUBLE_EQ(EvaluateResultSet({1}, {}).f1, 0.0);
}

}  // namespace
}  // namespace bayescrowd
