// bayescrowd_cli: command-line front end for the library.
//
//   bayescrowd_cli generate --dataset nba --n 1000 --out complete.csv
//   bayescrowd_cli inject --in complete.csv --rate 0.1 --out holes.csv
//   bayescrowd_cli skyline --in complete.csv
//   bayescrowd_cli ctable --data holes.csv --alpha 0.01
//   bayescrowd_cli run --data holes.csv --truth complete.csv
//       --strategy hhs --budget 50 --latency 5 [--accuracy 0.95]
//   bayescrowd_cli run --data holes.csv --interactive
//
// `run` executes the full BayesCrowd pipeline. With --truth the crowd is
// simulated from the complete table (and F1 is reported); with
// --interactive *you* are the crowd, answering on stdin.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "bayesnet/serialization.h"
#include "bayesnet/structure_learning.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "core/framework.h"
#include "core/inspect.h"
#include "core/report.h"
#include "core/session.h"
#include "core/telemetry.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/normalize.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "crowd/fault_injection.h"
#include "crowd/interactive.h"
#include "crowd/marketplace.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "ctable/builder.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd {
namespace {

/// One documented default for every data-shaping seed (`generate
/// --seed`, `inject --seed`). Historically generate used 42 and inject
/// used 7; unified so a pipeline built from defaults is reproducible
/// from a single number. The `run --seed` default (99) is a separate
/// knob — it seeds the simulated workers, not the data.
constexpr int kDefaultDataSeed = 42;

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    if (it == values.end()) return fallback;
    double v = fallback;
    ParseDouble(it->second, &v);
    return v;
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values.find(key);
    if (it == values.end()) return fallback;
    int v = fallback;
    ParseInt(it->second, &v);
    return v;
  }
  bool Has(const std::string& key) const { return values.count(key) > 0; }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: bayescrowd_cli <command> [flags]\n"
      "  generate --dataset nba|adult|indep|corr|anti --n N --out F\n"
      "           [--seed S (default 42)] [--d D] [--levels L]\n"
      "  inject   --in F --out F (--rate R | --attrs i,j,...)\n"
      "           [--seed S (default 42)]\n"
      "  skyline  --in F\n"
      "  ctable   --data F [--alpha A]\n"
      "  run      --data F (--truth F | --interactive)\n"
      "           [--strategy fbs|ubs|hhs] [--budget B] [--latency L]\n"
      "           [--alpha A] [--m M] [--accuracy P] [--seed S]\n"
      "           [--threads N] [--no-cache]\n"
      "           [--structure hillclimb|chowliu|none]\n"
      "           [--save-model F] [--load-model F]\n"
      "           [--record F] [--replay-from F] [--tasks-per-round K]\n"
      "           [--marketplace N] [--spam-rate R] [--adaptive-votes K]\n"
      "           [--no-defense]\n"
      "           [--fault-rate R] [--fault-seed S] [--answer-noise R]\n"
      "           [--max-retries N] [--round-deadline D]\n"
      "           [--checkpoint-dir D] [--checkpoint-every N]\n"
      "           [--keep-checkpoints N] [--resume]\n"
      "           [--solver-node-budget N] [--solver-component-budget N]\n"
      "           [--solver-deadline-ms N]\n"
      "           [--solver-ladder full|interval|sample|strict]\n"
      "           [--breaker-threshold N] [--pessimistic]\n"
      "           [--compile off|auto|on] [--compile-node-budget N]\n"
      "           [--verbose]\n"
      "           [--metrics-out F] [--trace-out F] [--telemetry-out F]\n"
      "           [--session S] [--flight-out F]\n"
      "           [--metrics-prom F] [--metrics-stream F]\n"
      "  inspect  --run T [--flight F]\n"
      "  inspect  --run A --diff B [--threshold R]\n"
      "  jsoncheck --in F\n"
      "  normalize --in F [--out F] [--strip-lanes] [--strip-resume]\n"
      "  (pause/resume: run --interactive --record log --tasks-per-round K,\n"
      "   stop anytime; rerun with --replay-from log and the same K and\n"
      "   data to continue where you left off)\n"
      "  --marketplace: simulate an adversarial worker marketplace of N\n"
      "  (>= 3) seeded workers with churn instead of the flat --accuracy\n"
      "  mixture; --spam-rate is the adversarial (spammer/colluder)\n"
      "  fraction of arrivals; --adaptive-votes K buys up to K votes per\n"
      "  task (3 base + confidence-gated extras, charged at 1/3 task\n"
      "  cost each); --no-defense disables joint quality inference,\n"
      "  quarantine and weighted voting (the flat-majority baseline)\n"
      "  --fault-rate: inject crowd faults (timeouts, abstains, partial\n"
      "  batches, transient errors) at this rate, deterministically from\n"
      "  --fault-seed; --answer-noise makes three virtual workers re-vote\n"
      "  each answer, each wrong with that probability; --max-retries and\n"
      "  --round-deadline (simulated seconds) bound the recovery effort\n"
      "  per round\n"
      "  --checkpoint-dir: crash safety. Writes a checksummed snapshot\n"
      "  every --checkpoint-every rounds (default 1, keep last\n"
      "  --keep-checkpoints, default 3) plus a durable answer log. After\n"
      "  a kill, rerun the same command with --resume to continue from\n"
      "  the newest intact snapshot (corrupt ones fall back a\n"
      "  generation; the answer-log tail replays on top)\n"
      "  --solver-node-budget / --solver-component-budget: deterministic\n"
      "  per-evaluation ADPLL budgets; on exhaustion the solver walks the\n"
      "  --solver-ladder (full: partial bound, then sampling; interval:\n"
      "  stop at the sound bound; sample: jump straight to sampling;\n"
      "  strict: fail the run). --solver-deadline-ms adds a wall-clock\n"
      "  cap that only degrades, never changes exact answers.\n"
      "  --breaker-threshold: open a per-object circuit breaker after\n"
      "  this many consecutive degraded solves (0 disables);\n"
      "  --pessimistic ranks on the most-uncertain point of each\n"
      "  interval instead of its midpoint\n"
      "  --compile: knowledge-compile each condition's first exact ADPLL\n"
      "  solve into a reusable arithmetic circuit; later rounds replay\n"
      "  it bit-identically instead of re-solving (auto: when eligible,\n"
      "  the default; on: also reject ineligible flag combinations).\n"
      "  --compile-node-budget caps circuit size; oversized conditions\n"
      "  fall back to the governed solver ladder\n"
      "  normalize: strip machine-dependent fields (wall-clock times,\n"
      "  deadline hits; optionally lane usage and resume markers) from a\n"
      "  telemetry/metrics JSON so two runs diff byte-for-byte\n"
      "  global: --log-level debug|info|warning|error|off\n"
      "  --metrics-out: counters/gauges/histograms as JSON;\n"
      "  --trace-out: Chrome trace-event JSON (chrome://tracing, Perfetto);\n"
      "  --telemetry-out: full machine-readable run document\n"
      "  --session: label value stamped on every cost.* metric (default\n"
      "  s0); --flight-out: flight-recorder JSONL, written even when the\n"
      "  run fails; --metrics-prom: Prometheus scrape file rewritten each\n"
      "  round; --metrics-stream: one snapshot JSON line per round\n"
      "  inspect: renders per-phase / per-tier / per-round cost\n"
      "  breakdowns from a --telemetry-out file (--flight adds the\n"
      "  incident timeline); with --diff it compares two telemetry files\n"
      "  and exits 1 when any deterministic metric drifts beyond\n"
      "  --threshold (default 0.02, relative)\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const Flags& flags) {
  const std::string kind = flags.Get("dataset", "nba");
  const auto n = static_cast<std::size_t>(flags.GetInt("n", 1000));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", kDefaultDataSeed));
  const auto d = static_cast<std::size_t>(flags.GetInt("d", 6));
  const auto levels = static_cast<Level>(flags.GetInt("levels", 10));
  Table table;
  if (kind == "nba") {
    table = MakeNbaLike(n, seed);
  } else if (kind == "adult") {
    table = MakeAdultLike(n, seed);
  } else if (kind == "indep") {
    table = MakeIndependent(n, d, levels, seed);
  } else if (kind == "corr") {
    table = MakeCorrelated(n, d, levels, seed);
  } else if (kind == "anti") {
    table = MakeAnticorrelated(n, d, levels, seed);
  } else {
    std::fprintf(stderr, "unknown --dataset '%s'\n", kind.c_str());
    return 2;
  }
  const std::string out = flags.Get("out", "");
  if (out.empty()) return Usage();
  const Status st = SaveTableCsv(table, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu x %zu table to %s\n", table.num_objects(),
              table.num_attributes(), out.c_str());
  return 0;
}

int CmdInject(const Flags& flags) {
  auto loaded = LoadTableCsv(flags.Get("in", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  Table result;
  if (flags.Has("attrs")) {
    std::vector<std::size_t> attrs;
    for (const std::string& part : Split(flags.Get("attrs", ""), ',')) {
      int v = -1;
      if (!ParseInt(part, &v) || v < 0) {
        std::fprintf(stderr, "bad --attrs entry '%s'\n", part.c_str());
        return 2;
      }
      attrs.push_back(static_cast<std::size_t>(v));
    }
    result = InjectMissingAttributes(*loaded, attrs);
  } else {
    Rng rng(
        static_cast<std::uint64_t>(flags.GetInt("seed", kDefaultDataSeed)));
    result =
        InjectMissingUniform(*loaded, flags.GetDouble("rate", 0.1), rng);
  }
  const Status st = SaveTableCsv(result, flags.Get("out", ""));
  if (!st.ok()) return Fail(st);
  std::printf("wrote table with missing rate %.3f\n", result.MissingRate());
  return 0;
}

int CmdSkyline(const Flags& flags) {
  auto loaded = LoadTableCsv(flags.Get("in", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  auto skyline = SkylineSfs(*loaded);
  if (!skyline.ok()) return Fail(skyline.status());
  std::printf("skyline (%zu objects):\n", skyline->size());
  for (std::size_t id : skyline.value()) {
    std::printf("  %s\n", loaded->object_name(id).c_str());
  }
  return 0;
}

int CmdCTable(const Flags& flags) {
  auto loaded = LoadTableCsv(flags.Get("data", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  CTableOptions options;
  options.alpha = flags.GetDouble("alpha", 0.01);
  auto ctable = BuildCTable(*loaded, options);
  if (!ctable.ok()) return Fail(ctable.status());
  std::printf("c-table: %zu true, %zu false, %zu undecided\n",
              ctable->NumTrue(), ctable->NumFalse(),
              ctable->NumUndecided());
  for (std::size_t i = 0; i < loaded->num_objects(); ++i) {
    const Condition& cond = ctable->condition(i);
    if (cond.IsFalse()) continue;  // Keep the dump readable.
    std::printf("  phi(%s) = %s\n", loaded->object_name(i).c_str(),
                cond.ToString(*loaded).c_str());
  }
  return 0;
}

int CmdJsonCheck(const Flags& flags) {
  const std::string path = flags.Get("in", "");
  if (path.empty()) {
    std::fprintf(stderr, "jsoncheck needs --in <file>\n");
    return 2;
  }
  const auto parsed = obs::ReadJsonFile(path);
  if (!parsed.ok()) return Fail(parsed.status());
  std::printf("%s: valid JSON\n", path.c_str());
  return 0;
}

int CmdNormalize(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "normalize needs --in <file>\n");
    return 2;
  }
  const auto parsed = obs::ReadJsonFile(in);
  if (!parsed.ok()) return Fail(parsed.status());
  obs::NormalizeOptions norm;
  norm.strip_lane_usage = flags.Has("strip-lanes");
  norm.strip_resume_markers = flags.Has("strip-resume");
  const obs::JsonValue normalized = obs::NormalizeTelemetry(*parsed, norm);
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::printf("%s\n", normalized.Dump(2).c_str());
    return 0;
  }
  const Status st = obs::WriteJsonFile(normalized, out);
  if (!st.ok()) return Fail(st);
  return 0;
}

int CmdRun(const Flags& flags) {
  auto loaded = LoadTableCsv(flags.Get("data", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  const Table& incomplete = *loaded;

  // Tracing must be live before the run so modeling / per-round /
  // ADPLL spans record; the file is written after the pipeline (the
  // pool joins inside Run, so every lane's buffer is flushed by then).
  const std::string trace_out = flags.Get("trace-out", "");
  if (!trace_out.empty()) obs::Tracer::Global().Enable();

  // Preprocessing: Bayesian network from the incomplete data (or a
  // previously saved model via --load-model).
  const std::string structure = flags.Get("structure", "hillclimb");
  std::unique_ptr<PosteriorProvider> posteriors;
  BayesianNetwork network;
  if (flags.Has("load-model")) {
    auto net = LoadNetwork(flags.Get("load-model", ""));
    if (!net.ok()) return Fail(net.status());
    if (!(net->schema() == incomplete.schema())) {
      return Fail(Status::InvalidArgument(
          "loaded model schema does not match the data"));
    }
    network = std::move(net).value();
    posteriors =
        std::make_unique<BnPosteriorProvider>(network, incomplete);
  } else if (structure == "none") {
    posteriors =
        std::make_unique<UniformPosteriorProvider>(incomplete.schema());
  } else {
    auto dag = structure == "chowliu"
                   ? ChowLiuStructure(incomplete)
                   : HillClimbStructure(incomplete);
    if (!dag.ok()) return Fail(dag.status());
    auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
    if (!net.ok()) return Fail(net.status());
    const Status fit = net->FitParameters(incomplete);
    if (!fit.ok()) return Fail(fit);
    network = std::move(net).value();
    posteriors =
        std::make_unique<BnPosteriorProvider>(network, incomplete);
    if (flags.Has("save-model")) {
      const Status saved =
          SaveNetwork(network, flags.Get("save-model", ""));
      if (!saved.ok()) return Fail(saved);
    }
  }

  BayesCrowdOptions options;
  obs::MetricsRegistry run_metrics;
  options.metrics = &run_metrics;
  options.ctable.alpha = flags.GetDouble("alpha", 0.01);
  options.budget = static_cast<std::size_t>(flags.GetInt("budget", 50));
  options.latency = static_cast<std::size_t>(flags.GetInt("latency", 5));
  if (flags.Has("tasks-per-round")) {
    // Fixes the batch size directly; required to stay constant across a
    // --record / --replay-from pause-resume pair, because task selection
    // adapts to the answers of each batch.
    const auto per_round = static_cast<std::size_t>(
        flags.GetInt("tasks-per-round", 5));
    if (per_round == 0) {
      std::fprintf(stderr, "--tasks-per-round must be >= 1\n");
      return 2;
    }
    options.latency =
        std::max<std::size_t>(1, (options.budget + per_round - 1) /
                                      per_round);
  }
  options.strategy.m = static_cast<std::size_t>(flags.GetInt("m", 15));
  // Recovery policy: --max-retries counts retries after the first
  // attempt; --round-deadline is in simulated seconds (see DESIGN.md §8).
  const int max_retries = flags.GetInt("max-retries", 2);
  if (max_retries < 0) {
    std::fprintf(stderr, "--max-retries must be >= 0\n");
    return 2;
  }
  options.retry.max_attempts = static_cast<std::size_t>(max_retries) + 1;
  options.retry.round_deadline_seconds =
      flags.GetDouble("round-deadline", 0.0);
  // Evaluation lanes: 0 (default) resolves to the hardware concurrency.
  options.threads =
      static_cast<std::size_t>(std::max(0, flags.GetInt("threads", 0)));
  if (flags.Has("no-cache")) options.probability.memoize = false;

  // Cost-attribution session label. It lands verbatim inside canonical
  // series keys and Prometheus label values, so keep it to a safe
  // charset instead of escaping it everywhere downstream.
  options.session = flags.Get("session", "s0");
  if (options.session.empty() ||
      options.session.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyz"
          "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
          "0123456789._-") != std::string::npos) {
    std::fprintf(stderr,
                 "--session must be non-empty [A-Za-z0-9._-] (it becomes "
                 "a metric label value)\n");
    return 2;
  }

  // Resource governor. Budgets given explicitly must be meaningful:
  // a zero or negative budget is almost certainly a typo'd attempt at
  // "unlimited" (spelled by omitting the flag), so it is rejected
  // instead of silently disabling the governor.
  GovernorOptions& governor = options.probability.governor;
  if (flags.Has("solver-node-budget")) {
    const int nodes = flags.GetInt("solver-node-budget", 0);
    if (nodes <= 0) {
      std::fprintf(stderr,
                   "--solver-node-budget must be >= 1 (omit the flag for "
                   "unlimited)\n");
      return 2;
    }
    governor.max_nodes = static_cast<std::uint64_t>(nodes);
  }
  if (flags.Has("solver-component-budget")) {
    const int components = flags.GetInt("solver-component-budget", 0);
    if (components <= 0) {
      std::fprintf(stderr,
                   "--solver-component-budget must be >= 1 (omit the flag "
                   "for unlimited)\n");
      return 2;
    }
    governor.max_components = static_cast<std::uint64_t>(components);
  }
  if (flags.Has("solver-deadline-ms")) {
    const int deadline = flags.GetInt("solver-deadline-ms", 0);
    if (deadline <= 0) {
      std::fprintf(stderr,
                   "--solver-deadline-ms must be >= 1 (omit the flag for "
                   "no deadline)\n");
      return 2;
    }
    governor.deadline_ms = deadline;
  }
  if (flags.Has("solver-ladder")) {
    if (!ParseLadderMode(flags.Get("solver-ladder", ""),
                         &governor.ladder)) {
      std::fprintf(stderr,
                   "unknown --solver-ladder '%s' (expected full, "
                   "interval, sample, or strict)\n",
                   flags.Get("solver-ladder", "").c_str());
      return 2;
    }
  }
  if (flags.Has("breaker-threshold")) {
    const int threshold = flags.GetInt("breaker-threshold", 3);
    if (threshold < 0) {
      std::fprintf(stderr,
                   "--breaker-threshold must be >= 0 (0 disables the "
                   "breaker)\n");
      return 2;
    }
    options.breaker_threshold = static_cast<std::size_t>(threshold);
  }
  if (flags.Has("pessimistic")) options.strategy.pessimistic = true;

  // Knowledge compilation. `auto` (the default) silently skips
  // ineligible configurations; `on` is a promise that compilation will
  // engage, so combinations that cannot compile are rejected here.
  CompileOptions& compile = options.probability.compile;
  if (flags.Has("compile")) {
    if (!ParseCompileMode(flags.Get("compile", ""), &compile.mode)) {
      std::fprintf(stderr,
                   "unknown --compile '%s' (expected off, auto, or on)\n",
                   flags.Get("compile", "").c_str());
      return 2;
    }
  }
  if (flags.Has("compile-node-budget")) {
    const int nodes = flags.GetInt("compile-node-budget", 0);
    if (nodes <= 0) {
      std::fprintf(stderr,
                   "--compile-node-budget must be >= 1 (use --compile off "
                   "to disable compilation)\n");
      return 2;
    }
    compile.max_nodes = static_cast<std::uint64_t>(nodes);
  }
  if (compile.mode == CompileMode::kOn) {
    if (governor.enabled() && governor.ladder == LadderMode::kStrict) {
      std::fprintf(stderr,
                   "--compile on cannot be combined with --solver-ladder "
                   "strict (strict runs must stay budget-exact)\n");
      return 2;
    }
    if (!options.probability.memoize) {
      std::fprintf(stderr,
                   "--compile on cannot be combined with --no-cache "
                   "(artifacts are keyed by the memo cache)\n");
      return 2;
    }
  }

  const std::string strategy = flags.Get("strategy", "hhs");
  if (strategy == "fbs") {
    options.strategy.kind = StrategyKind::kFbs;
  } else if (strategy == "ubs") {
    options.strategy.kind = StrategyKind::kUbs;
  } else if (strategy == "hhs") {
    options.strategy.kind = StrategyKind::kHhs;
  } else {
    std::fprintf(stderr, "unknown --strategy '%s'\n", strategy.c_str());
    return 2;
  }

  // Adversarial worker marketplace (crowd/marketplace.h): replaces the
  // flat accuracy mixture with an evolving, seeded worker pool.
  const bool use_market = flags.Has("marketplace");
  MarketplaceOptions market_options;
  if (use_market) {
    const int pool = flags.GetInt("marketplace", 12);
    if (pool < 3) {
      std::fprintf(stderr,
                   "--marketplace needs a pool of >= 3 workers\n");
      return 2;
    }
    market_options.pool_size = static_cast<std::size_t>(pool);
    market_options.seed =
        static_cast<std::uint64_t>(flags.GetInt("seed", 99));
    market_options.spam_rate = flags.GetDouble("spam-rate", 0.0);
    if (market_options.spam_rate < 0.0 ||
        market_options.spam_rate > 1.0) {
      std::fprintf(stderr, "--spam-rate must be in [0, 1]\n");
      return 2;
    }
    if (flags.Has("no-defense")) market_options.defend = false;
    if (flags.Has("adaptive-votes")) {
      const int max_votes = flags.GetInt("adaptive-votes", 0);
      if (max_votes < market_options.base_votes) {
        std::fprintf(stderr,
                     "--adaptive-votes must be >= %d (the base vote "
                     "fan-out)\n",
                     market_options.base_votes);
        return 2;
      }
      market_options.max_votes = max_votes;
      options.adaptive.enabled = true;
      options.adaptive.base_votes =
          static_cast<std::size_t>(market_options.base_votes);
      options.adaptive.max_votes = static_cast<std::size_t>(max_votes);
    }
  } else if (flags.Has("spam-rate") || flags.Has("adaptive-votes") ||
             flags.Has("no-defense")) {
    std::fprintf(stderr,
                 "--spam-rate / --adaptive-votes / --no-defense need "
                 "--marketplace\n");
    return 2;
  }

  std::unique_ptr<CrowdPlatform> platform;
  MarketplaceCrowdPlatform* market = nullptr;
  Table truth;
  const bool have_truth = flags.Has("truth");
  if (flags.Has("interactive")) {
    if (use_market) {
      std::fprintf(stderr,
                   "--marketplace cannot be combined with --interactive "
                   "(the marketplace needs --truth)\n");
      return 2;
    }
    platform = std::make_unique<InteractiveCrowdPlatform>(
        incomplete, std::cin, std::cout);
  } else if (have_truth) {
    auto loaded_truth = LoadTableCsv(flags.Get("truth", ""));
    if (!loaded_truth.ok()) return Fail(loaded_truth.status());
    truth = std::move(loaded_truth).value();
    if (use_market) {
      auto owned = std::make_unique<MarketplaceCrowdPlatform>(
          truth, market_options);
      market = owned.get();
      market->BindMetrics(&run_metrics);
      platform = std::move(owned);
    } else {
      SimulatedPlatformOptions platform_options;
      platform_options.worker_accuracy = flags.GetDouble("accuracy", 1.0);
      platform_options.seed =
          static_cast<std::uint64_t>(flags.GetInt("seed", 99));
      platform = std::make_unique<SimulatedCrowdPlatform>(
          truth, platform_options);
    }
  } else {
    std::fprintf(stderr, "run needs --truth <csv> or --interactive\n");
    return 2;
  }

  // Optional deterministic fault injection between the live platform
  // and everything above it, so a recorded faulted session transcribes
  // (and replays) the exact recovery path.
  std::unique_ptr<FaultInjectingPlatform> faulter;
  CrowdPlatform* effective = platform.get();
  const double fault_rate = flags.GetDouble("fault-rate", 0.0);
  const double answer_noise = flags.GetDouble("answer-noise", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.GetInt("fault-seed", 13));
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    std::fprintf(stderr, "--fault-rate must be in [0, 1]\n");
    return 2;
  }
  if (answer_noise < 0.0 || answer_noise > 1.0) {
    std::fprintf(stderr, "--answer-noise must be in [0, 1]\n");
    return 2;
  }
  if (fault_rate > 0.0 || answer_noise > 0.0) {
    FaultOptions fault_options =
        FaultOptions::Profile(fault_rate, fault_seed);
    fault_options.answer_noise = answer_noise;
    faulter = std::make_unique<FaultInjectingPlatform>(*effective,
                                                       fault_options);
    faulter->BindMetrics(&run_metrics);
    effective = faulter.get();
  }

  // Optional pause/resume: --replay-from serves previously bought
  // answers before going live; --record transcribes this session.
  std::unique_ptr<ReplayingPlatform> replayer;
  if (flags.Has("replay-from")) {
    auto log = LoadAnswerLog(flags.Get("replay-from", ""));
    if (!log.ok()) return Fail(log.status());
    replayer = std::make_unique<ReplayingPlatform>(
        std::move(log).value(), effective);  // Live tail stays faulted.
    effective = replayer.get();
  }
  std::unique_ptr<RecordingPlatform> recorder;
  if (flags.Has("record")) {
    recorder = std::make_unique<RecordingPlatform>(*effective);
    effective = recorder.get();
  }

  // Crash-safe sessions: checksummed snapshots plus a durable answer
  // log in --checkpoint-dir; --resume continues from the newest intact
  // pair. Mutually exclusive with the manual --record / --replay-from
  // mechanism above (both would want to own the recorder).
  const std::string checkpoint_dir = flags.Get("checkpoint-dir", "");
  std::unique_ptr<CheckpointStore> ckpt_store;
  std::unique_ptr<FileAnswerLogSink> log_sink;
  std::unique_ptr<SessionCheckpointSink> session_sink;
  std::unique_ptr<RecoveredSession> recovered;
  if (flags.Has("resume") && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
    return 2;
  }
  if (flags.Has("resume") && flags.Has("no-cache")) {
    // A snapshot carries the evaluator's memoized solver state; with
    // the cache disabled that state cannot be restored, so the resumed
    // run would silently diverge from its uninterrupted reference.
    std::fprintf(stderr,
                 "--no-cache cannot be combined with --resume (snapshots "
                 "carry memoized solver state)\n");
    return 2;
  }
  if (!checkpoint_dir.empty()) {
    if (flags.Has("record") || flags.Has("replay-from")) {
      std::fprintf(stderr,
                   "--checkpoint-dir cannot be combined with --record / "
                   "--replay-from; it manages its own answer log\n");
      return 2;
    }
    const int keep = flags.GetInt("keep-checkpoints", 3);
    const int every = flags.GetInt("checkpoint-every", 1);
    if (keep < 1 || every < 1) {
      std::fprintf(stderr,
                   "--keep-checkpoints and --checkpoint-every must be "
                   ">= 1\n");
      return 2;
    }
    // The fingerprint binds a checkpoint to the query it belongs to:
    // behavior-relevant options, dataset bytes, and the platform setup
    // (worker seeds and fault profile). Resuming under any other
    // configuration is refused rather than silently diverging.
    std::string dataset_bytes;
    {
      std::ifstream in(flags.Get("data", ""), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      dataset_bytes = buffer.str();
    }
    const std::string platform_config = StrFormat(
        "interactive=%d|accuracy=%.17g|seed=%llu|fault=%.17g|"
        "fseed=%llu|noise=%.17g|market=%d|pool=%zu|spam=%.17g|"
        "maxv=%d|defend=%d",
        flags.Has("interactive") ? 1 : 0, flags.GetDouble("accuracy", 1.0),
        static_cast<unsigned long long>(flags.GetInt("seed", 99)),
        fault_rate, static_cast<unsigned long long>(fault_seed),
        answer_noise, use_market ? 1 : 0, market_options.pool_size,
        market_options.spam_rate, market_options.max_votes,
        market_options.defend ? 1 : 0);
    const std::uint64_t fingerprint =
        ConfigFingerprint(options, dataset_bytes, platform_config);

    CheckpointStore::Options store_options;
    store_options.dir = checkpoint_dir;
    store_options.keep = static_cast<std::size_t>(keep);
    ckpt_store = std::make_unique<CheckpointStore>(store_options);
    const std::string log_path = checkpoint_dir + "/answers.log";
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    if (ec) {
      return Fail(Status::IOError("cannot create checkpoint dir " +
                                  checkpoint_dir + ": " + ec.message()));
    }

    std::size_t base_log_offset = 0;
    std::size_t already_durable = 0;
    bool truncate_log = true;
    if (flags.Has("resume")) {
      auto session = RecoverSession(checkpoint_dir, log_path, fingerprint);
      if (!session.ok()) return Fail(session.status());
      recovered =
          std::make_unique<RecoveredSession>(std::move(session).value());
      base_log_offset = recovered->state.answer_log_offset;
      // The replayed tail is re-recorded by the recorder below but is
      // already in the file; the sink skips that many entries.
      already_durable = recovered->durable_entries - base_log_offset;
      truncate_log = false;
      replayer = std::make_unique<ReplayingPlatform>(
          recovered->replay_tail, effective);
      replayer->SetBaseTotals(recovered->state.platform_tasks,
                              recovered->state.platform_rounds);
      effective = replayer.get();
      // A from-scratch recovery (killed before the first checkpoint)
      // has no state to restore; the full-log replay rebuilds it.
      if (!recovered->from_scratch) options.resume = &recovered->state;
      run_metrics.GetCounter("recovery.resumed")->Increment();
      run_metrics.GetCounter("recovery.fallback")
          ->Increment(recovered->fallbacks);
      run_metrics.GetCounter("recovery.replayed_entries")
          ->Increment(recovered->replay_tail.entries.size());
      if (recovered->dropped_torn_tail) {
        run_metrics.GetCounter("recovery.dropped_torn_tail")->Increment();
      }
      std::printf(
          "resuming from round %zu: %zu answer(s) to replay, %zu "
          "checkpoint generation(s) skipped%s\n",
          recovered->state.rounds, recovered->replay_tail.entries.size(),
          recovered->fallbacks,
          recovered->dropped_torn_tail ? ", torn log tail dropped" : "");
    }
    auto sink = FileAnswerLogSink::Open(log_path, already_durable,
                                        truncate_log);
    if (!sink.ok()) return Fail(sink.status());
    log_sink = std::move(sink).value();
    recorder = std::make_unique<RecordingPlatform>(*effective,
                                                   log_sink.get());
    effective = recorder.get();

    const std::string network_blob =
        (flags.Has("load-model") || structure != "none")
            ? SerializeNetwork(network)
            : std::string();
    session_sink = std::make_unique<SessionCheckpointSink>(
        ckpt_store.get(), recorder.get(), base_log_offset, network_blob,
        fingerprint);
    options.checkpoint_sink = session_sink.get();
    options.checkpoint_every = static_cast<std::size_t>(every);
  }

  // Flight recorder and live snapshot exporters. All writability
  // problems surface here as one-line diagnostics, not mid-run crashes.
  obs::FlightRecorder flight_recorder;
  const std::string flight_out = flags.Get("flight-out", "");
  if (flags.Has("flight-out")) {
    if (flight_out.empty()) {
      std::fprintf(stderr, "--flight-out needs a file path\n");
      return 2;
    }
    std::FILE* probe = std::fopen(flight_out.c_str(), "ab");
    if (probe == nullptr) {
      std::fprintf(stderr, "--flight-out: cannot open '%s' for writing\n",
                   flight_out.c_str());
      return 2;
    }
    std::fclose(probe);
    options.flight = &flight_recorder;
  }
  if (market != nullptr && options.flight != nullptr) {
    market->SetFlightRecorder(options.flight);
  }
  obs::SnapshotFanout round_fanout;
  std::unique_ptr<obs::PrometheusFileExporter> prom_exporter;
  std::unique_ptr<obs::JsonlStreamExporter> stream_exporter;
  if (flags.Has("metrics-prom")) {
    auto opened =
        obs::PrometheusFileExporter::Open(flags.Get("metrics-prom", ""));
    if (!opened.ok()) {
      std::fprintf(stderr, "--metrics-prom: %s\n",
                   opened.status().message().c_str());
      return 2;
    }
    prom_exporter = std::move(opened).value();
    round_fanout.Add(prom_exporter.get());
  }
  if (flags.Has("metrics-stream")) {
    auto opened =
        obs::JsonlStreamExporter::Open(flags.Get("metrics-stream", ""));
    if (!opened.ok()) {
      std::fprintf(stderr, "--metrics-stream: %s\n",
                   opened.status().message().c_str());
      return 2;
    }
    stream_exporter = std::move(opened).value();
    round_fanout.Add(stream_exporter.get());
  }
  if (!round_fanout.empty()) options.round_sink = &round_fanout;

  BayesCrowd framework(options);
  auto result = framework.Run(incomplete, *posteriors, *effective);

  // The flight ring is most valuable when the run died, so it is
  // flushed before any failure handling below gets a chance to return.
  if (!flight_out.empty()) {
    const Status st = flight_recorder.WriteJsonl(flight_out);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: could not write flight log: %s\n",
                   st.ToString().c_str());
    } else {
      std::printf("wrote flight log to %s\n", flight_out.c_str());
    }
  }
  if (recorder != nullptr && flags.Has("record")) {
    // Save even when the run failed (e.g. the human walked away from an
    // interactive session): the bought answers are what makes resuming
    // with --replay-from possible.
    const Status saved =
        SaveAnswerLog(recorder->log(), flags.Get("record", ""));
    if (!saved.ok()) return Fail(saved);
    if (!result.ok()) {
      std::fprintf(stderr,
                   "run interrupted (%s); %zu answers saved, resume with "
                   "--replay-from %s\n",
                   result.status().ToString().c_str(),
                   recorder->log().entries.size(),
                   flags.Get("record", "").c_str());
      return 1;
    }
  }
  if (!result.ok()) {
    if (!checkpoint_dir.empty()) {
      // The answer log is durable per batch and snapshots per round
      // boundary, so whatever was bought survives the failure.
      std::fprintf(stderr,
                   "run interrupted (%s); rerun with --resume "
                   "--checkpoint-dir %s to continue\n",
                   result.status().ToString().c_str(),
                   checkpoint_dir.c_str());
      return 1;
    }
    return Fail(result.status());
  }

  // Observability artifacts (each flag independent; all opt-in).
  if (!trace_out.empty()) {
    const Status st = obs::Tracer::Global().WriteChromeTrace(trace_out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  if (flags.Has("metrics-out")) {
    obs::JsonValue payload = obs::JsonValue::Object();
    payload["run"] = run_metrics.Snapshot().ToJson();
    payload["process"] = obs::MetricsRegistry::Default().Snapshot().ToJson();
    const Status st = obs::WriteJsonFile(
        obs::TelemetryEnvelope("metrics", flags.Get("data", ""),
                               std::move(payload)),
        flags.Get("metrics-out", ""));
    if (!st.ok()) return Fail(st);
    std::printf("wrote metrics to %s\n",
                flags.Get("metrics-out", "").c_str());
  }
  if (flags.Has("telemetry-out")) {
    const Status st =
        WriteRunTelemetry(flags.Get("data", ""), options, *result,
                          flags.Get("telemetry-out", ""));
    if (!st.ok()) return Fail(st);
    std::printf("wrote telemetry to %s\n",
                flags.Get("telemetry-out", "").c_str());
  }

  ReportOptions report;
  report.show_rounds = flags.Has("verbose");
  report.show_conditions = flags.Has("verbose");
  report.show_metrics = flags.Has("verbose");
  report.max_objects = 50;
  std::printf("\n%s", FormatRunReport(*result, incomplete, report).c_str());
  if (faulter != nullptr) {
    const FaultStats& faults = faulter->stats();
    std::printf(
        "fault injection: %llu/%llu batches delivered; %llu transient, "
        "%llu timeout, %llu abstained task(s), %llu partial batch(es)\n",
        static_cast<unsigned long long>(faults.batches_delivered),
        static_cast<unsigned long long>(faults.batches_attempted),
        static_cast<unsigned long long>(faults.transient_failures),
        static_cast<unsigned long long>(faults.timeouts),
        static_cast<unsigned long long>(faults.abstained_tasks),
        static_cast<unsigned long long>(faults.partial_batches));
    if (answer_noise > 0.0) {
      std::printf(
          "answer noise: %llu vote(s) flipped, %llu aggregate "
          "answer(s) changed\n",
          static_cast<unsigned long long>(faults.flipped_votes),
          static_cast<unsigned long long>(faults.noisy_answers_changed));
      auto accuracies = faulter->EstimateVirtualWorkerAccuracies();
      if (accuracies.ok()) {
        std::printf("estimated virtual-worker accuracies:");
        for (const double a : accuracies.value()) std::printf(" %.3f", a);
        std::printf("\n");
      }
    }
  }
  if (market != nullptr) {
    const MarketplaceStats& ms = market->stats();
    std::printf(
        "marketplace: active=%zu quarantined=%zu arrivals=%llu "
        "departures=%llu votes=%llu extra=%llu premium=%llu "
        "abstained=%llu wide_rounds=%llu kappa=%.3f\n",
        market->active_workers(), market->quarantined_workers(),
        static_cast<unsigned long long>(ms.arrivals),
        static_cast<unsigned long long>(ms.departures),
        static_cast<unsigned long long>(ms.votes_cast),
        static_cast<unsigned long long>(ms.extra_votes),
        static_cast<unsigned long long>(ms.premium_votes),
        static_cast<unsigned long long>(ms.abstained_tasks),
        static_cast<unsigned long long>(ms.wide_rounds), ms.last_kappa);
    if (result->extra_votes > 0) {
      std::printf("adaptive votes: %zu extra vote(s) charged\n",
                  result->extra_votes);
    }
  }
  if (have_truth) {
    auto skyline = SkylineSfs(truth);
    if (!skyline.ok()) return Fail(skyline.status());
    const auto metrics =
        EvaluateResultSet(result->result_objects, skyline.value());
    std::printf("vs ground truth: precision=%.3f recall=%.3f F1=%.3f\n",
                metrics.precision, metrics.recall, metrics.f1);
  }
  return 0;
}

int CmdInspect(const Flags& flags) {
  const std::string run_path = flags.Get("run", "");
  if (run_path.empty()) {
    std::fprintf(stderr,
                 "inspect needs --run <telemetry.json> (add --flight "
                 "<flight.jsonl> for the incident timeline, or --diff "
                 "<candidate.json> to compare two runs)\n");
    return 2;
  }
  auto baseline = obs::ReadJsonFile(run_path);
  if (!baseline.ok()) return Fail(baseline.status());

  if (flags.Has("diff")) {
    const std::string diff_path = flags.Get("diff", "");
    if (diff_path.empty()) {
      std::fprintf(stderr, "--diff needs a candidate telemetry file\n");
      return 2;
    }
    auto candidate = obs::ReadJsonFile(diff_path);
    if (!candidate.ok()) return Fail(candidate.status());
    const double threshold = flags.GetDouble("threshold", 0.02);
    auto diff = DiffRunTelemetry(*baseline, *candidate, threshold);
    if (!diff.ok()) return Fail(diff.status());
    std::printf("%s", diff->text.c_str());
    return diff->regressions.empty() ? 0 : 1;
  }

  std::unique_ptr<obs::FlightLoad> flight;
  if (flags.Has("flight")) {
    auto loaded = obs::LoadFlightJsonl(flags.Get("flight", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    flight = std::make_unique<obs::FlightLoad>(std::move(loaded).value());
  }
  auto report = RenderRunInspection(*baseline, flight.get());
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->text.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return Usage();
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values[arg] = argv[++i];
    } else {
      flags.values[arg] = "";  // Boolean flag.
    }
  }
  if (flags.Has("log-level")) {
    LogLevel level = LogLevel::kWarning;
    if (!ParseLogLevel(flags.Get("log-level", ""), &level)) {
      std::fprintf(stderr, "unknown --log-level '%s'\n",
                   flags.Get("log-level", "").c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "inject") return CmdInject(flags);
  if (command == "skyline") return CmdSkyline(flags);
  if (command == "ctable") return CmdCTable(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "jsoncheck") return CmdJsonCheck(flags);
  if (command == "normalize") return CmdNormalize(flags);
  return Usage();
}

}  // namespace
}  // namespace bayescrowd

int main(int argc, char** argv) { return bayescrowd::Main(argc, argv); }
