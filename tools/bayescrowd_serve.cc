// bayescrowd_serve: BayesCrowd as a resident multi-session service.
//
// Speaks a line-delimited JSON protocol on stdin/stdout: one request
// object per line in, exactly one response object per line out (always
// `{"ok":true,...}` or `{"ok":false,"error":"..."}`). A malformed line
// yields a one-line diagnostic and the connection survives — the
// server never exits on bad input, only on `shutdown` or EOF.
//
//   {"op":"create","id":"s1","tenant":"acme",
//    "dataset":{"kind":"indep","n":40,"d":3,"levels":4,"seed":7,
//               "missing_rate":0.2,"missing_seed":5},
//    "budget":12,"latency":3}
//   {"op":"advance","id":"s1","rounds":2}
//   {"op":"checkpoint","id":"s1"}   (needs "checkpoint_dir" at create)
//   {"op":"info","id":"s1"}    {"op":"list"}    {"op":"metrics"}
//   {"op":"finish","id":"s1"}  {"op":"evict","id":"s1"}
//   {"op":"shutdown"}
//
// Flags:
//   --threads N          lanes of the shared worker pool (0 = auto)
//   --max-resident N     global residency cap (default 8)
//   --max-per-tenant N   per-tenant residency cap (default 4)
//   --qos SPEC           per-tenant QoS: "tenant=after:every:n1,n2;..."
//                        — after `after` rounds of a session, and every
//                        `every` further rounds, tighten the solver
//                        governor to max_nodes n1, then n2, ...
//   --metrics-prom PATH  rewrite a Prometheus scrape file (serve.*
//                        series, tenant=/session= labeled) per request
//   --flight-out PATH    write the serve flight ring as JSONL on exit
//   --state-dir DIR      durable server state: the serve manifest lives
//                        here, and sessions created without a
//                        "checkpoint_dir" default to DIR/checkpoints
//   --recover            replay the manifest in --state-dir and resume
//                        every session live at the last crash before
//                        serving; emits one {"op":"recover",...} line
//   --max-queue N        stepping requests queued past the one running
//                        before new ones shed (default 8)
//   --retry-after-ms N   retry hint carried in shed responses
//   --chaos SPEC         deterministic fault injection under the IO
//                        layer: "write_fail=P,sync_fail=P,
//                        read_corrupt=P,seed=S,match=SUBSTR,
//                        shed_every=N" (any subset; match scopes the
//                        faults to paths containing SUBSTR; shed_every
//                        force-sheds every Nth stepping request)
//
// Request-level robustness: "advance" accepts "deadline_ms" (degrade-
// only solver deadline for that request); an overloaded server answers
// {"ok":false,"error":...,"overloaded":true,"retry_after_ms":N} and
// stays up; a session that keeps failing is quarantined, not fatal.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/export.h"
#include "obs/json.h"
#include "serve/manager.h"
#include "serve/manifest.h"

namespace bayescrowd {
namespace {

using obs::JsonValue;
using serve::AdvanceOutcome;
using serve::ManifestEvent;
using serve::RecoveryReport;
using serve::SessionInfo;
using serve::SessionManager;
using serve::SessionSpec;
using serve::TenantQos;

JsonValue ErrorLine(const std::string& message) {
  JsonValue out = JsonValue::Object();
  out["ok"] = false;
  out["error"] = message;
  return out;
}

/// Error response for a verb Status; a shed (Unavailable + retry hint)
/// additionally carries machine-readable backoff fields so clients can
/// retry without parsing the message.
JsonValue StatusLine(const Status& status) {
  JsonValue out = ErrorLine(status.ToString());
  if (status.IsUnavailable()) {
    const std::string& message = status.message();
    const std::size_t at = message.find("retry_after_ms=");
    if (at != std::string::npos) {
      out["overloaded"] = true;
      out["retry_after_ms"] = static_cast<std::int64_t>(
          std::atoll(message.c_str() + at + sizeof("retry_after_ms=") - 1));
    }
  }
  return out;
}

JsonValue OkLine(const std::string& op) {
  JsonValue out = JsonValue::Object();
  out["ok"] = true;
  out["op"] = op;
  return out;
}

std::int64_t FindInt(const JsonValue& doc, const char* key,
                     std::int64_t fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsInt();
}

double FindDouble(const JsonValue& doc, const char* key, double fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsDouble();
}

std::string FindString(const JsonValue& doc, const char* key,
                       const std::string& fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsString();
}

bool FindBool(const JsonValue& doc, const char* key, bool fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsBool();
}

/// Builds (truth, incomplete, canonical descriptor) from a "dataset"
/// object. The descriptor doubles as the default shared-cache key, so
/// two sessions over the same generated data share warm starts.
Status BuildDataset(const JsonValue& spec, Table* truth, Table* incomplete,
                    std::string* descriptor) {
  const std::string kind = FindString(spec, "kind", "indep");
  const auto n = static_cast<std::size_t>(FindInt(spec, "n", 40));
  const auto d = static_cast<std::size_t>(FindInt(spec, "d", 3));
  const auto levels = static_cast<Level>(FindInt(spec, "levels", 4));
  const auto seed = static_cast<std::uint64_t>(FindInt(spec, "seed", 7));
  const double rate = FindDouble(spec, "missing_rate", 0.2);
  const auto miss_seed =
      static_cast<std::uint64_t>(FindInt(spec, "missing_seed", 5));
  if (kind == "indep") {
    *truth = MakeIndependent(n, d, levels, seed);
  } else if (kind == "corr") {
    *truth = MakeCorrelated(n, d, levels, seed);
  } else if (kind == "anti") {
    *truth = MakeAnticorrelated(n, d, levels, seed);
  } else if (kind == "nba") {
    *truth = MakeNbaLike(n, seed);
  } else if (kind == "adult") {
    *truth = MakeAdultLike(n, seed);
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown dataset kind '%s'", kind.c_str()));
  }
  Rng rng(miss_seed);
  *incomplete = InjectMissingUniform(*truth, rate, rng);
  *descriptor = StrFormat("%s:n=%zu:d=%zu:levels=%d:seed=%llu:rate=%.6f:"
                          "mseed=%llu",
                          kind.c_str(), n, d, static_cast<int>(levels),
                          static_cast<unsigned long long>(seed), rate,
                          static_cast<unsigned long long>(miss_seed));
  return Status::OK();
}

JsonValue InfoJson(const SessionInfo& info) {
  JsonValue out = JsonValue::Object();
  out["id"] = info.id;
  out["tenant"] = info.tenant;
  out["rounds"] = static_cast<std::int64_t>(info.rounds);
  out["budget_left"] = info.budget_left;
  out["qos_level"] = static_cast<std::int64_t>(info.qos_level);
  out["done"] = info.done;
  out["finished"] = info.finished;
  out["resumed"] = info.resumed;
  out["quarantined"] = info.quarantined;
  return out;
}

/// Builds the full SessionSpec a "create" request describes. Shared by
/// the create verb and --recover's resolver (which re-parses the
/// request journaled in the manifest's spec_blob), so a recovered
/// session is admitted through the identical code path. The canonical
/// re-dump of the request is stored as the spec's manifest_blob.
Status SpecFromJson(const JsonValue& doc,
                    const std::string& default_checkpoint_dir,
                    SessionSpec* spec) {
  spec->id = FindString(doc, "id", "");
  spec->tenant = FindString(doc, "tenant", "");
  const JsonValue* dataset = doc.Find("dataset");
  const JsonValue empty = JsonValue::Object();
  std::string descriptor;
  BAYESCROWD_RETURN_NOT_OK(
      BuildDataset(dataset != nullptr ? *dataset : empty,
                   &spec->ground_truth, &spec->incomplete, &descriptor));
  spec->cache_key = FindString(doc, "cache_key", descriptor);

  spec->options.ctable.alpha =
      FindDouble(doc, "alpha", spec->options.ctable.alpha);
  spec->options.budget =
      static_cast<std::size_t>(FindInt(doc, "budget", 12));
  spec->options.latency =
      static_cast<std::size_t>(FindInt(doc, "latency", 3));
  spec->options.strategy.m =
      static_cast<std::size_t>(FindInt(doc, "m", 3));
  spec->options.checkpoint_every =
      static_cast<std::size_t>(FindInt(doc, "checkpoint_every", 0));
  const auto max_nodes =
      static_cast<std::uint64_t>(FindInt(doc, "governor_max_nodes", 0));
  if (max_nodes > 0) {
    spec->options.probability.governor.max_nodes = max_nodes;
  }

  spec->platform.worker_accuracy = FindDouble(doc, "accuracy", 1.0);
  spec->platform.seed =
      static_cast<std::uint64_t>(FindInt(doc, "platform_seed", 99));
  spec->platform.workers_per_task =
      static_cast<int>(FindInt(doc, "workers_per_task", 3));

  // "marketplace": {...} swaps the flat simulated crowd for the
  // adversarial worker marketplace. Parsed here so --recover rebuilds
  // the same platform from the journaled request.
  if (const JsonValue* market = doc.Find("marketplace");
      market != nullptr) {
    spec->use_marketplace = true;
    MarketplaceOptions& mo = spec->marketplace;
    mo.pool_size =
        static_cast<std::size_t>(FindInt(*market, "pool_size", 12));
    if (mo.pool_size < 3) {
      return Status::InvalidArgument(
          "marketplace.pool_size must be >= 3");
    }
    mo.spam_rate = FindDouble(*market, "spam_rate", 0.0);
    if (mo.spam_rate < 0.0 || mo.spam_rate > 1.0) {
      return Status::InvalidArgument(
          "marketplace.spam_rate must be in [0, 1]");
    }
    mo.base_votes = static_cast<int>(FindInt(*market, "base_votes", 3));
    mo.max_votes = static_cast<int>(
        FindInt(*market, "max_votes", mo.base_votes));
    if (mo.base_votes < 1 || mo.max_votes < mo.base_votes) {
      return Status::InvalidArgument(
          "marketplace votes: need base_votes >= 1 and "
          "max_votes >= base_votes");
    }
    mo.churn_rate = FindDouble(*market, "churn_rate", mo.churn_rate);
    mo.defend = FindBool(*market, "defend", true);
    mo.seed = static_cast<std::uint64_t>(
        FindInt(*market, "seed", static_cast<std::int64_t>(mo.seed)));
    if (mo.max_votes > mo.base_votes) {
      spec->options.adaptive.enabled = true;
      spec->options.adaptive.base_votes =
          static_cast<std::size_t>(mo.base_votes);
      spec->options.adaptive.max_votes =
          static_cast<std::size_t>(mo.max_votes);
    }
  }

  spec->warm_start = FindBool(doc, "warm_start", false);
  spec->checkpoint_dir = FindString(doc, "checkpoint_dir", "");
  if (spec->checkpoint_dir.empty()) {
    spec->checkpoint_dir = default_checkpoint_dir;
  }
  spec->resume = FindBool(doc, "resume", false);
  spec->manifest_blob = doc.Dump();
  return Status::OK();
}

JsonValue HandleCreate(SessionManager* manager, const JsonValue& doc,
                       const std::string& default_checkpoint_dir) {
  SessionSpec spec;
  const Status built = SpecFromJson(doc, default_checkpoint_dir, &spec);
  if (!built.ok()) return ErrorLine(built.ToString());
  const std::string id = spec.id;
  const Status created = manager->Create(std::move(spec));
  if (!created.ok()) return StatusLine(created);
  Result<SessionInfo> info = manager->Info(id);
  if (!info.ok()) return ErrorLine(info.status().ToString());
  JsonValue out = OkLine("create");
  out["session"] = InfoJson(info.value());
  return out;
}

JsonValue HandleAdvance(SessionManager* manager, const JsonValue& doc) {
  const std::string id = FindString(doc, "id", "");
  const auto rounds = static_cast<std::size_t>(FindInt(doc, "rounds", 1));
  const std::int64_t deadline_ms = FindInt(doc, "deadline_ms", 0);
  Result<AdvanceOutcome> advanced =
      manager->Advance(id, rounds, deadline_ms);
  if (!advanced.ok()) return StatusLine(advanced.status());
  JsonValue out = OkLine("advance");
  out["id"] = id;
  out["rounds_run"] =
      static_cast<std::int64_t>(advanced.value().rounds_run);
  out["qos_level"] =
      static_cast<std::int64_t>(advanced.value().qos_level);
  out["done"] = advanced.value().done;
  if (deadline_ms > 0) out["deadline_ms"] = deadline_ms;
  return out;
}

JsonValue HandleFinish(SessionManager* manager, const JsonValue& doc) {
  const std::string id = FindString(doc, "id", "");
  Result<BayesCrowdResult> finished = manager->Finish(id);
  if (!finished.ok()) return StatusLine(finished.status());
  const BayesCrowdResult& result = finished.value();
  JsonValue out = OkLine("finish");
  out["id"] = id;
  JsonValue objects = JsonValue::Array();
  for (const std::size_t object : result.result_objects) {
    objects.Append(JsonValue(static_cast<std::int64_t>(object)));
  }
  out["result_objects"] = std::move(objects);
  out["rounds"] = static_cast<std::int64_t>(result.rounds);
  out["tasks_posted"] = static_cast<std::int64_t>(result.tasks_posted);
  out["cost_spent"] = result.cost_spent;
  out["stopped_confident"] = result.stopped_confident;
  out["degraded_objects"] =
      static_cast<std::int64_t>(result.degraded_objects.size());
  out["exact"] = result.degraded_objects.empty();
  return out;
}

JsonValue HandleOne(SessionManager* manager, const JsonValue& doc,
                    const std::string& default_checkpoint_dir) {
  const std::string op = FindString(doc, "op", "");
  if (op == "create") {
    return HandleCreate(manager, doc, default_checkpoint_dir);
  }
  if (op == "advance") return HandleAdvance(manager, doc);
  if (op == "finish") return HandleFinish(manager, doc);
  if (op == "checkpoint") {
    const std::string id = FindString(doc, "id", "");
    const Status st = manager->Checkpoint(id);
    if (!st.ok()) return StatusLine(st);
    JsonValue out = OkLine("checkpoint");
    out["id"] = id;
    return out;
  }
  if (op == "evict") {
    const std::string id = FindString(doc, "id", "");
    const Status st = manager->Evict(id);
    if (!st.ok()) return ErrorLine(st.ToString());
    JsonValue out = OkLine("evict");
    out["id"] = id;
    return out;
  }
  if (op == "info") {
    Result<SessionInfo> info = manager->Info(FindString(doc, "id", ""));
    if (!info.ok()) return ErrorLine(info.status().ToString());
    JsonValue out = OkLine("info");
    out["session"] = InfoJson(info.value());
    return out;
  }
  if (op == "list") {
    JsonValue out = OkLine("list");
    JsonValue sessions = JsonValue::Array();
    for (const SessionInfo& info : manager->List()) {
      sessions.Append(InfoJson(info));
    }
    out["sessions"] = std::move(sessions);
    return out;
  }
  if (op == "metrics") {
    JsonValue out = OkLine("metrics");
    out["metrics"] = manager->MetricsSnapshot().ToJson();
    return out;
  }
  if (op == "shutdown") return OkLine("shutdown");
  return ErrorLine(StrFormat("unknown op '%s'", op.c_str()));
}

/// "--qos tenantA=4:2:2000,500;tenantB=..." → per-tenant policies.
bool ParseQosSpec(const std::string& text,
                  std::map<std::string, TenantQos>* out) {
  for (const std::string& policy : Split(text, ';')) {
    if (policy.empty()) continue;
    const auto eq = policy.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string tenant = policy.substr(0, eq);
    const std::vector<std::string> parts =
        Split(policy.substr(eq + 1), ':');
    if (parts.size() != 3) return false;
    TenantQos qos;
    int after = 0;
    int every = 0;
    if (!ParseInt(parts[0], &after) || !ParseInt(parts[1], &every) ||
        after < 0 || every < 0) {
      return false;
    }
    qos.degrade_after_rounds = static_cast<std::size_t>(after);
    qos.degrade_every_rounds = static_cast<std::size_t>(every);
    for (const std::string& nodes_text : Split(parts[2], ',')) {
      int nodes = 0;
      if (!ParseInt(nodes_text, &nodes) || nodes <= 0) return false;
      GovernorOptions governor;
      governor.max_nodes = static_cast<std::uint64_t>(nodes);
      qos.ladder.push_back(governor);
    }
    if (qos.ladder.empty()) return false;
    (*out)[tenant] = qos;
  }
  return !out->empty();
}

/// "--chaos write_fail=0.1,sync_fail=0.05,read_corrupt=0.1,seed=7,
/// match=ckpt,shed_every=3" → fault plan + shed cadence. Any subset of
/// keys; unknown keys are an error.
bool ParseChaosSpec(const std::string& text, FaultPlan* plan,
                    std::size_t* shed_every) {
  for (const std::string& field : Split(text, ',')) {
    if (field.empty()) continue;
    const auto eq = field.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "match") {
      plan->path_match = value;
      continue;
    }
    if (key == "seed" || key == "shed_every") {
      int v = 0;
      if (!ParseInt(value, &v) || v < 0) return false;
      if (key == "seed") {
        plan->seed = static_cast<std::uint64_t>(v);
      } else {
        *shed_every = static_cast<std::size_t>(v);
      }
      continue;
    }
    double rate = 0.0;
    if (!ParseDouble(value, &rate) || rate < 0.0 || rate > 1.0) {
      return false;
    }
    if (key == "write_fail") {
      plan->write_fail_rate = rate;
    } else if (key == "sync_fail") {
      plan->sync_fail_rate = rate;
    } else if (key == "read_corrupt") {
      plan->read_corrupt_rate = rate;
    } else {
      return false;
    }
  }
  return true;
}

JsonValue RecoveryJson(const RecoveryReport& report) {
  JsonValue out = OkLine("recover");
  out["sessions_resumed"] =
      static_cast<std::int64_t>(report.sessions_resumed);
  out["sessions_fresh"] = static_cast<std::int64_t>(report.sessions_fresh);
  out["sessions_failed"] =
      static_cast<std::int64_t>(report.sessions_failed);
  out["checkpoint_fallbacks"] =
      static_cast<std::int64_t>(report.checkpoint_fallbacks);
  out["fingerprint_mismatches"] =
      static_cast<std::int64_t>(report.fingerprint_mismatches);
  out["events_replayed"] =
      static_cast<std::int64_t>(report.events_replayed);
  out["torn_tail_records"] =
      static_cast<std::int64_t>(report.torn_tail_records);
  out["unknown_event_records"] =
      static_cast<std::int64_t>(report.unknown_event_records);
  JsonValue quarantined = JsonValue::Array();
  for (const std::string& id : report.quarantined) {
    quarantined.Append(JsonValue(id));
  }
  out["quarantined"] = std::move(quarantined);
  return out;
}

int ServeMain(int argc, char** argv) {
  SessionManager::Options options;
  std::string metrics_prom;
  std::string flight_out;
  std::string chaos_spec;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--threads") {
      int v = 0;
      if (ParseInt(next(), &v) && v >= 0) {
        options.threads = static_cast<std::size_t>(v);
      }
    } else if (arg == "--max-resident") {
      int v = 0;
      if (ParseInt(next(), &v) && v > 0) {
        options.max_resident_sessions = static_cast<std::size_t>(v);
      }
    } else if (arg == "--max-per-tenant") {
      int v = 0;
      if (ParseInt(next(), &v) && v > 0) {
        options.max_sessions_per_tenant = static_cast<std::size_t>(v);
      }
    } else if (arg == "--qos") {
      if (!ParseQosSpec(next(), &options.qos)) {
        std::fprintf(stderr, "bad --qos spec\n");
        return 2;
      }
    } else if (arg == "--metrics-prom") {
      metrics_prom = next();
    } else if (arg == "--flight-out") {
      flight_out = next();
    } else if (arg == "--state-dir") {
      options.state_dir = next();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--max-queue") {
      int v = 0;
      if (ParseInt(next(), &v) && v >= 0) {
        options.max_queued_requests = static_cast<std::size_t>(v);
      }
    } else if (arg == "--retry-after-ms") {
      int v = 0;
      if (ParseInt(next(), &v) && v >= 0) {
        options.retry_after_ms = v;
      }
    } else if (arg == "--chaos") {
      chaos_spec = next();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (recover && options.state_dir.empty()) {
    std::fprintf(stderr, "--recover requires --state-dir\n");
    return 2;
  }

  FaultPlan chaos_plan;
  std::unique_ptr<FaultInjectingFileIo> chaos_io;
  if (!chaos_spec.empty()) {
    std::size_t shed_every = 0;
    if (!ParseChaosSpec(chaos_spec, &chaos_plan, &shed_every)) {
      std::fprintf(stderr, "bad --chaos spec\n");
      return 2;
    }
    options.debug_shed_every = shed_every;
    chaos_io = std::make_unique<FaultInjectingFileIo>(chaos_plan);
    options.io = chaos_io.get();
  }

  const std::string default_checkpoint_dir =
      options.state_dir.empty() ? std::string()
                                : options.state_dir + "/checkpoints";

  SessionManager manager(options);
  if (recover) {
    const auto resolver =
        [&default_checkpoint_dir](
            const ManifestEvent& event) -> Result<SessionSpec> {
      BAYESCROWD_ASSIGN_OR_RETURN(const JsonValue doc,
                                  JsonValue::Parse(event.spec_blob));
      SessionSpec spec;
      BAYESCROWD_RETURN_NOT_OK(
          SpecFromJson(doc, default_checkpoint_dir, &spec));
      return spec;
    };
    Result<RecoveryReport> recovered = manager.Recover(resolver);
    if (!recovered.ok()) {
      std::cout << ErrorLine(recovered.status().ToString()).Dump() << "\n"
                << std::flush;
      return 1;
    }
    std::cout << RecoveryJson(recovered.value()).Dump() << "\n"
              << std::flush;
  }

  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    JsonValue response;
    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      response =
          ErrorLine(StrFormat("bad request line: %s",
                              parsed.status().ToString().c_str()));
    } else {
      response = HandleOne(&manager, parsed.value(),
                           default_checkpoint_dir);
      const JsonValue* op = parsed.value().Find("op");
      shutdown = op != nullptr && op->AsString() == "shutdown";
    }
    std::cout << response.Dump() << "\n" << std::flush;
    if (!metrics_prom.empty()) {
      const std::string text =
          obs::ToPrometheusText(manager.MetricsSnapshot());
      std::FILE* file = std::fopen(metrics_prom.c_str(), "w");
      if (file != nullptr) {
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
      }
    }
  }
  if (!flight_out.empty()) {
    const Status written = manager.flight()->WriteJsonl(flight_out);
    if (!written.ok()) {
      std::fprintf(stderr, "flight-out: %s\n", written.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace bayescrowd

int main(int argc, char** argv) {
  return bayescrowd::ServeMain(argc, argv);
}
