// bayescrowd_serve: BayesCrowd as a resident multi-session service.
//
// Speaks a line-delimited JSON protocol on stdin/stdout: one request
// object per line in, exactly one response object per line out (always
// `{"ok":true,...}` or `{"ok":false,"error":"..."}`). A malformed line
// yields a one-line diagnostic and the connection survives — the
// server never exits on bad input, only on `shutdown` or EOF.
//
//   {"op":"create","id":"s1","tenant":"acme",
//    "dataset":{"kind":"indep","n":40,"d":3,"levels":4,"seed":7,
//               "missing_rate":0.2,"missing_seed":5},
//    "budget":12,"latency":3}
//   {"op":"advance","id":"s1","rounds":2}
//   {"op":"checkpoint","id":"s1"}   (needs "checkpoint_dir" at create)
//   {"op":"info","id":"s1"}    {"op":"list"}    {"op":"metrics"}
//   {"op":"finish","id":"s1"}  {"op":"evict","id":"s1"}
//   {"op":"shutdown"}
//
// Flags:
//   --threads N          lanes of the shared worker pool (0 = auto)
//   --max-resident N     global residency cap (default 8)
//   --max-per-tenant N   per-tenant residency cap (default 4)
//   --qos SPEC           per-tenant QoS: "tenant=after:every:n1,n2;..."
//                        — after `after` rounds of a session, and every
//                        `every` further rounds, tighten the solver
//                        governor to max_nodes n1, then n2, ...
//   --metrics-prom PATH  rewrite a Prometheus scrape file (serve.*
//                        series, tenant=/session= labeled) per request
//   --flight-out PATH    write the serve flight ring as JSONL on exit

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/missing.h"
#include "obs/export.h"
#include "obs/json.h"
#include "serve/manager.h"

namespace bayescrowd {
namespace {

using obs::JsonValue;
using serve::AdvanceOutcome;
using serve::SessionInfo;
using serve::SessionManager;
using serve::SessionSpec;
using serve::TenantQos;

JsonValue ErrorLine(const std::string& message) {
  JsonValue out = JsonValue::Object();
  out["ok"] = false;
  out["error"] = message;
  return out;
}

JsonValue OkLine(const std::string& op) {
  JsonValue out = JsonValue::Object();
  out["ok"] = true;
  out["op"] = op;
  return out;
}

std::int64_t FindInt(const JsonValue& doc, const char* key,
                     std::int64_t fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsInt();
}

double FindDouble(const JsonValue& doc, const char* key, double fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsDouble();
}

std::string FindString(const JsonValue& doc, const char* key,
                       const std::string& fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsString();
}

bool FindBool(const JsonValue& doc, const char* key, bool fallback) {
  const JsonValue* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsBool();
}

/// Builds (truth, incomplete, canonical descriptor) from a "dataset"
/// object. The descriptor doubles as the default shared-cache key, so
/// two sessions over the same generated data share warm starts.
Status BuildDataset(const JsonValue& spec, Table* truth, Table* incomplete,
                    std::string* descriptor) {
  const std::string kind = FindString(spec, "kind", "indep");
  const auto n = static_cast<std::size_t>(FindInt(spec, "n", 40));
  const auto d = static_cast<std::size_t>(FindInt(spec, "d", 3));
  const auto levels = static_cast<Level>(FindInt(spec, "levels", 4));
  const auto seed = static_cast<std::uint64_t>(FindInt(spec, "seed", 7));
  const double rate = FindDouble(spec, "missing_rate", 0.2);
  const auto miss_seed =
      static_cast<std::uint64_t>(FindInt(spec, "missing_seed", 5));
  if (kind == "indep") {
    *truth = MakeIndependent(n, d, levels, seed);
  } else if (kind == "corr") {
    *truth = MakeCorrelated(n, d, levels, seed);
  } else if (kind == "anti") {
    *truth = MakeAnticorrelated(n, d, levels, seed);
  } else if (kind == "nba") {
    *truth = MakeNbaLike(n, seed);
  } else if (kind == "adult") {
    *truth = MakeAdultLike(n, seed);
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown dataset kind '%s'", kind.c_str()));
  }
  Rng rng(miss_seed);
  *incomplete = InjectMissingUniform(*truth, rate, rng);
  *descriptor = StrFormat("%s:n=%zu:d=%zu:levels=%d:seed=%llu:rate=%.6f:"
                          "mseed=%llu",
                          kind.c_str(), n, d, static_cast<int>(levels),
                          static_cast<unsigned long long>(seed), rate,
                          static_cast<unsigned long long>(miss_seed));
  return Status::OK();
}

JsonValue InfoJson(const SessionInfo& info) {
  JsonValue out = JsonValue::Object();
  out["id"] = info.id;
  out["tenant"] = info.tenant;
  out["rounds"] = static_cast<std::int64_t>(info.rounds);
  out["budget_left"] = info.budget_left;
  out["qos_level"] = static_cast<std::int64_t>(info.qos_level);
  out["done"] = info.done;
  out["finished"] = info.finished;
  out["resumed"] = info.resumed;
  return out;
}

JsonValue HandleCreate(SessionManager* manager, const JsonValue& doc) {
  SessionSpec spec;
  spec.id = FindString(doc, "id", "");
  spec.tenant = FindString(doc, "tenant", "");
  const JsonValue* dataset = doc.Find("dataset");
  const JsonValue empty = JsonValue::Object();
  std::string descriptor;
  const Status built = BuildDataset(dataset != nullptr ? *dataset : empty,
                                    &spec.ground_truth, &spec.incomplete,
                                    &descriptor);
  if (!built.ok()) return ErrorLine(built.ToString());
  spec.cache_key = FindString(doc, "cache_key", descriptor);

  spec.options.ctable.alpha =
      FindDouble(doc, "alpha", spec.options.ctable.alpha);
  spec.options.budget =
      static_cast<std::size_t>(FindInt(doc, "budget", 12));
  spec.options.latency =
      static_cast<std::size_t>(FindInt(doc, "latency", 3));
  spec.options.strategy.m =
      static_cast<std::size_t>(FindInt(doc, "m", 3));
  spec.options.checkpoint_every =
      static_cast<std::size_t>(FindInt(doc, "checkpoint_every", 0));
  const auto max_nodes =
      static_cast<std::uint64_t>(FindInt(doc, "governor_max_nodes", 0));
  if (max_nodes > 0) spec.options.probability.governor.max_nodes = max_nodes;

  spec.platform.worker_accuracy = FindDouble(doc, "accuracy", 1.0);
  spec.platform.seed =
      static_cast<std::uint64_t>(FindInt(doc, "platform_seed", 99));
  spec.platform.workers_per_task =
      static_cast<int>(FindInt(doc, "workers_per_task", 3));

  spec.warm_start = FindBool(doc, "warm_start", false);
  spec.checkpoint_dir = FindString(doc, "checkpoint_dir", "");
  spec.resume = FindBool(doc, "resume", false);

  const std::string id = spec.id;
  const Status created = manager->Create(std::move(spec));
  if (!created.ok()) return ErrorLine(created.ToString());
  Result<SessionInfo> info = manager->Info(id);
  if (!info.ok()) return ErrorLine(info.status().ToString());
  JsonValue out = OkLine("create");
  out["session"] = InfoJson(info.value());
  return out;
}

JsonValue HandleAdvance(SessionManager* manager, const JsonValue& doc) {
  const std::string id = FindString(doc, "id", "");
  const auto rounds = static_cast<std::size_t>(FindInt(doc, "rounds", 1));
  Result<AdvanceOutcome> advanced = manager->Advance(id, rounds);
  if (!advanced.ok()) return ErrorLine(advanced.status().ToString());
  JsonValue out = OkLine("advance");
  out["id"] = id;
  out["rounds_run"] =
      static_cast<std::int64_t>(advanced.value().rounds_run);
  out["qos_level"] =
      static_cast<std::int64_t>(advanced.value().qos_level);
  out["done"] = advanced.value().done;
  return out;
}

JsonValue HandleFinish(SessionManager* manager, const JsonValue& doc) {
  const std::string id = FindString(doc, "id", "");
  Result<BayesCrowdResult> finished = manager->Finish(id);
  if (!finished.ok()) return ErrorLine(finished.status().ToString());
  const BayesCrowdResult& result = finished.value();
  JsonValue out = OkLine("finish");
  out["id"] = id;
  JsonValue objects = JsonValue::Array();
  for (const std::size_t object : result.result_objects) {
    objects.Append(JsonValue(static_cast<std::int64_t>(object)));
  }
  out["result_objects"] = std::move(objects);
  out["rounds"] = static_cast<std::int64_t>(result.rounds);
  out["tasks_posted"] = static_cast<std::int64_t>(result.tasks_posted);
  out["cost_spent"] = result.cost_spent;
  out["stopped_confident"] = result.stopped_confident;
  out["degraded_objects"] =
      static_cast<std::int64_t>(result.degraded_objects.size());
  out["exact"] = result.degraded_objects.empty();
  return out;
}

JsonValue HandleOne(SessionManager* manager, const JsonValue& doc) {
  const std::string op = FindString(doc, "op", "");
  if (op == "create") return HandleCreate(manager, doc);
  if (op == "advance") return HandleAdvance(manager, doc);
  if (op == "finish") return HandleFinish(manager, doc);
  if (op == "checkpoint") {
    const std::string id = FindString(doc, "id", "");
    const Status st = manager->Checkpoint(id);
    if (!st.ok()) return ErrorLine(st.ToString());
    JsonValue out = OkLine("checkpoint");
    out["id"] = id;
    return out;
  }
  if (op == "evict") {
    const std::string id = FindString(doc, "id", "");
    const Status st = manager->Evict(id);
    if (!st.ok()) return ErrorLine(st.ToString());
    JsonValue out = OkLine("evict");
    out["id"] = id;
    return out;
  }
  if (op == "info") {
    Result<SessionInfo> info = manager->Info(FindString(doc, "id", ""));
    if (!info.ok()) return ErrorLine(info.status().ToString());
    JsonValue out = OkLine("info");
    out["session"] = InfoJson(info.value());
    return out;
  }
  if (op == "list") {
    JsonValue out = OkLine("list");
    JsonValue sessions = JsonValue::Array();
    for (const SessionInfo& info : manager->List()) {
      sessions.Append(InfoJson(info));
    }
    out["sessions"] = std::move(sessions);
    return out;
  }
  if (op == "metrics") {
    JsonValue out = OkLine("metrics");
    out["metrics"] = manager->MetricsSnapshot().ToJson();
    return out;
  }
  if (op == "shutdown") return OkLine("shutdown");
  return ErrorLine(StrFormat("unknown op '%s'", op.c_str()));
}

/// "--qos tenantA=4:2:2000,500;tenantB=..." → per-tenant policies.
bool ParseQosSpec(const std::string& text,
                  std::map<std::string, TenantQos>* out) {
  for (const std::string& policy : Split(text, ';')) {
    if (policy.empty()) continue;
    const auto eq = policy.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string tenant = policy.substr(0, eq);
    const std::vector<std::string> parts =
        Split(policy.substr(eq + 1), ':');
    if (parts.size() != 3) return false;
    TenantQos qos;
    int after = 0;
    int every = 0;
    if (!ParseInt(parts[0], &after) || !ParseInt(parts[1], &every) ||
        after < 0 || every < 0) {
      return false;
    }
    qos.degrade_after_rounds = static_cast<std::size_t>(after);
    qos.degrade_every_rounds = static_cast<std::size_t>(every);
    for (const std::string& nodes_text : Split(parts[2], ',')) {
      int nodes = 0;
      if (!ParseInt(nodes_text, &nodes) || nodes <= 0) return false;
      GovernorOptions governor;
      governor.max_nodes = static_cast<std::uint64_t>(nodes);
      qos.ladder.push_back(governor);
    }
    if (qos.ladder.empty()) return false;
    (*out)[tenant] = qos;
  }
  return !out->empty();
}

int ServeMain(int argc, char** argv) {
  SessionManager::Options options;
  std::string metrics_prom;
  std::string flight_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--threads") {
      int v = 0;
      if (ParseInt(next(), &v) && v >= 0) {
        options.threads = static_cast<std::size_t>(v);
      }
    } else if (arg == "--max-resident") {
      int v = 0;
      if (ParseInt(next(), &v) && v > 0) {
        options.max_resident_sessions = static_cast<std::size_t>(v);
      }
    } else if (arg == "--max-per-tenant") {
      int v = 0;
      if (ParseInt(next(), &v) && v > 0) {
        options.max_sessions_per_tenant = static_cast<std::size_t>(v);
      }
    } else if (arg == "--qos") {
      if (!ParseQosSpec(next(), &options.qos)) {
        std::fprintf(stderr, "bad --qos spec\n");
        return 2;
      }
    } else if (arg == "--metrics-prom") {
      metrics_prom = next();
    } else if (arg == "--flight-out") {
      flight_out = next();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  SessionManager manager(options);
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    JsonValue response;
    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      response =
          ErrorLine(StrFormat("bad request line: %s",
                              parsed.status().ToString().c_str()));
    } else {
      response = HandleOne(&manager, parsed.value());
      const JsonValue* op = parsed.value().Find("op");
      shutdown = op != nullptr && op->AsString() == "shutdown";
    }
    std::cout << response.Dump() << "\n" << std::flush;
    if (!metrics_prom.empty()) {
      const std::string text =
          obs::ToPrometheusText(manager.MetricsSnapshot());
      std::FILE* file = std::fopen(metrics_prom.c_str(), "w");
      if (file != nullptr) {
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
      }
    }
  }
  if (!flight_out.empty()) {
    const Status written = manager.flight()->WriteJsonl(flight_out);
    if (!written.ok()) {
      std::fprintf(stderr, "flight-out: %s\n", written.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace bayescrowd

int main(int argc, char** argv) {
  return bayescrowd::ServeMain(argc, argv);
}
