#!/usr/bin/env bash
# CLI contract test, registered with ctest as `cli_test`.
#
# Pins the unified data-seed default: `generate` and `inject` both
# default to --seed 42 (historically generate used 42 but inject used
# 7), and the seed flag actually steers the output. Also checks the
# fault-flag validation the run command grew with the retry layer, the
# solver-governor flag validation, the knowledge-compilation flag
# validation (--compile / --compile-node-budget), and the marketplace
# flag validation (--marketplace / --spam-rate / --adaptive-votes /
# --no-defense).
#
# Also pins the bayescrowd_serve JSONL protocol against committed golden
# fixtures (tests/testdata/serve_golden_*.jsonl) and its bad-input
# behavior: a malformed request line gets a one-line diagnostic and the
# connection survives; bad flags exit 2 without starting the loop. The
# crash-only serving wire formats ride along: the deadline_ms echo on
# advance, the overloaded/retry_after_ms shed response, --recover's
# leading op:recover report line after a kill, and the --recover /
# --chaos flag validation.
#
# Usage: cli_test.sh <path-to-bayescrowd_cli> <path-to-bayescrowd_serve>

set -euo pipefail

CLI="${1:?usage: cli_test.sh <cli> <serve>}"
SERVE="${2:?usage: cli_test.sh <cli> <serve>}"
TESTDATA="$(cd "$(dirname "$0")/../tests/testdata" && pwd)"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# ------------------------------------------------------------------ #
# generate: implicit seed == --seed 42, and the seed matters.
# ------------------------------------------------------------------ #
"${CLI}" generate --dataset indep --n 40 --d 3 --out "${WORK}/gen_default.csv" >/dev/null
"${CLI}" generate --dataset indep --n 40 --d 3 --seed 42 --out "${WORK}/gen_42.csv" >/dev/null
"${CLI}" generate --dataset indep --n 40 --d 3 --seed 7 --out "${WORK}/gen_7.csv" >/dev/null

cmp -s "${WORK}/gen_default.csv" "${WORK}/gen_42.csv" \
  || fail "generate without --seed must equal generate --seed 42"
cmp -s "${WORK}/gen_default.csv" "${WORK}/gen_7.csv" \
  && fail "generate --seed 7 must differ from the default seed"

# ------------------------------------------------------------------ #
# inject: same unified default (the historical 7 is gone).
# ------------------------------------------------------------------ #
"${CLI}" inject --in "${WORK}/gen_42.csv" --rate 0.2 --out "${WORK}/inj_default.csv" >/dev/null
"${CLI}" inject --in "${WORK}/gen_42.csv" --rate 0.2 --seed 42 --out "${WORK}/inj_42.csv" >/dev/null
"${CLI}" inject --in "${WORK}/gen_42.csv" --rate 0.2 --seed 7 --out "${WORK}/inj_7.csv" >/dev/null

cmp -s "${WORK}/inj_default.csv" "${WORK}/inj_42.csv" \
  || fail "inject without --seed must equal inject --seed 42"
cmp -s "${WORK}/inj_default.csv" "${WORK}/inj_7.csv" \
  && fail "inject --seed 7 must differ from the default seed"

# ------------------------------------------------------------------ #
# run: fault flags validate, and a faulted run is seed-reproducible.
# ------------------------------------------------------------------ #
if "${CLI}" run --data "${WORK}/inj_42.csv" --truth "${WORK}/gen_42.csv" \
    --fault-rate 1.5 >/dev/null 2>&1; then
  fail "run must reject --fault-rate outside [0, 1]"
fi
if "${CLI}" run --data "${WORK}/inj_42.csv" --truth "${WORK}/gen_42.csv" \
    --max-retries -1 >/dev/null 2>&1; then
  fail "run must reject a negative --max-retries"
fi

run_faulted() {
  "${CLI}" run --data "${WORK}/inj_42.csv" --truth "${WORK}/gen_42.csv" \
    --budget 12 --latency 3 \
    --fault-rate 0.3 --fault-seed 11 --max-retries 3 --round-deadline 30 \
    --telemetry-out "$1" >/dev/null
}
run_faulted "${WORK}/telemetry_a.json"
run_faulted "${WORK}/telemetry_b.json"

# The deterministic recovery block must be present and identical across
# the two runs (wall-clock fields differ; the recovery totals may not).
extract_recovery() {
  python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
print(json.dumps(doc["payload"]["recovery"], sort_keys=True))
EOF
}
rec_a="$(extract_recovery "${WORK}/telemetry_a.json")"
rec_b="$(extract_recovery "${WORK}/telemetry_b.json")"
[ "${rec_a}" = "${rec_b}" ] \
  || fail "faulted runs with the same --fault-seed diverged: ${rec_a} vs ${rec_b}"
echo "${rec_a}" | grep -q '"retries"' \
  || fail "telemetry recovery block is missing retry counters"

# ------------------------------------------------------------------ #
# run: solver-governor flags validate.
# ------------------------------------------------------------------ #
run_base() {
  "${CLI}" run --data "${WORK}/inj_42.csv" --truth "${WORK}/gen_42.csv" "$@"
}
if run_base --solver-node-budget 0 >/dev/null 2>&1; then
  fail "run must reject --solver-node-budget 0"
fi
if run_base --solver-node-budget -5 >/dev/null 2>&1; then
  fail "run must reject a negative --solver-node-budget"
fi
if run_base --solver-component-budget 0 >/dev/null 2>&1; then
  fail "run must reject --solver-component-budget 0"
fi
if run_base --solver-deadline-ms 0 >/dev/null 2>&1; then
  fail "run must reject --solver-deadline-ms 0"
fi
if run_base --solver-ladder bogus >/dev/null 2>&1; then
  fail "run must reject an unknown --solver-ladder name"
fi
if run_base --breaker-threshold -1 >/dev/null 2>&1; then
  fail "run must reject a negative --breaker-threshold"
fi
if run_base --no-cache --resume --checkpoint-dir "${WORK}/ck" >/dev/null 2>&1; then
  fail "run must reject --no-cache combined with --resume"
fi
# Each rejection must be a one-line diagnostic (plus nothing else).
# (The expected nonzero exit would trip set -e/pipefail unguarded.)
lines="$( (run_base --solver-ladder bogus 2>&1 >/dev/null || true) | wc -l)"
[ "${lines}" -eq 1 ] \
  || fail "--solver-ladder rejection must print exactly one line, got ${lines}"

# ------------------------------------------------------------------ #
# run: knowledge-compilation flags validate.
# ------------------------------------------------------------------ #
if run_base --compile sometimes >/dev/null 2>&1; then
  fail "run must reject an unknown --compile mode"
fi
if run_base --compile-node-budget 0 >/dev/null 2>&1; then
  fail "run must reject --compile-node-budget 0"
fi
if run_base --compile-node-budget -64 >/dev/null 2>&1; then
  fail "run must reject a negative --compile-node-budget"
fi
if run_base --compile on --solver-node-budget 4 --solver-ladder strict \
    >/dev/null 2>&1; then
  fail "run must reject --compile on combined with --solver-ladder strict"
fi
if run_base --compile on --no-cache >/dev/null 2>&1; then
  fail "run must reject --compile on combined with --no-cache"
fi
# `auto` tolerates the same configurations `on` rejects: it just skips
# compilation, so these must run to completion.
run_base --compile auto --solver-node-budget 4 --solver-ladder strict \
  --budget 4 --latency 2 >/dev/null \
  || fail "--compile auto must tolerate a strict-ladder run"
lines="$( (run_base --compile sometimes 2>&1 >/dev/null || true) | wc -l)"
[ "${lines}" -eq 1 ] \
  || fail "--compile rejection must print exactly one line, got ${lines}"
lines="$( (run_base --compile on --no-cache 2>&1 >/dev/null || true) | wc -l)"
[ "${lines}" -eq 1 ] \
  || fail "--compile on/--no-cache rejection must print one line, got ${lines}"

# ------------------------------------------------------------------ #
# run: marketplace flags validate.
# ------------------------------------------------------------------ #
if run_base --marketplace 2 >/dev/null 2>&1; then
  fail "run must reject a --marketplace pool smaller than 3"
fi
if run_base --marketplace 20 --spam-rate 1.5 >/dev/null 2>&1; then
  fail "run must reject --spam-rate outside [0, 1]"
fi
if run_base --marketplace 20 --adaptive-votes 2 >/dev/null 2>&1; then
  fail "run must reject --adaptive-votes below the base fan-out"
fi
# The marketplace modifiers are meaningless without a marketplace.
for orphan in "--spam-rate 0.3" "--adaptive-votes 5" "--no-defense"; do
  # shellcheck disable=SC2086
  if run_base ${orphan} >/dev/null 2>&1; then
    fail "run must reject ${orphan% *} without --marketplace"
  fi
done
if run_base --marketplace 20 --interactive >/dev/null 2>&1; then
  fail "run must reject --marketplace combined with --interactive"
fi
lines="$( (run_base --marketplace 2 2>&1 >/dev/null || true) | wc -l)"
[ "${lines}" -eq 1 ] \
  || fail "--marketplace rejection must print exactly one line, got ${lines}"

# ------------------------------------------------------------------ #
# run: a governed run is deterministic (normalized telemetry diffs
# clean across repeats), and the solver block reports its tiers.
# ------------------------------------------------------------------ #
run_governed() {
  run_base --alpha -1 --budget 12 --latency 3 \
    --solver-node-budget 4 --solver-ladder full --breaker-threshold 2 \
    --telemetry-out "$1" >/dev/null
}
run_governed "${WORK}/gov_a.json"
run_governed "${WORK}/gov_b.json"
"${CLI}" normalize --in "${WORK}/gov_a.json" --out "${WORK}/gov_a_norm.json"
"${CLI}" normalize --in "${WORK}/gov_b.json" --out "${WORK}/gov_b_norm.json"
cmp -s "${WORK}/gov_a_norm.json" "${WORK}/gov_b_norm.json" \
  || fail "governed runs with the same budgets diverged after normalization"
python3 - "${WORK}/gov_a_norm.json" <<'EOF' || fail "telemetry solver block malformed"
import json, sys
solver = json.load(open(sys.argv[1]))["payload"]["solver"]
assert "budget_exhausted" in solver and "tier_exact" in solver
assert solver["deadline_hits"] == 0, "normalize must zero deadline_hits"
tiers = (solver["tier_exact"] + solver["tier_partial"]
         + solver["tier_sampled"] + solver["tier_unknown"])
assert tiers > 0, "governed run recorded no tiered evaluations"
EOF

# ------------------------------------------------------------------ #
# run: attribution/export flags validate at flag time with one-line
# diagnostics and exit code 2 — never a crash mid-run.
# ------------------------------------------------------------------ #
rc=0; run_base --session 'bad session!' >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] \
  || fail "--session with illegal characters must exit 2, got ${rc}"
rc=0; run_base --session '' >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "an empty --session must exit 2, got ${rc}"
lines="$( (run_base --session 'bad session!' 2>&1 >/dev/null || true) | wc -l)"
[ "${lines}" -eq 1 ] \
  || fail "--session rejection must print exactly one line, got ${lines}"
for flag in flight-out metrics-prom metrics-stream; do
  rc=0
  run_base --budget 4 --latency 2 \
    "--${flag}" /nonexistent-dir/out >/dev/null 2>&1 || rc=$?
  [ "${rc}" -eq 2 ] \
    || fail "--${flag} to an unwritable path must exit 2, got ${rc}"
  lines="$( (run_base --budget 4 --latency 2 \
    "--${flag}" /nonexistent-dir/out 2>&1 >/dev/null || true) | wc -l)"
  [ "${lines}" -eq 1 ] \
    || fail "--${flag} rejection must print exactly one line, got ${lines}"
done

# ------------------------------------------------------------------ #
# inspect: exit 0 when runs agree, 1 on a flagged regression, 2 on
# usage errors — the contract CI gating scripts rely on.
# ------------------------------------------------------------------ #
run_base --alpha -1 --budget 12 --latency 3 --session attr \
  --telemetry-out "${WORK}/attr_a.json" >/dev/null
run_base --alpha -1 --budget 12 --latency 3 --session attr \
  --telemetry-out "${WORK}/attr_b.json" >/dev/null
run_base --alpha -1 --budget 16 --latency 4 --session attr \
  --telemetry-out "${WORK}/attr_drift.json" >/dev/null
"${CLI}" inspect --run "${WORK}/attr_a.json" >/dev/null \
  || fail "inspect --run on healthy telemetry must exit 0"
"${CLI}" inspect --run "${WORK}/attr_a.json" --diff "${WORK}/attr_b.json" \
  >/dev/null || fail "inspect --diff on identical-seed runs must exit 0"
rc=0
"${CLI}" inspect --run "${WORK}/attr_a.json" --diff "${WORK}/attr_drift.json" \
  >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 1 ] \
  || fail "inspect --diff across drifted runs must exit 1, got ${rc}"
rc=0; "${CLI}" inspect >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "inspect without --run must exit 2, got ${rc}"
rc=0; "${CLI}" inspect --run /nonexistent-dir/x.json >/dev/null 2>&1 || rc=$?
[ "${rc}" -ne 0 ] || fail "inspect on a missing telemetry file must fail"

# ------------------------------------------------------------------ #
# serve: the JSONL protocol byte-matches the committed goldens, at
# more than one worker-pool width (interleaving must be invisible).
# ------------------------------------------------------------------ #
for threads in 1 2; do
  "${SERVE}" --threads "${threads}" \
    < "${TESTDATA}/serve_golden_requests.jsonl" \
    > "${WORK}/serve_t${threads}.jsonl"
  cmp -s "${WORK}/serve_t${threads}.jsonl" \
    "${TESTDATA}/serve_golden_responses.jsonl" \
    || fail "serve --threads ${threads} drifted from the golden responses"
done

# serve: a malformed line yields one diagnostic and the connection
# survives — the list op after it must still get a real response.
printf 'this is not json\n{"op":"list"}\n{"op":"shutdown"}\n' \
  | "${SERVE}" > "${WORK}/serve_bad.jsonl"
[ "$(wc -l < "${WORK}/serve_bad.jsonl")" -eq 3 ] \
  || fail "serve must answer every line, even malformed ones"
head -n 1 "${WORK}/serve_bad.jsonl" | grep -q '"ok":false' \
  || fail "malformed request must produce an ok:false line"
head -n 1 "${WORK}/serve_bad.jsonl" | grep -q 'bad request line' \
  || fail "malformed request diagnostic must say 'bad request line'"
sed -n 2p "${WORK}/serve_bad.jsonl" | grep -q '"ok":true' \
  || fail "serve must keep serving after a malformed line"

# serve: unknown ops get a structured error, not a dropped connection.
# (Capture to a file rather than piping through head: closing the pipe
# early races the server's next write into a SIGPIPE under pipefail.)
printf '{"op":"frobnicate"}\n{"op":"shutdown"}\n' \
  | "${SERVE}" > "${WORK}/serve_unknown.jsonl"
head -n 1 "${WORK}/serve_unknown.jsonl" | grep -q "unknown op 'frobnicate'" \
  || fail "unknown op must produce a structured error line"

# serve: bad flags exit 2 before the request loop starts.
rc=0; "${SERVE}" --no-such-flag </dev/null >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "serve must exit 2 on an unknown flag, got ${rc}"
rc=0; "${SERVE}" --qos "heavy=bogus" </dev/null >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "serve must exit 2 on a bad --qos spec, got ${rc}"

# serve: --recover without a journal to recover from is a usage error.
rc=0; "${SERVE}" --recover </dev/null >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "serve --recover without --state-dir must exit 2"
rc=0; "${SERVE}" --chaos "write_fail=bogus" </dev/null >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "serve must exit 2 on a bad --chaos spec, got ${rc}"

# serve: an advance carrying a deadline echoes it in the response —
# clients correlate degraded answers with the deadline they set.
printf '%s\n' \
  '{"op":"create","id":"d1","tenant":"t","dataset":{"kind":"nba","n":60,"seed":9,"missing_rate":0.2,"missing_seed":5},"alpha":0.01,"budget":8,"latency":4}' \
  '{"op":"advance","id":"d1","rounds":1,"deadline_ms":5000}' \
  '{"op":"shutdown"}' \
  | "${SERVE}" > "${WORK}/serve_deadline.jsonl"
sed -n 2p "${WORK}/serve_deadline.jsonl" | grep -q '"deadline_ms":5000' \
  || fail "advance with deadline_ms must echo the deadline"
sed -n 2p "${WORK}/serve_deadline.jsonl" | grep -q '"ok":true' \
  || fail "deadlined advance must still succeed"

# serve: the deterministic shed trip (--chaos shed_every=N) answers
# Unavailable with the machine-readable retry hint, and the very next
# stepping request goes through — shedding leaves no residue.
printf '%s\n' \
  '{"op":"create","id":"s1","tenant":"t","dataset":{"kind":"nba","n":60,"seed":9,"missing_rate":0.2,"missing_seed":5},"alpha":0.01,"budget":8,"latency":4}' \
  '{"op":"advance","id":"s1","rounds":1}' \
  '{"op":"advance","id":"s1","rounds":1}' \
  '{"op":"advance","id":"s1","rounds":1}' \
  '{"op":"shutdown"}' \
  | "${SERVE}" --chaos "shed_every=2" --retry-after-ms 75 \
  > "${WORK}/serve_shed.jsonl"
sed -n 3p "${WORK}/serve_shed.jsonl" \
  | grep -q '"ok":false.*"overloaded":true.*"retry_after_ms":75' \
  || fail "the tripped request must answer overloaded with the retry hint"
sed -n 4p "${WORK}/serve_shed.jsonl" | grep -q '"ok":true' \
  || fail "the stepping request after a shed must succeed"

# serve: kill a journaled server between requests, then --recover must
# answer with the op:recover report line and resume the session — the
# post-recovery finish must not error.
STATE="${WORK}/serve-state"
mkdir -p "${STATE}"
printf '%s\n' \
  '{"op":"create","id":"k1","tenant":"t","dataset":{"kind":"nba","n":120,"seed":9,"missing_rate":0.15,"missing_seed":5},"alpha":0.01,"budget":24,"latency":4,"m":5,"checkpoint_every":1}' \
  '{"op":"advance","id":"k1","rounds":2}' \
  | "${SERVE}" --state-dir "${STATE}" > "${WORK}/serve_precrash.jsonl"
# EOF without shutdown/finish plays the crash: the manifest and the
# round-1 checkpoint are on disk, the session was never retired.
printf '%s\n' \
  '{"op":"advance","id":"k1","rounds":100}' \
  '{"op":"finish","id":"k1"}' \
  '{"op":"shutdown"}' \
  | "${SERVE}" --state-dir "${STATE}" --recover \
  > "${WORK}/serve_recover.jsonl"
head -n 1 "${WORK}/serve_recover.jsonl" \
  | grep -q '"ok":true.*"op":"recover".*"sessions_resumed":1' \
  || fail "--recover must lead with the recovery report line"
! grep -q '"ok":false' "${WORK}/serve_recover.jsonl" \
  || fail "post-recovery requests must all succeed"

echo "cli_test: all checks passed"
