#!/usr/bin/env bash
# Tier-1 verification: the regular build + full ctest suite, then the
# parallel-evaluation determinism test rebuilt and re-run under
# ThreadSanitizer (BC_SANITIZE=thread) to catch data races the plain
# build cannot see.
#
# Usage: tools/tier1.sh [jobs]   (run from the repo root)

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier-1: regular build + tests =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== tier-1: determinism test under ThreadSanitizer =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DBC_SANITIZE=thread \
  -DBAYESCROWD_BUILD_BENCHMARKS=OFF \
  -DBAYESCROWD_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -R parallel_test

echo "tier-1 OK"
