#!/usr/bin/env bash
# Tier-1 verification: the regular build + full ctest suite, an
# end-to-end observability smoke run of the CLI (metrics / trace /
# telemetry artifacts must all be valid JSON), then the concurrency
# tests rebuilt and re-run under ThreadSanitizer (BC_SANITIZE=thread)
# to catch data races the plain build cannot see.
#
# Usage: tools/tier1.sh [jobs]   (run from the repo root)

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier-1: regular build + tests =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== tier-1: observability smoke run =="
CLI="$ROOT/build/tools/bayescrowd_cli"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
"$CLI" generate --dataset corr --n 50 --d 5 --levels 8 --seed 3 \
  --out "$SMOKE/complete.csv"
"$CLI" inject --in "$SMOKE/complete.csv" --rate 0.15 --seed 3 \
  --out "$SMOKE/holes.csv"
# --alpha -1 disables modeling-phase pruning so undecided objects survive
# into the crowdsourcing rounds (the default alpha can settle everything
# during modeling, leaving the round spans / ADPLL counters unexercised).
"$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
  --strategy hhs --budget 20 --latency 4 --threads 4 --alpha -1 \
  --log-level warning \
  --metrics-out "$SMOKE/metrics.json" \
  --trace-out "$SMOKE/trace.json" \
  --telemetry-out "$SMOKE/telemetry.json" > /dev/null
for doc in metrics trace telemetry; do
  "$CLI" jsoncheck --in "$SMOKE/$doc.json"
done
# The trace must actually contain the round-loop spans.
grep -q '"round.select"' "$SMOKE/trace.json"
grep -q '"adpll.solve"' "$SMOKE/trace.json"
grep -q 'adpll.calls' "$SMOKE/metrics.json"

echo "== tier-1: faulted smoke run =="
# The same query through the deterministic fault injector: the run must
# terminate despite timeouts/abstains/partial batches and surface the
# recovery path in both artifacts.
"$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
  --strategy hhs --budget 20 --latency 4 --threads 4 --alpha -1 \
  --fault-rate 0.3 --fault-seed 11 --max-retries 3 --round-deadline 30 \
  --log-level warning \
  --metrics-out "$SMOKE/metrics_fault.json" \
  --telemetry-out "$SMOKE/telemetry_fault.json" > "$SMOKE/report_fault.txt"
"$CLI" jsoncheck --in "$SMOKE/metrics_fault.json"
"$CLI" jsoncheck --in "$SMOKE/telemetry_fault.json"
grep -q 'fault injection:' "$SMOKE/report_fault.txt"
grep -q 'fault.transient_failures' "$SMOKE/metrics_fault.json"
grep -q '"recovery"' "$SMOKE/telemetry_fault.json"
grep -q '"retries"' "$SMOKE/telemetry_fault.json"

echo "== tier-1: crash-safety smoke run (kill, corrupt, resume) =="
# Checkpointed run, then a deliberately corrupted newest snapshot: the
# resume must fall back one generation, replay the answer-log tail, and
# report itself in the telemetry ("resumed": true, recovery.* metrics).
"$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
  --strategy hhs --budget 20 --latency 4 --threads 4 --alpha -1 \
  --fault-rate 0.2 --answer-noise 0.1 --log-level warning \
  --checkpoint-dir "$SMOKE/ckpt" > /dev/null
ls "$SMOKE"/ckpt/ckpt-*.bin > /dev/null   # Snapshots exist.
test -s "$SMOKE/ckpt/answers.log"         # Durable answer log exists.
NEWEST="$(ls "$SMOKE"/ckpt/ckpt-*.bin | tail -1)"
truncate -s 20 "$NEWEST"                  # Corrupt the newest snapshot.
"$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
  --strategy hhs --budget 20 --latency 4 --threads 4 --alpha -1 \
  --fault-rate 0.2 --answer-noise 0.1 --log-level warning \
  --checkpoint-dir "$SMOKE/ckpt" --resume \
  --telemetry-out "$SMOKE/telemetry_resume.json" > "$SMOKE/report_resume.txt"
grep -q 'resuming from round' "$SMOKE/report_resume.txt"
grep -q '"resumed": true' "$SMOKE/telemetry_resume.json"
grep -q 'recovery.fallback' "$SMOKE/telemetry_resume.json"

echo "== tier-1: marketplace spam-storm smoke run (defend, kill, resume) =="
# An adversarial marketplace at 30% spam/collusion: the defended run
# must actually quarantine workers, spend adaptive extra votes, and
# still clear an F1 floor a flat 3-vote majority cannot reach at this
# spam rate (the frontier bench pins the full sweep; this smoke pins
# the defense engaging at all). Then the marketplace state must ride
# the checkpoint envelope: dropping the newest snapshot forces a
# mid-run resume that replays the answer-log tail, and the recovered
# reputations must reproduce the marketplace summary byte for byte.
"$CLI" generate --dataset anti --n 60 --d 4 --levels 6 --seed 5 \
  --out "$SMOKE/market_complete.csv"
"$CLI" inject --in "$SMOKE/market_complete.csv" --rate 0.3 --seed 5 \
  --out "$SMOKE/market_holes.csv"
run_market() {
  "$CLI" run --data "$SMOKE/market_holes.csv" \
    --truth "$SMOKE/market_complete.csv" \
    --alpha -1 --budget 300 --latency 3 --seed 11 --threads 4 \
    --marketplace 20 --spam-rate 0.3 --adaptive-votes 5 \
    --log-level warning \
    --checkpoint-dir "$SMOKE/market-ckpt" --checkpoint-every 2 "$@"
}
run_market > "$SMOKE/report_market.txt"
grep -Eq 'marketplace: .*quarantined=[1-9]' "$SMOKE/report_market.txt"
grep -q 'adaptive votes: ' "$SMOKE/report_market.txt"
python3 - "$SMOKE/report_market.txt" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
f1 = float(re.search(r"F1=([0-9.]+)", text).group(1))
assert f1 >= 0.9, f"defended spam-storm F1 collapsed: {f1}"
EOF
NEWEST="$(ls "$SMOKE"/market-ckpt/ckpt-*.bin | tail -1)"
rm "$NEWEST"                              # Force a mid-run resume.
run_market --resume > "$SMOKE/report_market_resume.txt"
grep -q 'resuming from round' "$SMOKE/report_market_resume.txt"
MKT1="$(grep '^marketplace:' "$SMOKE/report_market.txt")"
MKT2="$(grep '^marketplace:' "$SMOKE/report_market_resume.txt")"
[ "$MKT1" = "$MKT2" ]                     # Reputations survived the kill.

echo "== tier-1: hostile-instance governed smoke run =="
# A resource-governed query over a dataset engineered to defeat the
# solver's shortcuts: 16 levels and a 35% missing rate put enough
# objects past the star fast path's hub cap that a 4-node budget
# actually exercises the degradation ladder (thousands of exhaustions,
# degraded objects, breaker trips) instead of passing vacuously. UBS
# (not HHS) because it scores every eligible candidate in one batch,
# making the solver tier tallies — not just the answers — thread-count
# invariant; the 1-thread and 8-thread runs must then produce
# byte-identical telemetry once lane/thread configuration noise is
# stripped.
"$CLI" generate --dataset corr --n 40 --d 8 --levels 16 --seed 3 \
  --out "$SMOKE/hostile_complete.csv"
"$CLI" inject --in "$SMOKE/hostile_complete.csv" --rate 0.35 --seed 3 \
  --out "$SMOKE/hostile_holes.csv"
run_governed() {
  "$CLI" run --data "$SMOKE/hostile_holes.csv" \
    --truth "$SMOKE/hostile_complete.csv" \
    --strategy ubs --budget 20 --latency 4 --threads "$1" --alpha -1 \
    --solver-node-budget 4 --solver-ladder full --breaker-threshold 2 \
    --log-level warning \
    --telemetry-out "$2" > "$3"
}
run_governed 1 "$SMOKE/telemetry_gov1.json" "$SMOKE/report_gov1.txt"
run_governed 8 "$SMOKE/telemetry_gov8.json" "$SMOKE/report_gov8.txt"
grep -q 'solver:' "$SMOKE/report_gov1.txt"         # Ladder reported.
grep -q '"solver"' "$SMOKE/telemetry_gov1.json"
python3 - "$SMOKE/telemetry_gov1.json" <<'EOF'
import json, sys
solver = json.load(open(sys.argv[1]))["payload"]["solver"]
assert solver["budget_exhausted"] > 0, "hostile budget never fired"
EOF
"$CLI" normalize --in "$SMOKE/telemetry_gov1.json" --strip-lanes \
  --out "$SMOKE/telemetry_gov1_norm.json"
"$CLI" normalize --in "$SMOKE/telemetry_gov8.json" --strip-lanes \
  --out "$SMOKE/telemetry_gov8_norm.json"
cmp "$SMOKE/telemetry_gov1_norm.json" "$SMOKE/telemetry_gov8_norm.json"

echo "== tier-1: compiled-path smoke run =="
# The first smoke dataset again, with knowledge compilation forced on
# and the solver ungoverned so every first solve completes exactly (and
# so compiles). Compiled replay must be thread-count invariant down to
# the byte, and the telemetry must prove the circuits actually engaged
# (builds and replays > 0) rather than silently falling back to the
# search. (The hostile instance is the wrong vehicle here: exact solves
# on it take minutes; this stage pins the replay path, not endurance.)
run_compiled() {
  "$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
    --strategy ubs --budget 20 --latency 4 --threads "$1" --alpha -1 \
    --compile on \
    --log-level warning \
    --telemetry-out "$2" > /dev/null
}
run_compiled 1 "$SMOKE/telemetry_comp1.json"
run_compiled 8 "$SMOKE/telemetry_comp8.json"
python3 - "$SMOKE/telemetry_comp1.json" <<'EOF'
import json, sys
compile_stats = json.load(open(sys.argv[1]))["payload"]["compile"]
assert compile_stats["builds"] > 0, "no circuits were ever compiled"
assert compile_stats["reuses"] > 0, "compiled circuits were never replayed"
EOF
"$CLI" normalize --in "$SMOKE/telemetry_comp1.json" --strip-lanes \
  --out "$SMOKE/telemetry_comp1_norm.json"
"$CLI" normalize --in "$SMOKE/telemetry_comp8.json" --strip-lanes \
  --out "$SMOKE/telemetry_comp8_norm.json"
cmp "$SMOKE/telemetry_comp1_norm.json" "$SMOKE/telemetry_comp8_norm.json"

echo "== tier-1: cost attribution & inspection smoke =="
# Labeled-cost run with the flight recorder and both live exporters on.
# Two identical-seed runs must diff clean through `inspect --diff` (and
# so must the 1-vs-8-thread governed pair above); the inspection must
# attribute >=95% of phase wall-clock and 100% of cost units; a torn
# flight-recorder tail (crash mid-write) must degrade to a skipped-line
# count, never an error.
run_attr() {
  "$CLI" run --data "$SMOKE/holes.csv" --truth "$SMOKE/complete.csv" \
    --strategy hhs --budget 20 --latency 4 --threads 4 --alpha -1 \
    --session smoke --log-level warning \
    --flight-out "$2" \
    --metrics-prom "$SMOKE/scrape.prom" \
    --metrics-stream "$SMOKE/rounds.jsonl" \
    --telemetry-out "$1" > /dev/null
}
run_attr "$SMOKE/telemetry_attr_a.json" "$SMOKE/flight_a.jsonl"
run_attr "$SMOKE/telemetry_attr_b.json" "$SMOKE/flight_b.jsonl"
grep -q '^cost_' "$SMOKE/scrape.prom"           # Labeled series exported.
grep -q 'round_snapshot' "$SMOKE/rounds.jsonl"  # One envelope per round.
grep -q 'flight_header' "$SMOKE/flight_a.jsonl"
"$CLI" inspect --run "$SMOKE/telemetry_attr_a.json" \
  --flight "$SMOKE/flight_a.jsonl" > "$SMOKE/inspect_a.txt"
python3 - "$SMOKE/inspect_a.txt" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
wall = float(re.search(r"wall_coverage: ([0-9.]+)%", text).group(1))
units = float(re.search(r"unit_coverage: ([0-9.]+)%", text).group(1))
assert wall >= 95.0, f"wall-clock attribution too low: {wall}%"
assert units == 100.0, f"cost units lost their labels: {units}%"
EOF
"$CLI" inspect --run "$SMOKE/telemetry_attr_a.json" \
  --diff "$SMOKE/telemetry_attr_b.json" > "$SMOKE/inspect_diff.txt"
grep -q 'no regressions' "$SMOKE/inspect_diff.txt"
"$CLI" inspect --run "$SMOKE/telemetry_gov1.json" \
  --diff "$SMOKE/telemetry_gov8.json" > /dev/null
printf '{"seq": 999, "kind": "re' >> "$SMOKE/flight_a.jsonl"
"$CLI" inspect --run "$SMOKE/telemetry_attr_a.json" \
  --flight "$SMOKE/flight_a.jsonl" > "$SMOKE/inspect_torn.txt"
grep -q '1 corrupt line(s) skipped' "$SMOKE/inspect_torn.txt"

echo "== tier-1: multi-session serve smoke =="
# Three tenants resident in one server process, interleaved round by
# round on a shared pool. The heavy tenant runs under a QoS ladder
# (8 -> 1 solver nodes after round 1) with the certainty band disabled,
# so it must degrade — inexact answers, a stepped qos counter — while
# the light tenants finish exact. The scrape file must carry the
# tenant=/session= labels the fleet dashboards key on.
SERVE="$ROOT/build/tools/bayescrowd_serve"
printf '%s\n' \
  '{"op":"create","id":"a1","tenant":"acme","dataset":{"kind":"nba","n":120,"seed":9,"missing_rate":0.15,"missing_seed":5},"alpha":0.01,"budget":24,"latency":4,"m":5}' \
  '{"op":"create","id":"b1","tenant":"bravo","dataset":{"kind":"nba","n":100,"seed":10,"missing_rate":0.18,"missing_seed":7},"alpha":0.01,"budget":12,"latency":3}' \
  '{"op":"create","id":"h1","tenant":"heavy","dataset":{"kind":"nba","n":60,"seed":9,"missing_rate":0.2,"missing_seed":5},"alpha":-1,"budget":4,"latency":4,"m":5}' \
  '{"op":"advance","id":"a1","rounds":1}' \
  '{"op":"advance","id":"b1","rounds":1}' \
  '{"op":"advance","id":"h1","rounds":1}' \
  '{"op":"advance","id":"a1","rounds":100}' \
  '{"op":"advance","id":"b1","rounds":100}' \
  '{"op":"advance","id":"h1","rounds":100}' \
  '{"op":"finish","id":"a1"}' \
  '{"op":"finish","id":"b1"}' \
  '{"op":"finish","id":"h1"}' \
  '{"op":"shutdown"}' \
  | "$SERVE" --threads 4 --qos 'heavy=1:1:8,1' \
      --metrics-prom "$SMOKE/serve.prom" \
      --flight-out "$SMOKE/serve_flight.jsonl" > "$SMOKE/serve_out.jsonl"
! grep -q '"ok":false' "$SMOKE/serve_out.jsonl"   # Every op succeeded.
grep -q '"id":"a1".*"exact":true' "$SMOKE/serve_out.jsonl"
grep -q '"id":"b1".*"exact":true' "$SMOKE/serve_out.jsonl"
grep -q '"id":"h1".*"exact":false' "$SMOKE/serve_out.jsonl"
grep -q 'tenant="acme"' "$SMOKE/serve.prom"
grep -q 'tenant="bravo"' "$SMOKE/serve.prom"
grep -q 'serve_qos_degrades{session="h1",tenant="heavy"} 2' "$SMOKE/serve.prom"
grep -q 'serve_rounds{session="h1",tenant="heavy"}' "$SMOKE/serve.prom"
grep -q '"kind":"qos_degrade"' "$SMOKE/serve_flight.jsonl"

echo "== tier-1: serve chaos smoke (quarantine, shed, kill -9, recover) =="
# Phase A: live chaos. A tenant whose checkpoint writes always fail
# (--chaos with a path match on its checkpoint dir) must be quarantined
# after the failure threshold, the deterministic shed trip must answer
# "overloaded" with a retry hint, and the healthy tenant must still
# finish exact — one tenant's broken disk is not another's outage.
printf '%s\n' \
  '{"op":"create","id":"p1","tenant":"poison","dataset":{"kind":"nba","n":120,"seed":9,"missing_rate":0.15,"missing_seed":5},"alpha":0.01,"budget":12,"latency":4,"m":5,"checkpoint_dir":"'"$SMOKE"'/poison-ckpt","checkpoint_every":1}' \
  '{"op":"create","id":"g1","tenant":"good","dataset":{"kind":"nba","n":100,"seed":10,"missing_rate":0.18,"missing_seed":7},"alpha":0.01,"budget":12,"latency":3}' \
  '{"op":"advance","id":"p1","rounds":1}' \
  '{"op":"advance","id":"p1","rounds":1}' \
  '{"op":"advance","id":"p1","rounds":1}' \
  '{"op":"advance","id":"g1","rounds":100}' \
  '{"op":"advance","id":"g1","rounds":100}' \
  '{"op":"advance","id":"g1","rounds":100}' \
  '{"op":"advance","id":"g1","rounds":100}' \
  '{"op":"advance","id":"g1","rounds":100}' \
  '{"op":"finish","id":"g1"}' \
  '{"op":"finish","id":"g1"}' \
  '{"op":"shutdown"}' \
  | "$SERVE" --threads 4 \
      --chaos "write_fail=1.0,seed=7,match=poison-ckpt,shed_every=9" \
      --flight-out "$SMOKE/chaos_flight.jsonl" > "$SMOKE/chaos_out.jsonl"
grep -q '"kind":"quarantine"' "$SMOKE/chaos_flight.jsonl"
grep -q '"overloaded":true' "$SMOKE/chaos_out.jsonl"
grep -q '"retry_after_ms"' "$SMOKE/chaos_out.jsonl"
grep -q '"id":"g1".*"exact":true' "$SMOKE/chaos_out.jsonl"

# Phase B: the crash. A journaled server (--state-dir) is fed three
# checkpoint-every-round sessions through a fifo, advanced a couple of
# rounds, then SIGKILLed — no shutdown, no flush. The restart with
# --recover must replay the manifest, resume all three, drain them to
# completion, and export the recovery series in the scrape file.
STATE="$SMOKE/serve-state"
mkdir -p "$STATE"
FIFO="$SMOKE/serve.fifo"
mkfifo "$FIFO"
"$SERVE" --threads 4 --state-dir "$STATE" \
  < "$FIFO" > "$SMOKE/precrash_out.jsonl" &
SERVE_PID=$!
exec 3>"$FIFO"
printf '%s\n' \
  '{"op":"create","id":"r1","tenant":"acme","dataset":{"kind":"nba","n":120,"seed":9,"missing_rate":0.15,"missing_seed":5},"alpha":0.01,"budget":24,"latency":4,"m":5,"checkpoint_every":1}' \
  '{"op":"create","id":"r2","tenant":"bravo","dataset":{"kind":"nba","n":100,"seed":10,"missing_rate":0.18,"missing_seed":7},"alpha":0.01,"budget":12,"latency":3,"checkpoint_every":1}' \
  '{"op":"create","id":"r3","tenant":"acme","dataset":{"kind":"nba","n":120,"seed":11,"missing_rate":0.15,"missing_seed":5},"alpha":0.01,"budget":12,"latency":4,"m":5,"checkpoint_every":1}' \
  '{"op":"advance","id":"r1","rounds":2}' \
  '{"op":"advance","id":"r2","rounds":1}' \
  '{"op":"advance","id":"r3","rounds":1}' >&3
# Wait until all six responses are durable, so the kill lands between
# verbs (the killpoint *matrix* lives in serve_killpoint_test; this
# smoke proves the real-process SIGKILL + --recover round trip).
for _ in $(seq 1 100); do
  [ "$(wc -l < "$SMOKE/precrash_out.jsonl")" -ge 6 ] && break
  sleep 0.2
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
exec 3>&-
rm -f "$FIFO"
printf '%s\n' \
  '{"op":"advance","id":"r1","rounds":100}' \
  '{"op":"advance","id":"r2","rounds":100}' \
  '{"op":"advance","id":"r3","rounds":100}' \
  '{"op":"finish","id":"r1"}' \
  '{"op":"finish","id":"r2"}' \
  '{"op":"finish","id":"r3"}' \
  '{"op":"shutdown"}' \
  | "$SERVE" --threads 4 --state-dir "$STATE" --recover \
      --metrics-prom "$SMOKE/recover.prom" > "$SMOKE/recover_out.jsonl"
head -1 "$SMOKE/recover_out.jsonl" | grep -q '"op":"recover"'
head -1 "$SMOKE/recover_out.jsonl" | grep -q '"sessions_resumed":3'
! grep -q '"ok":false' "$SMOKE/recover_out.jsonl"
grep -q '"id":"r1".*"exact":true' "$SMOKE/recover_out.jsonl"
grep -q 'serve_recovery_sessions_resumed 3' "$SMOKE/recover.prom"

echo "== tier-1: crash-safety tests under ASan+UBSan =="
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DBC_SANITIZE=address,undefined \
  -DBAYESCROWD_BUILD_BENCHMARKS=OFF \
  -DBAYESCROWD_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-asan" -j "$JOBS" --target checkpoint_test \
  --target killpoint_test --target fault_test --target differential_test \
  --target governor_test --target compile_test --target obs_test \
  --target attribution_test --target serve_test \
  --target serve_killpoint_test --target quality_test \
  --target marketplace_test
ctest --test-dir "$ROOT/build-asan" --output-on-failure \
  -R '(checkpoint_test|killpoint_test|fault_test|differential_test|governor_test|compile_test|obs_test|attribution_test|serve_test|serve_killpoint_test|quality_test|marketplace_test)'

echo "== tier-1: concurrency tests under ThreadSanitizer =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DBC_SANITIZE=thread \
  -DBAYESCROWD_BUILD_BENCHMARKS=OFF \
  -DBAYESCROWD_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target parallel_test \
  --target obs_test --target attribution_test --target differential_test \
  --target fault_test --target record_replay_test --target governor_test \
  --target compile_test --target serve_test \
  --target serve_killpoint_test --target marketplace_test
ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
  -R '(parallel_test|obs_test|attribution_test|differential_test|fault_test|record_replay_test|governor_test|compile_test|serve_test|serve_killpoint_test|marketplace_test)'

echo "tier-1 OK"
